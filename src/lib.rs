//! Workspace-level façade for the SplitBeam reproduction.
//!
//! The implementation lives in the workspace crates; this crate only re-exports
//! them under one roof so the examples (`examples/`) and the cross-crate
//! integration tests (`tests/`) have a single dependency, and so downstream
//! users can depend on `splitbeam-repro` and get the whole stack.
//!
//! ```
//! use splitbeam_repro::prelude::*;
//! let mimo = MimoConfig::symmetric(2, Bandwidth::Mhz20);
//! let config = SplitBeamConfig::new(mimo, CompressionLevel::OneEighth);
//! assert_eq!(config.bottleneck_dim(), 56);
//! ```

pub use dot11_bfi;
pub use mimo_math;
pub use neural;
pub use splitbeam;
pub use splitbeam_baselines as baselines;
pub use splitbeam_datasets as datasets;
pub use splitbeam_hwsim as hwsim;
pub use splitbeam_serve as serve;
pub use wifi_phy;

/// The most commonly used types, re-exported for examples and quick scripts.
pub mod prelude {
    pub use dot11_bfi::pipeline::{Dot11Beamformee, Dot11Beamformer};
    pub use dot11_bfi::quantize::AngleResolution;
    pub use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    pub use splitbeam::model::SplitBeamModel;
    pub use splitbeam::training::{train_model, TrainingData, TrainingOptions};
    pub use splitbeam_baselines::lbscifi::{LbSciFiConfig, LbSciFiModel};
    pub use splitbeam_datasets::catalog::{dataset_catalog, dataset_for};
    pub use splitbeam_datasets::generator::{generate_dataset, GeneratorOptions};
    pub use splitbeam_hwsim::accelerator::AcceleratorModel;
    pub use splitbeam_hwsim::delay::DelayBudget;
    pub use splitbeam_hwsim::event::{SeededJitter, SharedMedium};
    pub use splitbeam_serve::driver::{
        build_server, build_sharded_server, generate_traffic, link_check, serve_traffic,
        ChurnConfig, RoundServing, ServeMode, SimConfig,
    };
    pub use splitbeam_serve::event::{build_event_driver, EventConfig, EventDriver};
    pub use splitbeam_serve::server::ApServer;
    pub use splitbeam_serve::shard::ShardedApServer;
    pub use splitbeam_serve::timing::{DeadlinePolicy, FrameClass, FrameStamp};
    pub use wifi_phy::channel::{ChannelModel, ChannelSnapshot, EnvironmentProfile};
    pub use wifi_phy::link::{simulate_mu_mimo_ber, LinkConfig};
    pub use wifi_phy::ofdm::{Bandwidth, MimoConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_core_types() {
        let mimo = MimoConfig::symmetric(3, Bandwidth::Mhz40);
        let config = SplitBeamConfig::new(mimo, CompressionLevel::OneQuarter);
        assert_eq!(config.input_dim(), 2 * 9 * 114);
        assert_eq!(dataset_catalog().len(), 15);
    }
}
