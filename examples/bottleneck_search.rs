//! The Bottleneck Optimization Problem in action: run the Section IV-C
//! heuristic on a 2x2 / 20 MHz network, letting it pick the most aggressive
//! compression level that still meets a BER ceiling and the 10 ms delay budget.
//!
//! Run with: `cargo run --release --example bottleneck_search`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::bop::{solve_bop, BopConstraints};
use splitbeam_repro::prelude::*;
use wifi_phy::sounding::SoundingConfig;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mimo = MimoConfig::symmetric(2, Bandwidth::Mhz20);
    let base = SplitBeamConfig::new(mimo, CompressionLevel::OneThirtySecond);

    // Data for training / validating each candidate.
    let spec = dataset_for(2, Bandwidth::Mhz20, "E1").unwrap();
    let generated = generate_dataset(&spec, &GeneratorOptions::quick(100, 3)).unwrap();
    let (train_snaps, val_snaps, test_snaps) = generated.split_train_val_test();
    let options = TrainingOptions {
        epochs: 8,
        ..TrainingOptions::default()
    };

    let constraints = BopConstraints {
        max_ber: 0.03,
        max_delay_s: 0.01,
        mu: 0.5,
    };
    let accel = AcceleratorModel::zynq_200mhz(2, 2);
    let sounding = SoundingConfig::new(Bandwidth::Mhz20, 2);

    let solution = solve_bop(
        &base,
        &constraints,
        1,
        |config| {
            let mut train = TrainingData::new(config.clone());
            for s in train_snaps {
                train.push_snapshot(s);
            }
            let mut val = TrainingData::new(config.clone());
            for s in val_snaps {
                val.push_snapshot(s);
            }
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            train_model(config, train.examples(), val.examples(), &options, &mut rng).0
        },
        |model| {
            // Evaluate the BER of the candidate over a few held-out snapshots.
            let link = LinkConfig {
                snr_db: 20.0,
                symbols_per_subcarrier: 1,
                ..LinkConfig::default()
            };
            let mut report = wifi_phy::link::LinkReport::empty();
            for snap in test_snaps.iter().take(4) {
                let feedback: Vec<_> = (0..snap.num_users())
                    .map(|u| model.feedback_for_user_quantized(snap, u, 16).unwrap())
                    .collect();
                if let Ok(r) = simulate_mu_mimo_ber(snap, &feedback, &link, &mut rng) {
                    report.merge(&r);
                }
            }
            report.ber()
        },
        |config| {
            splitbeam_hwsim::delay::end_to_end_delay_from_config_s(config, &accel, &sounding, 16)
                .total_s()
        },
    );

    match solution {
        Ok(solution) => {
            println!("Explored {} candidates:", solution.explored.len());
            for c in &solution.explored {
                println!(
                    "  {} ({} tail layers): BER {:.4}, delay {:.3} ms, feasible: {}",
                    c.config.compression,
                    c.config.extra_tail_layers.len() + 1,
                    c.ber,
                    c.delay_s * 1e3,
                    c.feasible
                );
            }
            println!(
                "\nSelected {} with architecture {} (BER {:.4})",
                solution.selected.config.compression,
                solution.selected.config.architecture_label(),
                solution.selected.ber
            );
        }
        Err(e) => println!("no feasible bottleneck found: {e}"),
    }
}
