//! Multi-user channel sounding walkthrough: how much airtime and station
//! computation one sounding round costs under 802.11 versus SplitBeam, for a
//! 3x3 network at 80 MHz (the configuration the paper's generalization study
//! focuses on) — then the same fleet served through the **event-driven
//! virtual-time driver**: every station's report pays its head compute time,
//! contends for the shared medium, and is classified against the 10 ms
//! Eq. 7d budget at round close.
//!
//! Run with: `cargo run --release --example multi_user_sounding`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam_repro::prelude::*;
use wifi_phy::sounding::{sounding_round_airtime, SoundingConfig};

fn main() {
    let mimo = MimoConfig::symmetric(3, Bandwidth::Mhz80);
    let sounding = SoundingConfig::new(Bandwidth::Mhz80, 3);

    // 802.11: the station computes SVD + Givens and sends the quantized angles.
    let dot11_bits = dot11_bfi::feedback::paper_report_bits(3, 242);
    let dot11_flops = dot11_bfi::complexity::dot11_sta_flops(3, 3, 242);
    let dot11_airtime = sounding_round_airtime(&sounding, dot11_bits);

    println!("== IEEE 802.11 compressed beamforming feedback ==");
    println!("per-station report: {} bits", dot11_bits);
    println!("per-station compute: {} FLOPs (SVD + Givens)", dot11_flops);
    println!(
        "sounding round airtime: {:.3} ms ({:.1}% of a 10 ms sounding interval)",
        dot11_airtime.total_s() * 1e3,
        dot11_airtime.total_s() / 0.01 * 100.0
    );

    for level in CompressionLevel::STANDARD {
        let config = SplitBeamConfig::new(mimo, level);
        let bits = splitbeam::airtime::model_feedback_bits(&config, 16);
        let macs = splitbeam::complexity::splitbeam_head_macs(&config);
        let airtime = sounding_round_airtime(&sounding, bits);
        let accel = AcceleratorModel::zynq_200mhz(3, 3);
        let latency = accel.split_latency_from_config(&config);
        println!("\n== SplitBeam, {} ==", level);
        println!(
            "per-station feedback: {} bits ({:.0}% of 802.11)",
            bits,
            100.0 * bits as f64 / dot11_bits as f64
        );
        println!(
            "per-station compute: {} MACs ({:.0}% of 802.11)",
            macs,
            100.0 * macs as f64 / dot11_flops as f64
        );
        println!(
            "sounding round airtime: {:.3} ms, head+tail compute latency: {:.3} ms",
            airtime.total_s() * 1e3,
            latency.total_s() * 1e3
        );
    }

    // ---- Event-driven virtual-time serving ------------------------------
    //
    // Eight stations on a smaller 2x2/20 MHz model (so the example runs fast),
    // served through the discrete-event driver via the same `RoundServing`
    // trait the legacy drivers implement: head compute from the accelerator
    // model, seeded jitter, shared-medium contention, Eq. 7d enforced at
    // every round close. Station 7 sounds only every third round, so its
    // reports age toward the deadline.
    let mimo_small = MimoConfig::symmetric(2, Bandwidth::Mhz20);
    let config = SplitBeamConfig::new(mimo_small, CompressionLevel::OneEighth);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let model = SplitBeamModel::new(config, &mut rng);
    let sim = SimConfig {
        stations: 8,
        rounds: 4,
        bits_per_value: 4,
        drop_every: 9,
        ..SimConfig::default()
    };
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let accel = AcceleratorModel::zynq_200mhz(2, 2);
    let event_cfg = EventConfig::realistic(24.0, 500_000, 42); // 0.5 ms jitter default
    let mut driver = build_event_driver(
        model,
        sim.stations,
        sim.bits_per_value,
        event_cfg,
        Some(&accel),
    );
    driver.set_cadence(7, 3);

    println!("\n== Event-driven virtual-time serving (8 stations, 2x2 @ 20 MHz) ==");
    println!(
        "medium rate {} Mbit/s, jitter <= {} ns, Eq. 7d budget {} ms (+{} ms grace)",
        24.0,
        driver.config().jitter_max_ns,
        driver.config().budget.max_delay_s * 1e3,
        driver.config().grace_s * 1e3,
    );
    let outcome = serve_traffic(&mut driver, &traffic, ServeMode::Batched)
        .expect("event-driven serving of generated traffic");
    for summary in &outcome.summaries {
        println!(
            "round {}: served {} (on-time {}, late {}), expired {}, stale {}, \
             worst e2e {:.3} ms, mean e2e {:.3} ms (queue share {:.3} ms)",
            summary.round,
            summary.served,
            summary.on_time,
            summary.late,
            summary.expired,
            summary.stale,
            summary.delay.worst_e2e_ns as f64 / 1e6,
            summary.delay.mean_e2e_s(summary.served) * 1e3,
            summary.delay.queue_ns as f64 / 1e6 / summary.served.max(1) as f64,
        );
    }
    println!(
        "medium: {} frames carried, {:.3} ms on air, {:.3} ms queueing; \
         virtual clock ended at {:.1} ms",
        driver.medium().frames_carried(),
        driver.medium().total_air_ns() as f64 / 1e6,
        driver.medium().total_wait_ns() as f64 / 1e6,
        driver.virtual_now_ns() as f64 / 1e6,
    );
}
