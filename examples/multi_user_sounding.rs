//! Multi-user channel sounding walkthrough: how much airtime and station
//! computation one sounding round costs under 802.11 versus SplitBeam, for a
//! 3x3 network at 80 MHz (the configuration the paper's generalization study
//! focuses on).
//!
//! Run with: `cargo run --release --example multi_user_sounding`

use splitbeam_repro::prelude::*;
use wifi_phy::sounding::{sounding_round_airtime, SoundingConfig};

fn main() {
    let mimo = MimoConfig::symmetric(3, Bandwidth::Mhz80);
    let sounding = SoundingConfig::new(Bandwidth::Mhz80, 3);

    // 802.11: the station computes SVD + Givens and sends the quantized angles.
    let dot11_bits = dot11_bfi::feedback::paper_report_bits(3, 242);
    let dot11_flops = dot11_bfi::complexity::dot11_sta_flops(3, 3, 242);
    let dot11_airtime = sounding_round_airtime(&sounding, dot11_bits);

    println!("== IEEE 802.11 compressed beamforming feedback ==");
    println!("per-station report: {} bits", dot11_bits);
    println!("per-station compute: {} FLOPs (SVD + Givens)", dot11_flops);
    println!(
        "sounding round airtime: {:.3} ms ({:.1}% of a 10 ms sounding interval)",
        dot11_airtime.total_s() * 1e3,
        dot11_airtime.total_s() / 0.01 * 100.0
    );

    for level in CompressionLevel::STANDARD {
        let config = SplitBeamConfig::new(mimo, level);
        let bits = splitbeam::airtime::model_feedback_bits(&config, 16);
        let macs = splitbeam::complexity::splitbeam_head_macs(&config);
        let airtime = sounding_round_airtime(&sounding, bits);
        let accel = AcceleratorModel::zynq_200mhz(3, 3);
        let latency = accel.split_latency_from_config(&config);
        println!("\n== SplitBeam, {} ==", level);
        println!(
            "per-station feedback: {} bits ({:.0}% of 802.11)",
            bits,
            100.0 * bits as f64 / dot11_bits as f64
        );
        println!(
            "per-station compute: {} MACs ({:.0}% of 802.11)",
            macs,
            100.0 * macs as f64 / dot11_flops as f64
        );
        println!(
            "sounding round airtime: {:.3} ms, head+tail compute latency: {:.3} ms",
            airtime.total_s() * 1e3,
            latency.total_s() * 1e3
        );
    }
}
