//! Cross-environment generalization (the Fig. 13 question): train a SplitBeam
//! model on environment E1 and test it on the unseen environment E2 (and the
//! reverse), comparing against the in-environment result.
//!
//! Run with: `cargo run --release --example cross_environment`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam_repro::prelude::*;

fn ber_of(model: &SplitBeamModel, snapshots: &[ChannelSnapshot], rng: &mut ChaCha8Rng) -> f64 {
    let link = LinkConfig {
        snr_db: 18.0,
        symbols_per_subcarrier: 1,
        ..LinkConfig::default()
    };
    let mut report = wifi_phy::link::LinkReport::empty();
    for snap in snapshots.iter().take(5) {
        let feedback: Vec<_> = (0..snap.num_users())
            .map(|u| model.feedback_for_user_quantized(snap, u, 16).unwrap())
            .collect();
        if let Ok(r) = simulate_mu_mimo_ber(snap, &feedback, &link, rng) {
            report.merge(&r);
        }
    }
    report.ber()
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let mimo = MimoConfig::symmetric(2, Bandwidth::Mhz20);
    let config = SplitBeamConfig::new(mimo, CompressionLevel::OneEighth);
    let options = TrainingOptions {
        epochs: 10,
        ..TrainingOptions::default()
    };

    let mut models = Vec::new();
    let mut tests = Vec::new();
    for env in ["E1", "E2"] {
        let spec = dataset_for(2, Bandwidth::Mhz20, env).unwrap();
        let generated = generate_dataset(&spec, &GeneratorOptions::quick(90, 29)).unwrap();
        let (train_snaps, val_snaps, test_snaps) = generated.split_train_val_test();
        let mut train = TrainingData::new(config.clone());
        for s in train_snaps {
            train.push_snapshot(s);
        }
        let mut val = TrainingData::new(config.clone());
        for s in val_snaps {
            val.push_snapshot(s);
        }
        let (model, _) = train_model(
            &config,
            train.examples(),
            val.examples(),
            &options,
            &mut rng,
        );
        models.push((env, model));
        tests.push((env, test_snaps.to_vec()));
    }

    println!("Cross-environment BER (2x2 @ 20 MHz, K = 1/8):");
    for (train_env, model) in &models {
        for (test_env, snaps) in &tests {
            let ber = ber_of(model, snaps, &mut rng);
            let kind = if train_env == test_env {
                "single-env"
            } else {
                "cross-env "
            };
            println!("  trained on {train_env}, tested on {test_env} ({kind}): BER = {ber:.4}");
        }
    }
    println!("\nThe cross-environment BER should stay close to the single-environment one,");
    println!("with E2-trained models (richer propagation) generalizing slightly better.");
}
