//! Quickstart: train a small SplitBeam model for a 2x2 / 20 MHz network,
//! run the station->AP feedback round trip and compare its BER against the
//! standard 802.11 feedback.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam_repro::prelude::*;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // 1. Network configuration: a 2-antenna AP serving two single-stream stations at 20 MHz.
    let mimo = MimoConfig::symmetric(2, Bandwidth::Mhz20);
    let config = SplitBeamConfig::new(mimo, CompressionLevel::OneEighth);
    println!(
        "SplitBeam architecture: {} (K = 1/8)",
        config.architecture_label()
    );

    // 2. Generate a small training set from the environment-E1 channel model.
    let channel = ChannelModel::from_config(EnvironmentProfile::e1(), &mimo);
    let mut data = TrainingData::new(config.clone());
    for _ in 0..80 {
        data.push_snapshot(&channel.sample(&mut rng));
    }
    let (train, val) = data.split(0.85);

    // 3. Train (shortened schedule for the example).
    let options = TrainingOptions {
        epochs: 10,
        ..TrainingOptions::default()
    };
    let (model, history) = train_model(&config, &train, &val, &options, &mut rng);
    println!(
        "trained {} epochs: loss {:.4} -> {:.4}",
        options.epochs,
        history.initial_train_loss(),
        history.final_train_loss()
    );
    println!(
        "station cost: {} MACs (vs {} FLOPs for the 802.11 SVD+Givens pipeline)",
        model.head_macs(),
        dot11_bfi::complexity::dot11_sta_flops(2, 2, 56),
    );

    // 4. Online use on a fresh channel: SplitBeam vs 802.11 vs ideal feedback.
    let snapshot = channel.sample(&mut rng);
    let link = LinkConfig {
        snr_db: 20.0,
        ..LinkConfig::default()
    };

    let splitbeam_feedback: Vec<_> = (0..snapshot.num_users())
        .map(|u| model.feedback_for_user_quantized(&snapshot, u, 16).unwrap())
        .collect();
    let dot11_feedback: Vec<_> = (0..snapshot.num_users())
        .map(|u| {
            dot11_bfi::pipeline::dot11_feedback_roundtrip(snapshot.csi(u), 1, AngleResolution::High)
                .unwrap()
        })
        .collect();
    let ideal = snapshot.ideal_beamforming();

    for (name, feedback) in [
        ("ideal", &ideal),
        ("802.11", &dot11_feedback),
        ("SplitBeam", &splitbeam_feedback),
    ] {
        let report = simulate_mu_mimo_ber(&snapshot, feedback, &link, &mut rng).unwrap();
        println!("{name:10} BER = {:.4}", report.ber());
    }
}
