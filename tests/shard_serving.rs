//! Cross-crate integration test of the sharded AP serving layer: bit-exact
//! parity with the single-shard server through the façade, the
//! `SPLITBEAM_SHARDS` environment knob, and session lifecycle under churn.
//!
//! CI runs this suite under `SPLITBEAM_SHARDS=1` and `SPLITBEAM_SHARDS=4`, so
//! the env-resolved path is exercised at both extremes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam_repro::prelude::*;
use splitbeam_repro::serve::{env_shards, ServeError};

fn small_model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

#[test]
fn env_resolved_shard_count_serves_bit_exactly() {
    let model = small_model(1);
    let sim = SimConfig {
        stations: 8,
        rounds: 3,
        bits_per_value: 4,
        drop_every: 5,
        churn: ChurnConfig {
            join_every: 2,
            leave_every: 3,
            burst_every: 0,
        },
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let traffic = generate_traffic(&sim, &model, &mut rng);

    let mut single = build_server(model.clone(), sim.stations, sim.bits_per_value);
    let reference = serve_traffic(&mut single, &traffic, ServeMode::Batched).unwrap();

    // The env-resolved shard count (SPLITBEAM_SHARDS when set, parallelism
    // otherwise) must produce identical results to the single-shard server.
    let shards = env_shards();
    assert!(shards >= 1);
    let mut sharded = ShardedApServer::from_env();
    assert_eq!(sharded.num_shards(), shards);
    let key = sharded.register_model(model.clone());
    for id in 0..sim.stations as u64 {
        sharded
            .register_station(id, key, sim.bits_per_value)
            .unwrap();
    }
    let outcome = serve_traffic(&mut sharded, &traffic, ServeMode::Batched).unwrap();
    assert_eq!(outcome.total_served(), reference.total_served());
    assert_eq!(outcome.joins, traffic.total_joins());
    assert_eq!(outcome.leaves, traffic.total_leaves());
    for id in 0..traffic.max_station_id {
        assert_eq!(
            sharded.feedback_of(id),
            single.feedback_of(id),
            "station {id} under {shards} env shards"
        );
    }
}

#[test]
fn sharded_sweep_matches_batched_and_serial_references() {
    let model = small_model(3);
    let sim = SimConfig {
        stations: 7,
        rounds: 4,
        bits_per_value: 6,
        drop_every: 6,
        churn: ChurnConfig {
            join_every: 2,
            leave_every: 2,
            burst_every: 3,
        },
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let mut batched = build_server(model.clone(), sim.stations, sim.bits_per_value);
    let mut serial = build_server(model.clone(), sim.stations, sim.bits_per_value);
    let b = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
    let s = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
    assert_eq!(b, s, "single-shard batched vs serial");
    for shards in [1usize, 2, 4, 7] {
        let mut sharded =
            build_sharded_server(model.clone(), sim.stations, sim.bits_per_value, shards);
        let o = serve_traffic(&mut sharded, &traffic, ServeMode::Batched).unwrap();
        assert_eq!(o.total_served(), b.total_served(), "{shards} shards");
        for id in 0..traffic.max_station_id {
            assert_eq!(
                sharded.feedback_of(id),
                batched.feedback_of(id),
                "{shards} shards, station {id}"
            );
            assert_eq!(
                sharded.feedback_of(id),
                serial.feedback_of(id),
                "{shards} shards vs serial, station {id}"
            );
        }
    }
}

#[test]
fn lifecycle_capacity_eviction_and_reregistration() {
    let model = small_model(5);
    let mut server = ShardedApServer::new(3);
    let key = server.register_model(model.clone());
    server.set_capacity(Some(3));
    for id in 0..3u64 {
        server.register_station(id, key, 4).unwrap();
    }
    assert_eq!(
        server.register_station(3, key, 4),
        Err(ServeError::CapacityExceeded(3, 3))
    );
    // A departure frees a slot; the new station lands on its deterministic shard.
    server.deregister_station(1).unwrap();
    server.register_station(3, key, 4).unwrap();
    assert_eq!(server.station_ids(), vec![0, 2, 3]);
    assert_eq!(server.shard_of(3), 0);

    // Stations that stop reporting are evicted once the idle budget passes,
    // and can re-register cleanly.
    server.set_max_idle_rounds(Some(0));
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let frame_for = |rng: &mut ChaCha8Rng| {
        let csi: Vec<f32> = channel
            .sample(rng)
            .csi_real_vector(0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = model.compress_quantized(&csi, 4).unwrap();
        splitbeam_repro::splitbeam::wire::encode_feedback(&payload).unwrap()
    };
    // Round 0: everyone reports. Round 1: only station 0 reports.
    for id in [0u64, 2, 3] {
        let f = frame_for(&mut rng);
        server.ingest_wire(id, &f).unwrap();
    }
    let r0 = server.process_round().unwrap();
    assert_eq!((r0.served, r0.evicted), (3, 0));
    let f = frame_for(&mut rng);
    server.ingest_wire(0, &f).unwrap();
    let r1 = server.process_round().unwrap();
    assert_eq!(r1.served, 1);
    assert_eq!(r1.evicted, 2, "stations 2 and 3 exceeded the idle budget");
    assert_eq!(server.station_ids(), vec![0]);
    // Clean re-registration after eviction.
    server.register_station(2, key, 4).unwrap();
    assert!(server.session(2).unwrap().feedback().is_none());
    assert_eq!(server.session(2).unwrap().joined_round(), 2);
}
