//! Cross-crate integration test of the event-driven serving stack through the
//! façade: virtual-time serving vs the lockstep drivers, deadline accounting
//! under a real medium + accelerator latencies, and determinism.
//!
//! CI also runs this suite with `SPLITBEAM_JITTER_NS` set: the invariants
//! below hold for *any* jitter amplitude ([`EventConfig::realistic`] reads the
//! knob), while the lockstep-parity tests pin jitter to zero explicitly.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam_repro::prelude::*;
use splitbeam_repro::serve::event::build_sharded_event_driver;
use splitbeam_repro::serve::RoundSummary;

fn small_model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

#[test]
fn lockstep_event_serving_matches_legacy_end_to_end() {
    let model = small_model(1);
    let sim = SimConfig {
        stations: 6,
        rounds: 3,
        bits_per_value: 4,
        drop_every: 5,
        churn: ChurnConfig {
            join_every: 2,
            leave_every: 3,
            burst_every: 0,
        },
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let traffic = generate_traffic(&sim, &model, &mut rng);

    let mut legacy = build_server(model.clone(), sim.stations, sim.bits_per_value);
    let want = serve_traffic(&mut legacy, &traffic, ServeMode::Batched).unwrap();

    let mut event = build_event_driver(
        model.clone(),
        sim.stations,
        sim.bits_per_value,
        EventConfig::lockstep(),
        None,
    );
    let got = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
    assert_eq!(got, want, "lockstep event serving must equal legacy");
    for id in 0..traffic.max_station_id {
        assert_eq!(event.feedback_of(id), legacy.feedback_of(id));
    }

    // Sharded flavor too, through the same trait-driven loop.
    let mut sharded = build_sharded_event_driver(
        model,
        sim.stations,
        sim.bits_per_value,
        4,
        EventConfig::lockstep(),
        None,
    );
    let got = serve_traffic(&mut sharded, &traffic, ServeMode::Batched).unwrap();
    assert_eq!(got.total_served(), want.total_served());
    for id in 0..traffic.max_station_id {
        assert_eq!(sharded.feedback_of(id), legacy.feedback_of(id));
    }
}

/// Deadline-accounting invariants that hold for *any* jitter amplitude,
/// medium rate, accelerator latency — and, since PR 6, any fault plan
/// ([`EventConfig::realistic`] reads `SPLITBEAM_LOSS`/`SPLITBEAM_CORRUPT`/
/// `SPLITBEAM_DUP` too). CI re-runs this with disruptive jitter and again
/// with a disruptive loss+corruption+jitter mix.
#[test]
fn timed_serving_invariants_hold_under_any_jitter() {
    let model = small_model(3);
    let sim = SimConfig {
        stations: 8,
        rounds: 4,
        bits_per_value: 6,
        drop_every: 7,
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let accel = AcceleratorModel::zynq_200mhz(2, 2);
    let cfg = EventConfig::realistic(24.0, 0, 11);
    let mut event = build_event_driver(
        model.clone(),
        sim.stations,
        sim.bits_per_value,
        cfg,
        Some(&accel),
    );
    let outcome = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();

    let served: usize = outcome.summaries.iter().map(|s| s.served).sum();
    let expired: usize = outcome.summaries.iter().map(|s| s.expired).sum();
    let lost: usize = outcome.summaries.iter().map(|s| s.lost).sum();
    let corrupt: usize = outcome.summaries.iter().map(|s| s.corrupt).sum();
    let retransmitted: usize = outcome.summaries.iter().map(|s| s.retransmitted).sum();
    let stats = event.fault_stats();
    assert_eq!(
        stats.lost as usize, lost,
        "summaries must match the injector"
    );
    if lost == 0 && corrupt == 0 {
        assert_eq!(
            served + expired,
            traffic.total_frames(),
            "on a reliable medium every transmitted frame is served or expired"
        );
    } else {
        assert!(served + expired <= traffic.total_frames());
        assert!(
            served + expired + lost + corrupt >= traffic.total_frames(),
            "every missing frame must be accounted to a lost or corrupt delivery"
        );
    }
    for summary in &outcome.summaries {
        assert_eq!(
            summary.on_time + summary.late,
            summary.served,
            "served splits exactly into on-time + late"
        );
        if summary.served > 0 {
            // A real medium and accelerator make every leg observable.
            assert!(summary.delay.air_ns > 0, "airtime must be charged");
            assert!(summary.delay.head_ns > 0, "head compute must be charged");
            assert!(summary.delay.tail_ns > 0, "tail compute must be charged");
            assert!(summary.delay.worst_e2e_ns > 0);
        }
    }
    // The medium actually serialized the fleet's frames — every transmission
    // is charged airtime, including lost/corrupt ones and every retry.
    assert_eq!(
        event.medium().frames_carried(),
        (traffic.total_frames() + retransmitted) as u64
    );
    assert!(event.medium().total_air_ns() > 0);

    // Determinism: an identical run (same seed, same traffic) is identical,
    // summary for summary.
    let mut rerun = build_event_driver(model, sim.stations, sim.bits_per_value, cfg, Some(&accel));
    let outcome2 = serve_traffic(&mut rerun, &traffic, ServeMode::Batched).unwrap();
    let summaries: Vec<RoundSummary> = outcome.summaries.clone();
    assert_eq!(summaries, outcome2.summaries);
    assert_eq!(event.virtual_now_ns(), rerun.virtual_now_ns());
}

/// The deadline close never mistakes deadline classes for session staleness:
/// an expired report leaves its station stale/awaiting, which the next
/// on-time report repairs.
#[test]
fn expired_reports_interact_correctly_with_staleness() {
    let model = small_model(5);
    let sim = SimConfig {
        stations: 2,
        rounds: 3,
        bits_per_value: 4,
        drop_every: 0,
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let traffic = generate_traffic(&sim, &model, &mut rng);
    // Cadence 3 on station 1: round-1 report is one interval old (on-time
    // edge), round-2 report two intervals (late edge); both rounds still
    // serve station 0 fresh.
    let mut event = build_event_driver(
        model,
        sim.stations,
        sim.bits_per_value,
        EventConfig::lockstep(),
        None,
    );
    event.set_cadence(1, 3);
    let outcome = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
    assert_eq!(outcome.summaries[0].on_time, 2);
    assert_eq!(outcome.summaries[1].on_time, 2, "budget edge is inclusive");
    assert_eq!(outcome.summaries[2].late, 1);
    assert_eq!(outcome.summaries[2].on_time, 1);
    let session = event.inner().session(1).unwrap();
    assert!(
        session.served_late(),
        "late class must be visible on session"
    );
    assert!(session.last_stamp().is_some());
}
