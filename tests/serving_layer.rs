//! Cross-crate integration test of the AP serving layer: station-side wire
//! traffic through the façade, batched vs serial determinism, staleness, and
//! the MU-MIMO link check over served feedback.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam_repro::prelude::*;
use splitbeam_repro::serve::driver::SimTraffic;
use splitbeam_repro::splitbeam::fused::TailWeights;
use splitbeam_repro::splitbeam::wire;

fn small_model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

#[test]
fn served_feedback_round_trips_through_the_wire() {
    let model = small_model(1);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    let csi: Vec<f32> = channel
        .sample(&mut rng)
        .csi_real_vector(0)
        .into_iter()
        .map(|v| v as f32)
        .collect();

    // Station side: compress, quantize, wire-encode.
    let payload = model.compress_quantized(&csi, 4).unwrap();
    let frame = wire::encode_feedback(&payload).unwrap();
    assert_eq!(frame.len(), payload.wire_bytes());

    // AP side: ingest over the wire, serve the round, compare with the direct
    // (never-encoded) reconstruction — must be bit-exact.
    let mut server = ApServer::new();
    // The comparison target is the direct f32 reconstruction, so pin the f32
    // serving path regardless of the SPLITBEAM_TAIL_WEIGHTS environment.
    server.set_tail_weights(TailWeights::F32);
    let key = server.register_model(model.clone());
    server.register_station(0, key, 4).unwrap();
    server.ingest_wire(0, &frame).unwrap();
    let summary = server.process_round().unwrap();
    assert_eq!((summary.served, summary.stale), (1, 0));
    let direct = model.reconstruct_quantized(&payload).unwrap();
    assert_eq!(server.feedback_of(0).unwrap(), direct.as_slice());
}

#[test]
fn batched_and_serial_serving_agree_end_to_end() {
    let model = small_model(3);
    let sim = SimConfig {
        stations: 6,
        rounds: 3,
        bits_per_value: 4,
        drop_every: 5,
        snr_db: 25.0,
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let traffic: SimTraffic = generate_traffic(&sim, &model, &mut rng);

    let mut batched = build_server(model.clone(), sim.stations, sim.bits_per_value);
    let mut serial = build_server(model, sim.stations, sim.bits_per_value);
    let b = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
    let s = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
    assert_eq!(b, s, "round summaries diverged");
    assert_eq!(b.summaries.len(), sim.rounds);
    for id in 0..sim.stations as u64 {
        assert_eq!(batched.feedback_of(id), serial.feedback_of(id));
    }

    // The dropped reports show up as stale stations somewhere in the run.
    let total_served = b.total_served();
    assert_eq!(total_served, traffic.total_frames());
    assert!(total_served < sim.stations * sim.rounds);

    // Link check over fresh-enough stations produces a finite BER.
    let report = link_check(&batched, &traffic, 1, sim.snr_db, &mut rng).unwrap();
    assert!(report.ber().is_finite());
    assert!(!report.per_user_bits.is_empty());
}

#[test]
fn wire_frames_match_airtime_accounting() {
    let model = small_model(5);
    let sim = SimConfig {
        stations: 2,
        rounds: 1,
        bits_per_value: 4,
        drop_every: 0,
        snr_db: 25.0,
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let predicted_bits = splitbeam_repro::splitbeam::airtime::feedback_bits_on_air(
        model.bottleneck_dim(),
        sim.bits_per_value,
    );
    for round in &traffic.rounds {
        for (_, frame) in round.frames.iter() {
            let frame = frame.as_ref().expect("drop-free traffic");
            assert_eq!(frame.len(), predicted_bits.div_ceil(8));
        }
    }
    // 4-bit codes on the wire are far below the u16-per-code representation,
    // even with the v2 versioned header and CRC-32 trailer on every frame.
    let legacy = wire::legacy_repr_bytes(model.bottleneck_dim());
    let actual = wire::encoded_len(model.bottleneck_dim(), sim.bits_per_value);
    assert!(
        (actual as f64) < 0.4 * legacy as f64,
        "{actual} B on the wire vs {legacy} B legacy"
    );
}
