//! Kernel-dispatch integration tests.
//!
//! Verifies the `SPLITBEAM_KERNEL` contract end to end: the environment knob
//! and the programmatic override steer dispatch, `scalar` reproduces the
//! pre-SIMD pipeline bit-for-bit (serving layer batched == serial, fused ==
//! unfused, wire roundtrip), and the SIMD backend stays within documented
//! tolerance of scalar on the full model inference path.
//!
//! The kernel override is process-global, so every test here serializes on
//! one mutex and restores the default before returning.

use mimo_math::kernel::{avx2_fma_available, selected, set_kernel, Kernel, KernelChoice};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::fused::{TailScratch, TailWeights};
use splitbeam::model::SplitBeamModel;
use splitbeam::quantization::QuantizedFeedback;
use splitbeam::wire;
use splitbeam_serve::ApServer;
use std::sync::Mutex;
use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the kernel pinned to `choice`, restoring default dispatch
/// afterwards (also on panic, via a drop guard).
fn with_kernel<T>(choice: KernelChoice, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel(None);
        }
    }
    let _guard = KERNEL_LOCK.lock().unwrap();
    let _restore = Restore;
    set_kernel(Some(choice));
    f()
}

fn model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

fn station_frames(model: &SplitBeamModel, count: u64, bits: u8) -> Vec<Vec<u8>> {
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    (0..count)
        .map(|seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
            let csi: Vec<f32> = channel
                .sample(&mut rng)
                .csi_real_vector(0)
                .into_iter()
                .map(|v| v as f32)
                .collect();
            let payload = model.compress_quantized(&csi, bits).unwrap();
            wire::encode_feedback(&payload).unwrap()
        })
        .collect()
}

#[test]
fn programmatic_override_steers_dispatch() {
    with_kernel(KernelChoice::Scalar, || {
        assert_eq!(selected(), Kernel::Scalar);
        let report = mimo_math::kernel::dispatch_report();
        assert_eq!(report.requested, "scalar");
        assert_eq!(report.selected, "scalar");
    });
    with_kernel(KernelChoice::Auto, || {
        let expect = if avx2_fma_available() {
            Kernel::Avx2Fma
        } else {
            Kernel::Scalar
        };
        assert_eq!(selected(), expect);
    });
}

#[test]
fn environment_variable_steers_dispatch() {
    /// Restores the variable this test mutates — including on assertion
    /// failure — so a CI run forcing `SPLITBEAM_KERNEL=scalar` keeps its
    /// setting for every test that runs after this one.
    struct RestoreEnv(Option<String>);
    impl Drop for RestoreEnv {
        fn drop(&mut self) {
            match self.0.take() {
                Some(value) => std::env::set_var("SPLITBEAM_KERNEL", value),
                None => std::env::remove_var("SPLITBEAM_KERNEL"),
            }
            set_kernel(None);
        }
    }
    let _guard = KERNEL_LOCK.lock().unwrap();
    let _restore = RestoreEnv(std::env::var("SPLITBEAM_KERNEL").ok());

    std::env::set_var("SPLITBEAM_KERNEL", "scalar");
    set_kernel(None); // drop any override and the cached resolution
    assert_eq!(selected(), Kernel::Scalar);
    std::env::set_var("SPLITBEAM_KERNEL", "auto");
    set_kernel(None);
    assert_eq!(
        selected() == Kernel::Avx2Fma,
        avx2_fma_available(),
        "auto must pick AVX2 exactly when the host supports it"
    );
}

/// The PR 2 bit-exactness suite, pinned to the scalar backend: batched
/// serving, station-at-a-time serving and the fused path must all reproduce
/// one another bit-for-bit, and the wire codec must round-trip exactly.
#[test]
fn scalar_kernel_reproduces_reference_serving_outputs() {
    let m = model(5);
    let frames = station_frames(&m, 4, 6);
    let (batched_feedback, serial_feedback, fused_feedback) =
        with_kernel(KernelChoice::Scalar, || {
            let mut batched = ApServer::new();
            let mut serial = ApServer::new();
            // The fused reference below is the f32 reconstruction path, so pin
            // the servers to f32 tail weights regardless of the
            // SPLITBEAM_TAIL_WEIGHTS environment this suite runs under.
            batched.set_tail_weights(TailWeights::F32);
            serial.set_tail_weights(TailWeights::F32);
            let bkey = batched.register_model(m.clone());
            let skey = serial.register_model(m.clone());
            for (id, frame) in frames.iter().enumerate() {
                batched.register_station(id as u64, bkey, 6).unwrap();
                serial.register_station(id as u64, skey, 6).unwrap();
                batched.ingest_wire(id as u64, frame).unwrap();
                serial.ingest_wire(id as u64, frame).unwrap();
            }
            assert_eq!(
                batched.process_round().unwrap(),
                serial.process_round_serial().unwrap()
            );
            let batched_feedback: Vec<Vec<f32>> = (0..frames.len() as u64)
                .map(|id| batched.feedback_of(id).unwrap().to_vec())
                .collect();
            let serial_feedback: Vec<Vec<f32>> = (0..frames.len() as u64)
                .map(|id| serial.feedback_of(id).unwrap().to_vec())
                .collect();

            // Fused reconstruction straight from the decoded payloads.
            let payloads: Vec<QuantizedFeedback> = frames
                .iter()
                .map(|f| wire::decode_feedback(f).unwrap())
                .collect();
            let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
            let mut scratch = TailScratch::new();
            let out = m
                .reconstruct_quantized_batch_into(&refs, &mut scratch)
                .unwrap();
            let fused_feedback: Vec<Vec<f32>> = out
                .as_slice()
                .chunks_exact(out.cols())
                .map(<[f32]>::to_vec)
                .collect();
            (batched_feedback, serial_feedback, fused_feedback)
        });
    assert_eq!(
        batched_feedback, serial_feedback,
        "batched must equal serial"
    );
    assert_eq!(batched_feedback, fused_feedback, "fused must equal batched");

    // Wire roundtrip stays exact regardless of kernel.
    for frame in &frames {
        let payload = wire::decode_feedback(frame).unwrap();
        assert_eq!(&wire::encode_feedback(&payload).unwrap(), frame);
    }
}

/// Scalar and dispatched (possibly SIMD) kernels agree within the documented
/// tolerance on the full station→AP inference path, and the serving layer
/// stays batched==serial bit-exact under the SIMD backend too.
#[test]
fn simd_backend_stays_within_tolerance_and_serves_bit_exactly() {
    let m = model(7);
    let input: Vec<f32> = (0..448).map(|i| (i as f32 * 0.37).sin() * 0.1).collect();
    let scalar_out = with_kernel(KernelChoice::Scalar, || m.infer(&input).unwrap());
    let auto_out = with_kernel(KernelChoice::Auto, || m.infer(&input).unwrap());
    for (s, a) in scalar_out.iter().zip(auto_out.iter()) {
        assert!(
            (s - a).abs() <= 1e-4,
            "scalar {s} vs dispatched {a} exceeds tolerance"
        );
    }

    let frames = station_frames(&m, 3, 8);
    with_kernel(KernelChoice::Auto, || {
        let mut batched = ApServer::new();
        let mut serial = ApServer::new();
        let bkey = batched.register_model(m.clone());
        let skey = serial.register_model(m.clone());
        for (id, frame) in frames.iter().enumerate() {
            batched.register_station(id as u64, bkey, 8).unwrap();
            serial.register_station(id as u64, skey, 8).unwrap();
            batched.ingest_wire(id as u64, frame).unwrap();
            serial.ingest_wire(id as u64, frame).unwrap();
        }
        batched.process_round().unwrap();
        serial.process_round_serial().unwrap();
        for id in 0..frames.len() as u64 {
            assert_eq!(
                batched.feedback_of(id),
                serial.feedback_of(id),
                "station {id}: batched and serial must be bit-exact under SIMD dispatch"
            );
        }
    });
}
