//! Cross-crate integration tests: the full SplitBeam pipeline from channel
//! generation through training to the BER link simulation, compared against
//! the 802.11 and ideal baselines.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam_repro::prelude::*;

fn quick_dataset(env: &str, seed: u64) -> splitbeam_repro::datasets::generator::GeneratedDataset {
    let spec = dataset_for(2, Bandwidth::Mhz20, env).unwrap();
    generate_dataset(&spec, &GeneratorOptions::quick(60, seed)).unwrap()
}

fn train_quick(
    config: &SplitBeamConfig,
    data: &splitbeam_repro::datasets::generator::GeneratedDataset,
    seed: u64,
) -> SplitBeamModel {
    let (train_snaps, val_snaps, _) = data.split_train_val_test();
    let mut train = TrainingData::new(config.clone());
    for s in train_snaps {
        train.push_snapshot(s);
    }
    let mut val = TrainingData::new(config.clone());
    for s in val_snaps {
        val.push_snapshot(s);
    }
    let options = TrainingOptions {
        epochs: 6,
        ..TrainingOptions::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    train_model(config, train.examples(), val.examples(), &options, &mut rng).0
}

fn ber_for_feedback(
    snapshots: &[ChannelSnapshot],
    feedback_of: impl Fn(&ChannelSnapshot) -> Vec<Vec<mimo_math::CMatrix>>,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let link = LinkConfig {
        snr_db: 20.0,
        symbols_per_subcarrier: 1,
        ..LinkConfig::default()
    };
    let mut report = wifi_phy::link::LinkReport::empty();
    for snap in snapshots.iter().take(4) {
        let feedback = feedback_of(snap);
        let r = simulate_mu_mimo_ber(snap, &feedback, &link, &mut rng).unwrap();
        report.merge(&r);
    }
    report.ber()
}

#[test]
fn trained_splitbeam_beats_untrained_and_tracks_dot11() {
    let data = quick_dataset("E1", 1);
    let config = SplitBeamConfig::new(
        MimoConfig::symmetric(2, Bandwidth::Mhz20),
        CompressionLevel::OneQuarter,
    );
    let trained = train_quick(&config, &data, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let untrained = SplitBeamModel::new(config, &mut rng);
    let (_, _, test) = data.split_train_val_test();

    let ber_trained = ber_for_feedback(
        test,
        |snap| {
            (0..snap.num_users())
                .map(|u| trained.feedback_for_user_quantized(snap, u, 16).unwrap())
                .collect()
        },
        4,
    );
    let ber_untrained = ber_for_feedback(
        test,
        |snap| {
            (0..snap.num_users())
                .map(|u| untrained.feedback_for_user_quantized(snap, u, 16).unwrap())
                .collect()
        },
        4,
    );
    let ber_ideal = ber_for_feedback(test, |snap| snap.ideal_beamforming(), 4);

    assert!(
        ber_trained < ber_untrained,
        "training must reduce BER: trained {ber_trained} vs untrained {ber_untrained}"
    );
    assert!(
        ber_ideal <= ber_trained + 0.05,
        "ideal feedback should be at least as good"
    );
}

#[test]
fn dot11_pipeline_integrates_with_link_simulation() {
    let data = quick_dataset("E2", 5);
    let (_, _, test) = data.split_train_val_test();
    let ber_dot11 = ber_for_feedback(
        test,
        |snap| {
            (0..snap.num_users())
                .map(|u| {
                    dot11_bfi::pipeline::dot11_feedback_roundtrip(
                        snap.csi(u),
                        1,
                        AngleResolution::High,
                    )
                    .unwrap()
                })
                .collect()
        },
        6,
    );
    let ber_ideal = ber_for_feedback(test, |snap| snap.ideal_beamforming(), 6);
    // High-resolution quantization should track the ideal feedback closely.
    assert!(ber_dot11 < 0.2, "802.11 BER {ber_dot11} unexpectedly high");
    assert!(ber_dot11 + 1e-9 >= ber_ideal - 0.05);
}

#[test]
fn splitbeam_feedback_is_much_smaller_and_cheaper_than_dot11() {
    let config = SplitBeamConfig::new(
        MimoConfig::symmetric(3, Bandwidth::Mhz80),
        CompressionLevel::OneEighth,
    );
    let sb_bits = splitbeam_repro::splitbeam::airtime::model_feedback_bits(&config, 16);
    let dot11_bits = dot11_bfi::feedback::paper_report_bits(3, 242);
    assert!(
        (sb_bits as f64) < 0.35 * dot11_bits as f64,
        "SplitBeam feedback ({sb_bits} bits) should be far below 802.11 ({dot11_bits} bits)"
    );
    // The computational advantage is evaluated at 20 MHz; at 80 MHz the dense
    // head's quadratic subcarrier scaling erodes it (see EXPERIMENTS.md, Fig. 6).
    let narrow = SplitBeamConfig::new(
        MimoConfig::symmetric(3, Bandwidth::Mhz20),
        CompressionLevel::OneEighth,
    );
    let sb_macs = splitbeam_repro::splitbeam::complexity::splitbeam_head_macs(&narrow);
    let dot11_flops = dot11_bfi::complexity::dot11_sta_flops(3, 3, 56);
    assert!((sb_macs as f64) < 0.8 * dot11_flops as f64);
}

#[test]
fn end_to_end_delay_meets_the_10ms_budget() {
    use splitbeam_repro::hwsim::accelerator::AcceleratorModel;
    use splitbeam_repro::hwsim::delay::{end_to_end_delay_from_config_s, DelayBudget};
    use wifi_phy::sounding::SoundingConfig;

    for order in [2usize, 3, 4] {
        for bw in [Bandwidth::Mhz20, Bandwidth::Mhz80, Bandwidth::Mhz160] {
            let config = SplitBeamConfig::new(
                MimoConfig::symmetric(order, bw),
                CompressionLevel::OneQuarter,
            );
            let accel = AcceleratorModel::zynq_200mhz(order, order);
            let sounding = SoundingConfig::new(bw, order);
            let delay = end_to_end_delay_from_config_s(&config, &accel, &sounding, 16);
            assert!(
                delay.within(&DelayBudget::default()),
                "{order}x{order} @ {bw}: delay {} s exceeds 10 ms",
                delay.total_s()
            );
        }
    }
}
