//! Integration tests of the dataset substrate: the two simulated environments
//! must be statistically distinct, and the generated datasets must plug
//! directly into SplitBeam training.

use splitbeam_repro::prelude::*;

#[test]
fn environments_are_statistically_distinct() {
    let e1 = EnvironmentProfile::e1();
    let e2 = EnvironmentProfile::e2();
    assert!(e2.rms_delay_spread_ns() > 2.0 * e1.rms_delay_spread_ns());
    assert!(e2.taps.len() > e1.taps.len());
    assert!(e2.doppler_hz > e1.doppler_hz);
}

#[test]
fn catalog_covers_every_paper_configuration() {
    let catalog = dataset_catalog();
    assert_eq!(catalog.len(), 15);
    for order in [2usize, 3] {
        for bw in [Bandwidth::Mhz20, Bandwidth::Mhz40, Bandwidth::Mhz80] {
            for env in ["E1", "E2"] {
                assert!(
                    dataset_for(order, bw, env).is_ok(),
                    "{order}x{order} {bw} {env} missing"
                );
            }
        }
    }
    for order in [2usize, 3, 4] {
        assert!(dataset_for(order, Bandwidth::Mhz160, "Model-B").is_ok());
    }
}

#[test]
fn generated_dataset_feeds_training_data() {
    let spec = dataset_for(2, Bandwidth::Mhz40, "E2").unwrap();
    let generated = generate_dataset(&spec, &GeneratorOptions::quick(25, 9)).unwrap();
    let config = SplitBeamConfig::new(spec.mimo, CompressionLevel::OneSixteenth);
    let mut data = TrainingData::new(config.clone());
    for snap in &generated.snapshots {
        data.push_snapshot(snap);
    }
    assert!(data.len() >= generated.len()); // one example per station per snapshot
    let (input, target) = &data.examples()[0];
    assert_eq!(input.len(), config.input_dim());
    assert_eq!(target.len(), config.output_dim());
}

#[test]
fn dot11_and_splitbeam_agree_on_dimensions() {
    // The reconstructed 802.11 matrices and the SplitBeam feedback matrices must
    // have identical shapes so they are interchangeable in the precoder.
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mimo = MimoConfig::symmetric(3, Bandwidth::Mhz20);
    let channel = ChannelModel::from_config(EnvironmentProfile::e1(), &mimo);
    let snap = channel.sample(&mut rng);

    let dot11 =
        dot11_bfi::pipeline::dot11_feedback_roundtrip(snap.csi(0), 1, AngleResolution::High)
            .unwrap();
    let config = SplitBeamConfig::new(mimo, CompressionLevel::OneEighth);
    let model = SplitBeamModel::new(config, &mut rng);
    let sb = model.feedback_for_user(&snap, 0).unwrap();
    assert_eq!(dot11.len(), sb.len());
    assert_eq!(dot11[0].shape(), sb[0].shape());
}
