//! Shared wall-clock measurement helpers for the report binaries.
//!
//! One copy of the calibrate/measure machinery the `perf_report`,
//! `serve_report` and `kernel_report` binaries previously each hand-rolled.

use std::time::{Duration, Instant};

/// Sizes a batch so one batch of `body` runs ~2 ms, warming the code path up
/// along the way.
pub fn calibrate<F: FnMut()>(body: &mut F) -> u64 {
    let warmup_start = Instant::now();
    let mut warmup_iters = 0u64;
    while warmup_start.elapsed() < Duration::from_millis(60) {
        body();
        warmup_iters += 1;
    }
    let per_iter_ns = (warmup_start.elapsed().as_nanos() as u64 / warmup_iters.max(1)).max(1);
    (2_000_000 / per_iter_ns).clamp(1, 2_000_000)
}

/// Times `body` with a warm-up and batched wall-clock sampling; returns the
/// best-batch ns/op (least scheduler noise).
pub fn measure<F: FnMut()>(mut body: F) -> f64 {
    let batch = calibrate(&mut body);
    let mut best = f64::INFINITY;
    let run_start = Instant::now();
    let mut batches = 0;
    while (run_start.elapsed() < Duration::from_millis(400) || batches < 3) && batches < 200 {
        let batch_start = Instant::now();
        for _ in 0..batch {
            body();
        }
        best = best.min(batch_start.elapsed().as_nanos() as f64 / batch as f64);
        batches += 1;
    }
    best
}

/// Times two bodies by alternating their batches, so slow drift (frequency
/// scaling, background load) hits both sides equally. Returns
/// `(ns_per_op_a, ns_per_op_b)` as best-batch times.
pub fn measure_pair<A: FnMut(), B: FnMut()>(mut a: A, mut b: B) -> (f64, f64) {
    let batch_a = calibrate(&mut a);
    let batch_b = calibrate(&mut b);
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let run_start = Instant::now();
    let mut rounds = 0;
    while (run_start.elapsed() < Duration::from_millis(700) || rounds < 3) && rounds < 100 {
        let start = Instant::now();
        for _ in 0..batch_a {
            a();
        }
        best_a = best_a.min(start.elapsed().as_nanos() as f64 / batch_a as f64);
        let start = Instant::now();
        for _ in 0..batch_b {
            b();
        }
        best_b = best_b.min(start.elapsed().as_nanos() as f64 / batch_b as f64);
        rounds += 1;
    }
    (best_a, best_b)
}

/// Effective memory bandwidth in GB/s of an operation that moves `bytes`
/// bytes and takes `ns_per_op` nanoseconds. Bytes-per-ns is GB/s by
/// definition; non-positive times yield `0.0` so reports stay finite.
pub fn gb_per_s(bytes: usize, ns_per_op: f64) -> f64 {
    if ns_per_op <= 0.0 {
        return 0.0;
    }
    bytes as f64 / ns_per_op
}

/// Effective arithmetic throughput in GFLOP/s of an operation performing
/// `flops` floating-point (or int8-dot equivalent) operations in `ns_per_op`
/// nanoseconds. FLOPs-per-ns is GFLOP/s by definition.
pub fn gflop_per_s(flops: usize, ns_per_op: f64) -> f64 {
    if ns_per_op <= 0.0 {
        return 0.0;
    }
    flops as f64 / ns_per_op
}

/// Logical thread count of the host (tracked in every report).
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_time() {
        let ns = measure(|| {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(ns.is_finite() && ns > 0.0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn throughput_helpers_convert_correctly() {
        // 1000 bytes in 500 ns = 2 bytes/ns = 2 GB/s; same arithmetic for
        // GFLOP/s.
        assert!((gb_per_s(1000, 500.0) - 2.0).abs() < 1e-12);
        assert!((gflop_per_s(4000, 500.0) - 8.0).abs() < 1e-12);
        assert_eq!(gb_per_s(1000, 0.0), 0.0);
        assert_eq!(gflop_per_s(1000, -1.0), 0.0);
    }
}
