//! Shared machine-readable report writer for the `BENCH_PR*.json` series.
//!
//! The workspace's offline serde shim carries no serializer, so the benchmark
//! binaries used to hand-roll their JSON with `writeln!` — one private copy
//! per binary. This module is the single schema helper they all share now:
//! an insertion-ordered JSON value tree with the conventions the reports rely
//! on (finite floats rendered with six decimals, non-finite floats as `null`,
//! two-space pretty printing, `SPLITBEAM_BENCH_OUT` output override).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order, matching the historical
/// hand-rolled output.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A float, rendered with six decimals; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped minimally: backslash, quote, control characters).
    Str(String),
    /// An ordered list.
    Array(Vec<JsonValue>),
    /// An insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Int(i64::from(v))
    }
}
impl From<u8> for JsonValue {
    fn from(v: u8) -> Self {
        JsonValue::Int(i64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl JsonValue {
    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.6}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"");
                    escape_into(out, key);
                    out.push_str("\": ");
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

/// Builder for one `BENCH_PR<N>.json` document (a top-level JSON object).
#[derive(Debug, Clone, Default)]
pub struct JsonReport {
    fields: Vec<(String, JsonValue)>,
}

impl JsonReport {
    /// Starts an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a top-level field (insertion order is preserved).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Renders the document with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        JsonValue::Object(self.fields.clone()).render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes the report to `SPLITBEAM_BENCH_OUT` (when set) or `default_name`
    /// and returns the path written.
    pub fn write(&self, default_name: &str) -> String {
        let out_path =
            mimo_math::env::raw("SPLITBEAM_BENCH_OUT").unwrap_or_else(|| default_name.to_string());
        std::fs::write(&out_path, self.render()).expect("write benchmark report");
        out_path
    }
}

/// Convenience: builds an object value from `(key, value)` pairs.
pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The kernel-dispatch object every benchmark report embeds under `"kernel"`.
pub fn kernel_dispatch_value() -> JsonValue {
    let report = mimo_math::kernel::dispatch_report();
    object(vec![
        ("requested", report.requested.into()),
        ("selected", report.selected.into()),
        ("selected_int8", report.selected_int8.into()),
        ("avx2_fma_available", report.avx2_fma_available.into()),
        ("avx512f_available", report.avx512f_available.into()),
        ("avx512bw_available", report.avx512bw_available.into()),
        ("avx512_vnni_available", report.avx512_vnni_available.into()),
    ])
}

/// The autotune object reports embed under `"tune"`: the blocking parameters
/// the one-shot startup probe selected (or the pinned defaults under
/// `SPLITBEAM_TUNE=off`).
pub fn tune_value() -> JsonValue {
    let params = mimo_math::kernel::tune::params();
    object(vec![
        ("f32_k_block", params.f32_k_block.into()),
        ("int8_group_block", params.int8_group_block.into()),
        ("int8_panel4", params.int8_panel4.into()),
        ("probed", params.probed.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_nested_document() {
        let doc = JsonReport::new()
            .field("pr", 3usize)
            .field("ratio", 0.25f64)
            .field("nan_becomes_null", f64::NAN)
            .field("ok", true)
            .field(
                "nested",
                object(vec![
                    ("name", "x\"y".into()),
                    ("items", vec![JsonValue::Int(1), JsonValue::Int(2)].into()),
                ]),
            )
            .render();
        assert!(doc.starts_with("{\n  \"pr\": 3,\n  \"ratio\": 0.250000"));
        assert!(doc.contains("\"nan_becomes_null\": null"));
        assert!(doc.contains("\"name\": \"x\\\"y\""));
        assert!(doc.contains("\"items\": [\n      1,\n      2\n    ]"));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn kernel_dispatch_object_has_expected_fields() {
        match kernel_dispatch_value() {
            JsonValue::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(
                    keys,
                    vec![
                        "requested",
                        "selected",
                        "selected_int8",
                        "avx2_fma_available",
                        "avx512f_available",
                        "avx512bw_available",
                        "avx512_vnni_available",
                    ]
                );
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn tune_object_has_expected_fields() {
        match tune_value() {
            JsonValue::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(
                    keys,
                    vec!["f32_k_block", "int8_group_block", "int8_panel4", "probed"]
                );
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn empty_containers_render_compactly() {
        let doc = JsonReport::new()
            .field("a", JsonValue::Array(Vec::new()))
            .field("o", JsonValue::Object(Vec::new()))
            .render();
        assert!(doc.contains("\"a\": []"));
        assert!(doc.contains("\"o\": {}"));
    }
}
