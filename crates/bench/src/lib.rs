//! Shared harness used by the figure/table binaries of the SplitBeam evaluation.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper. The
//! heavy lifting — generating a dataset, training a SplitBeam model (and the
//! LB-SciFi baseline), and measuring BER over the held-out test split — lives
//! here so the binaries stay small and consistent.
//!
//! The default workload sizes are deliberately modest so every figure can be
//! regenerated on a laptop in minutes; set the environment variables
//! `SPLITBEAM_SAMPLES` (CSI snapshots per dataset), `SPLITBEAM_EPOCHS`
//! (training epochs) and `SPLITBEAM_TEST_SNAPSHOTS` to approach the paper's
//! full-scale runs.

use dot11_bfi::quantize::AngleResolution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam::training::{train_model, TrainingData, TrainingOptions};
use splitbeam_baselines::dot11::dot11_feedback_for_snapshot;
use splitbeam_baselines::lbscifi::{angle_vector_for_user, LbSciFiConfig, LbSciFiModel};
use splitbeam_datasets::catalog::DatasetSpec;
use splitbeam_datasets::generator::{generate_dataset, GeneratedDataset, GeneratorOptions};
use wifi_phy::channel::ChannelSnapshot;
use wifi_phy::coding::CodeRate;
use wifi_phy::link::{simulate_mu_mimo_ber, LinkConfig, LinkReport};
use wifi_phy::precoding::BeamformingFeedback;

/// Workload-size knobs, resolved from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// CSI snapshots generated per dataset.
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Test snapshots evaluated with the link simulator.
    pub test_snapshots: usize,
    /// Link-simulation SNR in dB.
    pub snr_db: f64,
}

impl Default for Workload {
    fn default() -> Self {
        Self {
            samples: 120,
            epochs: 10,
            test_snapshots: 8,
            snr_db: 18.0,
        }
    }
}

impl Workload {
    /// Reads the workload from `SPLITBEAM_SAMPLES`, `SPLITBEAM_EPOCHS`,
    /// `SPLITBEAM_TEST_SNAPSHOTS` and `SPLITBEAM_SNR_DB`, falling back to the
    /// quick defaults.
    pub fn from_env() -> Self {
        use mimo_math::env::parse_or;
        let default = Self::default();
        Self {
            samples: parse_or("SPLITBEAM_SAMPLES", default.samples),
            epochs: parse_or("SPLITBEAM_EPOCHS", default.epochs),
            test_snapshots: parse_or("SPLITBEAM_TEST_SNAPSHOTS", default.test_snapshots),
            snr_db: parse_or("SPLITBEAM_SNR_DB", default.snr_db),
        }
    }
}

/// Generates (or regenerates) the dataset of one Table I entry at the workload size.
pub fn dataset(spec: &DatasetSpec, workload: &Workload, seed: u64) -> GeneratedDataset {
    let mut options = GeneratorOptions::quick(workload.samples, seed);
    // The moving median over hundreds of subcarriers is the slowest part of the
    // capture pipeline; keep it for the measured-equivalent bandwidths and skip
    // it for the very wide synthetic configurations.
    if spec.mimo.subcarriers() > 242 {
        options.capture.median_window = 1;
    }
    generate_dataset(spec, &options).expect("dataset generation cannot fail for catalog specs")
}

/// Builds SplitBeam training data from generated snapshots.
pub fn training_data(config: &SplitBeamConfig, snapshots: &[ChannelSnapshot]) -> TrainingData {
    let mut data = TrainingData::new(config.clone());
    for snap in snapshots {
        data.push_snapshot(snap);
    }
    data
}

/// Trains one SplitBeam model on a generated dataset.
pub fn train_splitbeam(
    config: &SplitBeamConfig,
    generated: &GeneratedDataset,
    workload: &Workload,
    seed: u64,
) -> SplitBeamModel {
    let (train_snaps, val_snaps, _) = generated.split_train_val_test();
    let train = training_data(config, train_snaps);
    let val = training_data(config, val_snaps);
    let options = TrainingOptions {
        epochs: workload.epochs,
        ..TrainingOptions::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (model, _history) =
        train_model(config, train.examples(), val.examples(), &options, &mut rng);
    model
}

/// Trains an LB-SciFi autoencoder on the same snapshots.
pub fn train_lbscifi(
    config: &LbSciFiConfig,
    generated: &GeneratedDataset,
    workload: &Workload,
    seed: u64,
) -> LbSciFiModel {
    let (train_snaps, _, _) = generated.split_train_val_test();
    let mut vectors = Vec::new();
    for snap in train_snaps {
        for user in 0..snap.num_users() {
            if let Ok(v) = angle_vector_for_user(snap, user) {
                vectors.push(v);
            }
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut model = LbSciFiModel::new(config.clone(), &mut rng);
    model.train(&vectors, workload.epochs, &mut rng);
    model
}

/// Which feedback scheme produces the beamforming matrices handed to the AP.
pub enum FeedbackScheme<'a> {
    /// Ideal (unquantized SVD) feedback — the upper bound.
    Ideal,
    /// The standard 802.11 quantized Givens feedback.
    Dot11(AngleResolution),
    /// A trained SplitBeam model (quantized bottleneck, 16 bits/value).
    SplitBeam(&'a SplitBeamModel),
    /// A trained SplitBeam model whose tail runs the bound int8 weight store
    /// (same quantized bottleneck) under the dispatched int8 kernel — the
    /// low-precision serving path's BER.
    SplitBeamInt8(&'a SplitBeamModel, &'a splitbeam::QuantizedTail),
    /// A trained LB-SciFi autoencoder.
    LbSciFi(&'a LbSciFiModel),
}

/// Produces the per-user feedback for one snapshot under a scheme.
pub fn feedback_for(
    scheme: &FeedbackScheme<'_>,
    snapshot: &ChannelSnapshot,
) -> Option<BeamformingFeedback> {
    match scheme {
        FeedbackScheme::Ideal => Some(snapshot.ideal_beamforming()),
        FeedbackScheme::Dot11(resolution) => {
            dot11_feedback_for_snapshot(snapshot, *resolution).ok()
        }
        FeedbackScheme::SplitBeam(model) => {
            let mut out = Vec::with_capacity(snapshot.num_users());
            for user in 0..snapshot.num_users() {
                out.push(model.feedback_for_user_quantized(snapshot, user, 16).ok()?);
            }
            Some(out)
        }
        FeedbackScheme::SplitBeamInt8(model, tail) => {
            let ik = mimo_math::kernel::int8::selected_int8();
            let mut out = Vec::with_capacity(snapshot.num_users());
            for user in 0..snapshot.num_users() {
                let csi: Vec<f32> = snapshot
                    .csi_real_vector(user)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect();
                let payload = model.compress_quantized(&csi, 16).ok()?;
                let flat = tail.reconstruct_quantized(&payload, ik).ok()?;
                out.push(model.feedback_to_matrices(&flat).ok()?);
            }
            Some(out)
        }
        FeedbackScheme::LbSciFi(model) => {
            let mut out = Vec::with_capacity(snapshot.num_users());
            for user in 0..snapshot.num_users() {
                out.push(model.feedback_for_user(snapshot, user).ok()?);
            }
            Some(out)
        }
    }
}

/// Measures the BER of a feedback scheme over the test split of a dataset.
pub fn measure_ber(
    scheme: &FeedbackScheme<'_>,
    test_snapshots: &[ChannelSnapshot],
    workload: &Workload,
    coding: Option<CodeRate>,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let link = LinkConfig {
        snr_db: workload.snr_db,
        symbols_per_subcarrier: 1,
        coding,
        ..LinkConfig::default()
    };
    let mut report = LinkReport::empty();
    for snap in test_snapshots.iter().take(workload.test_snapshots) {
        if let Some(feedback) = feedback_for(scheme, snap) {
            if let Ok(r) = simulate_mu_mimo_ber(snap, &feedback, &link, &mut rng) {
                report.merge(&r);
            }
        }
    }
    report.ber()
}

/// Whether the int8-tail BER stays within the quantized-f32 envelope: the
/// accuracy guardrail of the low-precision serving path. Int8 weight
/// quantization adds at most a per-row rounding error of half a scale step,
/// so its BER may wander a little around the f32 number at any finite test
/// size, but a real accuracy regression blows well past this margin.
pub fn ber_within_envelope(int8_ber: f64, f32_ber: f64) -> bool {
    int8_ber.is_finite() && f32_ber.is_finite() && int8_ber <= f32_ber * 1.15 + 0.01
}

/// The standard compression levels swept by most figures.
pub fn standard_levels() -> Vec<CompressionLevel> {
    CompressionLevel::STANDARD.to_vec()
}

/// Prints a table header followed by aligned rows (simple fixed-width output
/// matching the series the paper plots).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

pub mod report;
pub mod timing;

/// Reads a `usize` knob from the environment, falling back on parse failure
/// (shared by the `serve_report` / `kernel_report` binaries).
pub fn env_usize(key: &str, default: usize) -> usize {
    mimo_math::env::parse_or(key, default)
}

/// Whether two servers (any [`splitbeam_serve::driver::RoundServing`]
/// implementation: single-shard or sharded) hold bit-identical reconstructed
/// feedback for stations `0..stations` — the serving layer's bit-exactness
/// verdict.
pub fn feedback_identical<A, B>(a: &A, b: &B, stations: usize) -> bool
where
    A: splitbeam_serve::driver::RoundServing,
    B: splitbeam_serve::driver::RoundServing,
{
    (0..stations as splitbeam_serve::StationId).all(|id| a.feedback_of(id) == b.feedback_of(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbeam_datasets::catalog::dataset_for;
    use wifi_phy::ofdm::Bandwidth;

    fn tiny_workload() -> Workload {
        Workload {
            samples: 30,
            epochs: 2,
            test_snapshots: 2,
            snr_db: 18.0,
        }
    }

    #[test]
    fn end_to_end_pipeline_produces_finite_ber() {
        let workload = tiny_workload();
        let spec = dataset_for(2, Bandwidth::Mhz20, "E1").unwrap();
        let generated = dataset(&spec, &workload, 1);
        let config = SplitBeamConfig::new(spec.mimo, CompressionLevel::OneQuarter);
        let model = train_splitbeam(&config, &generated, &workload, 2);
        let (_, _, test) = generated.split_train_val_test();
        let ber_sb = measure_ber(&FeedbackScheme::SplitBeam(&model), test, &workload, None, 3);
        let ber_ideal = measure_ber(&FeedbackScheme::Ideal, test, &workload, None, 3);
        assert!(ber_sb.is_finite() && (0.0..=0.5).contains(&ber_sb));
        assert!(ber_ideal <= ber_sb + 0.5);
    }

    #[test]
    fn int8_tail_ber_stays_within_f32_envelope() {
        // Reduced-workload version of the quant_report accuracy guardrail:
        // the same 3x3 configuration as the fig09 point at 20 MHz (80 MHz is
        // too heavy for a debug-mode test; the full-scale point runs in
        // quant_report under CI). Identical link seed for both schemes, so
        // the only difference is the tail's weight precision.
        let workload = tiny_workload();
        let spec = dataset_for(3, Bandwidth::Mhz20, "E1").unwrap();
        let generated = dataset(&spec, &workload, 9);
        let config = SplitBeamConfig::new(spec.mimo, CompressionLevel::OneEighth);
        let model = train_splitbeam(&config, &generated, &workload, 11);
        let tail = splitbeam::QuantizedTail::bind(&model);
        let (_, _, test) = generated.split_train_val_test();
        let ber_f32 = measure_ber(
            &FeedbackScheme::SplitBeam(&model),
            test,
            &workload,
            None,
            13,
        );
        let ber_int8 = measure_ber(
            &FeedbackScheme::SplitBeamInt8(&model, &tail),
            test,
            &workload,
            None,
            13,
        );
        assert!(
            ber_within_envelope(ber_int8, ber_f32),
            "int8 tail BER {ber_int8} outside the quantized-f32 envelope (f32 {ber_f32})"
        );
    }

    #[test]
    fn workload_from_env_defaults() {
        let w = Workload::from_env();
        assert!(w.samples > 0 && w.epochs > 0 && w.test_snapshots > 0);
    }

    #[test]
    fn dot11_scheme_produces_feedback() {
        let workload = tiny_workload();
        let spec = dataset_for(2, Bandwidth::Mhz20, "E2").unwrap();
        let generated = dataset(&spec, &workload, 4);
        let snap = &generated.snapshots[0];
        let feedback = feedback_for(&FeedbackScheme::Dot11(AngleResolution::High), snap).unwrap();
        assert_eq!(feedback.len(), 2);
    }
}
