//! Figure 13: cross-environment BER vs bandwidth for 2x2 and 3x3 MU-MIMO at
//! K = 1/8, against the 802.11 baseline and the single-environment result.

use dot11_bfi::quantize::AngleResolution;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam_bench::{
    dataset, measure_ber, print_table, train_splitbeam, FeedbackScheme, Workload,
};
use splitbeam_datasets::catalog::dataset_for;
use wifi_phy::ofdm::Bandwidth;

fn main() {
    let workload = Workload::from_env();
    let mut rows = Vec::new();
    for order in [2usize, 3] {
        for (train_env, test_env) in [("E1", "E2"), ("E2", "E1")] {
            for bw in [Bandwidth::Mhz20, Bandwidth::Mhz40, Bandwidth::Mhz80] {
                let train_spec = dataset_for(order, bw, train_env).expect("catalog entry");
                let test_spec = dataset_for(order, bw, test_env).expect("catalog entry");
                let train_data = dataset(&train_spec, &workload, 500 + train_spec.id.0 as u64);
                let test_data = dataset(&test_spec, &workload, 500 + test_spec.id.0 as u64);
                let config = SplitBeamConfig::new(train_spec.mimo, CompressionLevel::OneEighth);
                let model = train_splitbeam(&config, &train_data, &workload, 51);

                let (_, _, same_env_test) = train_data.split_train_val_test();
                let (_, _, cross_env_test) = test_data.split_train_val_test();
                let single = measure_ber(
                    &FeedbackScheme::SplitBeam(&model),
                    same_env_test,
                    &workload,
                    None,
                    53,
                );
                let cross = measure_ber(
                    &FeedbackScheme::SplitBeam(&model),
                    cross_env_test,
                    &workload,
                    None,
                    53,
                );
                let dot11 = measure_ber(
                    &FeedbackScheme::Dot11(AngleResolution::High),
                    cross_env_test,
                    &workload,
                    None,
                    53,
                );
                rows.push(vec![
                    format!("{order}x{order}"),
                    format!("{train_env}/{test_env}"),
                    format!("{bw}"),
                    format!("{dot11:.4}"),
                    format!("{single:.4}"),
                    format!("{cross:.4}"),
                ]);
            }
        }
    }
    print_table(
        "Figure 13: cross-environment BER (K = 1/8)",
        &[
            "config",
            "train/test env",
            "bandwidth",
            "802.11",
            "single-env",
            "cross-env",
        ],
        &rows,
    );
}
