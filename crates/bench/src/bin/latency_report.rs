//! Event-driven serving latency benchmark: virtual end-to-end delay and
//! Eq. 7d deadline enforcement vs. station count.
//!
//! Drives the `splitbeam_serve::event::EventDriver` (head compute from the
//! Zynq accelerator model, seeded jitter, shared-medium contention, deadline
//! classification at round close) over growing fleets and writes
//! `BENCH_PR5.json` with:
//!
//! * per-station-count rows: deadline-hit rate, p50/p99 virtual end-to-end
//!   delay, on-time/late/expired counts, medium airtime and queueing,
//! * the **lockstep-parity verdict**: the event driver with zero jitter, zero
//!   compute latency and an ideal medium must be bit-exact with the legacy
//!   batched, serial and sharded ({1, 4} shards) drivers,
//! * the **determinism verdict**: two runs with the same seed must produce
//!   identical virtual summaries.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin latency_report            # writes BENCH_PR5.json
//! SPLITBEAM_STATIONS=32 SPLITBEAM_ROUNDS=8 SPLITBEAM_JITTER_NS=500000 \
//!     cargo run --release -p bench --bin latency_report
//! ```
//!
//! The binary exits non-zero when the parity or determinism verdict is false
//! — CI runs it as a smoke test.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_bench::report::{kernel_dispatch_value, JsonReport, JsonValue};
use splitbeam_bench::timing::num_threads;
use splitbeam_bench::{env_usize, feedback_identical};
use splitbeam_hwsim::accelerator::AcceleratorModel;
use splitbeam_hwsim::event::ns_to_s;
use splitbeam_serve::driver::{
    build_server, build_sharded_server, generate_traffic, serve_traffic, RoundServing, ServeMode,
    SimConfig, SimTraffic,
};
use splitbeam_serve::event::{build_event_driver, build_sharded_event_driver, EventConfig};
use splitbeam_serve::{ApServer, EventDriver, RoundSummary, StationId};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};
use wifi_phy::sounding::SoundingConfig;

/// The PR index this report seeds.
const PR_INDEX: u32 = 5;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays `traffic` through an event driver round by round, harvesting every
/// delivered report's virtual e2e delay — served *and* expired, so the
/// percentiles see the uncensored tail of the distribution.
fn run_event(
    driver: &mut EventDriver<ApServer>,
    traffic: &SimTraffic,
) -> (Vec<RoundSummary>, Vec<f64>) {
    let mut summaries = Vec::with_capacity(traffic.rounds.len());
    let mut delays_s = Vec::new();
    for round in &traffic.rounds {
        for (id, frame) in &round.frames {
            let Some(frame) = frame else { continue };
            driver
                .ingest_wire(*id, frame)
                .expect("traffic stations are registered");
        }
        let summary = driver
            .close_round(ServeMode::Batched)
            .expect("event round close");
        delays_s.extend(
            driver
                .last_round_stamps()
                .iter()
                .map(|(_, stamp)| ns_to_s(stamp.total_ns())),
        );
        summaries.push(summary);
    }
    (summaries, delays_s)
}

fn main() {
    let max_stations = env_usize("SPLITBEAM_STATIONS", 16);
    let rounds = env_usize("SPLITBEAM_ROUNDS", 6);
    let bits_per_value = 4u8;

    // The paper's headline MU-MIMO configuration (same as serve/shard
    // reports): 3x3 at 80 MHz, 545-wide bottleneck at K = 1/8.
    let mimo = MimoConfig::symmetric(3, Bandwidth::Mhz80);
    let config = SplitBeamConfig::new(mimo, CompressionLevel::OneEighth);
    let bottleneck_dim = config.bottleneck_dim();
    let sounding = SoundingConfig::new(Bandwidth::Mhz80, max_stations);
    let accel = AcceleratorModel::zynq_200mhz(3, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let model = SplitBeamModel::new(config, &mut rng);

    let event_cfg = EventConfig::realistic(sounding.feedback_rate_mbps, 200_000, 42);
    let station_sweep: Vec<usize> = [2usize, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&n| n <= max_stations)
        .collect();

    println!(
        "SplitBeam latency report (PR {PR_INDEX}) — up to {max_stations} stations x {rounds} \
         rounds, {bottleneck_dim}-wide bottleneck at {bits_per_value} bits/value, medium \
         {} Mbit/s, jitter <= {} ns\n",
        sounding.feedback_rate_mbps, event_cfg.jitter_max_ns
    );

    // Virtual-delay sweep vs. station count.
    let mut sweep_rows = Vec::new();
    let mut deterministic = true;
    for &stations in &station_sweep {
        let sim = SimConfig {
            stations,
            rounds,
            bits_per_value,
            drop_every: 0,
            snr_db: 25.0,
            churn: splitbeam_serve::driver::ChurnConfig::none(),
        };
        let traffic = generate_traffic(&sim, &model, &mut rng);
        let mut driver = build_event_driver(
            model.clone(),
            stations,
            bits_per_value,
            event_cfg,
            Some(&accel),
        );
        let (summaries, mut delays_s) = run_event(&mut driver, &traffic);

        // Same-seed rerun must reproduce the virtual summaries exactly.
        let mut rerun = build_event_driver(
            model.clone(),
            stations,
            bits_per_value,
            event_cfg,
            Some(&accel),
        );
        let (summaries2, _) = run_event(&mut rerun, &traffic);
        deterministic &= summaries == summaries2;

        let on_time: usize = summaries.iter().map(|s| s.on_time).sum();
        let late: usize = summaries.iter().map(|s| s.late).sum();
        let expired: usize = summaries.iter().map(|s| s.expired).sum();
        // Counted from the *traffic*, independently of the classification
        // counters — CI cross-checks that on_time + late + expired accounts
        // for every transmitted frame.
        let frames_transmitted = traffic.total_frames();
        let hit_rate = if frames_transmitted == 0 {
            1.0
        } else {
            on_time as f64 / frames_transmitted as f64
        };
        delays_s.sort_by(f64::total_cmp);
        let p50_ms = percentile(&delays_s, 0.50) * 1e3;
        let p99_ms = percentile(&delays_s, 0.99) * 1e3;
        println!(
            "{stations:>3} stations  deadline-hit {:>6.1}%   p50 {p50_ms:>7.3} ms   \
             p99 {p99_ms:>7.3} ms   on-time/late/expired {on_time}/{late}/{expired}   \
             medium air {:.3} ms, queue {:.3} ms",
            hit_rate * 100.0,
            driver.medium().total_air_ns() as f64 / 1e6,
            driver.medium().total_wait_ns() as f64 / 1e6,
        );
        sweep_rows.push(JsonValue::Object(vec![
            ("stations".into(), stations.into()),
            ("frames_transmitted".into(), frames_transmitted.into()),
            ("deadline_hit_rate".into(), hit_rate.into()),
            ("p50_e2e_ms".into(), p50_ms.into()),
            ("p99_e2e_ms".into(), p99_ms.into()),
            ("on_time".into(), on_time.into()),
            ("late".into(), late.into()),
            ("expired".into(), expired.into()),
            (
                "medium_air_ms".into(),
                (driver.medium().total_air_ns() as f64 / 1e6).into(),
            ),
            (
                "medium_queue_ms".into(),
                (driver.medium().total_wait_ns() as f64 / 1e6).into(),
            ),
        ]));
    }

    // Lockstep-parity verdict: zero jitter + zero compute + ideal medium
    // must reproduce every legacy driver bit-exactly.
    let parity_stations = station_sweep.last().copied().unwrap_or(4);
    let parity_sim = SimConfig {
        stations: parity_stations,
        rounds,
        bits_per_value,
        drop_every: 7,
        snr_db: 25.0,
        churn: splitbeam_serve::driver::ChurnConfig::none(),
    };
    let parity_traffic = generate_traffic(&parity_sim, &model, &mut rng);
    let mut batched = build_server(model.clone(), parity_stations, bits_per_value);
    let want =
        serve_traffic(&mut batched, &parity_traffic, ServeMode::Batched).expect("batched serving");
    let mut serial = build_server(model.clone(), parity_stations, bits_per_value);
    let want_serial =
        serve_traffic(&mut serial, &parity_traffic, ServeMode::Serial).expect("serial serving");
    let mut event = build_event_driver(
        model.clone(),
        parity_stations,
        bits_per_value,
        EventConfig::lockstep(),
        None,
    );
    let got =
        serve_traffic(&mut event, &parity_traffic, ServeMode::Batched).expect("event serving");
    let mut parity = got == want
        && want == want_serial
        && feedback_identical(&event, &batched, parity_stations)
        && feedback_identical(&event, &serial, parity_stations);
    let mut parity_rows = vec![JsonValue::Object(vec![
        ("reference".into(), "batched+serial".into()),
        ("matches".into(), parity.into()),
    ])];
    for shards in [1usize, 4] {
        let mut legacy =
            build_sharded_server(model.clone(), parity_stations, bits_per_value, shards);
        let legacy_outcome = serve_traffic(&mut legacy, &parity_traffic, ServeMode::Batched)
            .expect("sharded serving");
        let mut sharded_event = build_sharded_event_driver(
            model.clone(),
            parity_stations,
            bits_per_value,
            shards,
            EventConfig::lockstep(),
            None,
        );
        let sharded_outcome =
            serve_traffic(&mut sharded_event, &parity_traffic, ServeMode::Batched)
                .expect("sharded event serving");
        let matches = sharded_outcome == legacy_outcome
            && feedback_identical(&sharded_event, &batched, parity_stations)
            && (0..parity_stations as StationId)
                .all(|id| sharded_event.feedback_of(id) == legacy.feedback_of(id));
        parity &= matches;
        parity_rows.push(JsonValue::Object(vec![
            ("reference".into(), format!("sharded_{shards}").into()),
            ("matches".into(), matches.into()),
        ]));
    }
    println!(
        "\nlockstep parity (event == batched == serial == sharded 1/4): {parity}   \
         same-seed determinism: {deterministic}"
    );

    let report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value())
        .field("rounds", rounds)
        .field("bits_per_value", bits_per_value)
        .field("bottleneck_dim", bottleneck_dim)
        .field("budget_ms", event_cfg.budget.max_delay_s * 1e3)
        .field("grace_ms", event_cfg.grace_s * 1e3)
        .field("jitter_ns", JsonValue::Int(event_cfg.jitter_max_ns as i64))
        .field("medium_rate_mbps", sounding.feedback_rate_mbps)
        .field(
            "station_sweep",
            JsonValue::Array(station_sweep.iter().map(|&s| s.into()).collect()),
        )
        .field("latency", JsonValue::Array(sweep_rows))
        .field("parity", JsonValue::Array(parity_rows))
        .field("lockstep_parity", parity)
        .field("deterministic", deterministic);
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("wrote {out_path}");

    if !parity {
        eprintln!("FAIL: event-driven serving diverged from the lockstep references");
        std::process::exit(1);
    }
    if !deterministic {
        eprintln!("FAIL: same-seed event runs diverged");
        std::process::exit(1);
    }
}
