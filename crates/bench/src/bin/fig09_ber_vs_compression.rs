//! Figure 9: BER as a function of the compression rate K (SplitBeam 1/32 ...
//! 1/4 vs 802.11) for 2x2 and 3x3 configurations in E1 and E2 at 20/40/80 MHz.

use dot11_bfi::quantize::AngleResolution;
use splitbeam::config::SplitBeamConfig;
use splitbeam_bench::{
    dataset, measure_ber, print_table, standard_levels, train_splitbeam, FeedbackScheme, Workload,
};
use splitbeam_datasets::catalog::dataset_for;
use wifi_phy::ofdm::Bandwidth;

fn main() {
    let workload = Workload::from_env();
    let mut rows = Vec::new();
    for order in [2usize, 3] {
        for env in ["E1", "E2"] {
            for bw in [Bandwidth::Mhz20, Bandwidth::Mhz40, Bandwidth::Mhz80] {
                let spec = dataset_for(order, bw, env).expect("catalog entry");
                let generated = dataset(&spec, &workload, 100 + spec.id.0 as u64);
                let (_, _, test) = generated.split_train_val_test();
                for level in standard_levels() {
                    let config = SplitBeamConfig::new(spec.mimo, level);
                    let model =
                        train_splitbeam(&config, &generated, &workload, 7 + spec.id.0 as u64);
                    let ber = measure_ber(
                        &FeedbackScheme::SplitBeam(&model),
                        test,
                        &workload,
                        None,
                        13,
                    );
                    rows.push(vec![
                        format!("{order}x{order}"),
                        env.to_string(),
                        format!("{bw}"),
                        format!("SB {}", level.label()),
                        format!("{ber:.4}"),
                    ]);
                }
                let dot11 = measure_ber(
                    &FeedbackScheme::Dot11(AngleResolution::High),
                    test,
                    &workload,
                    None,
                    13,
                );
                rows.push(vec![
                    format!("{order}x{order}"),
                    env.to_string(),
                    format!("{bw}"),
                    "802.11".to_string(),
                    format!("{dot11:.4}"),
                ]);
            }
        }
    }
    print_table(
        "Figure 9: BER vs compression rate (SplitBeam vs 802.11)",
        &["config", "env", "bandwidth", "scheme", "BER"],
        &rows,
    );
}
