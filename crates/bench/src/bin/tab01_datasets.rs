//! Table I: the dataset catalog (D1-D15) and the generated sample counts.

use splitbeam_bench::{dataset, print_table, Workload};
use splitbeam_datasets::catalog::dataset_catalog;

fn main() {
    let workload = Workload::from_env();
    let rows: Vec<Vec<String>> = dataset_catalog()
        .iter()
        .map(|spec| {
            let generated = dataset(spec, &workload, spec.id.0 as u64);
            vec![
                format!("{}", spec.id),
                format!("{:?}", spec.kind),
                spec.mimo.label(),
                spec.environment.clone(),
                format!("{}", spec.samples),
                format!("{}", generated.len()),
            ]
        })
        .collect();
    print_table(
        "Table I: datasets (paper sample budget vs generated-at-workload)",
        &["id", "kind", "config", "env", "paper samples", "generated"],
        &rows,
    );
}
