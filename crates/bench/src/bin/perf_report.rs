//! Performance-regression report for the SplitBeam hot paths.
//!
//! Runs the workloads behind the criterion benches — complex matmul, the
//! per-subcarrier SVD + Givens station pipeline, end-to-end
//! `compute_feedback`, SplitBeam model inference and the MU-MIMO link
//! simulation — comparing each optimized kernel against the naive reference
//! implementation it replaced (compiled via the `reference` features), and
//! writes a machine-readable `BENCH_PR<N>.json`.
//!
//! Every future PR regenerates this report; the sequence of `BENCH_*.json`
//! files is the repo's perf trajectory.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin perf_report            # writes BENCH_PR1.json
//! SPLITBEAM_BENCH_OUT=custom.json cargo run --release -p bench --bin perf_report
//! ```

use std::hint::black_box;

use dot11_bfi::engine::FeedbackEngine;
use dot11_bfi::quantize::AngleResolution;
use dot11_bfi::reference as bfi_ref;
use dot11_bfi::GivensAngles;
use mimo_math::reference as math_ref;
use mimo_math::svd::Svd;
use mimo_math::{CMatrix, Complex64, Workspace};
use neural::{Activation, Matrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_bench::report::{kernel_dispatch_value, object, JsonReport, JsonValue};
use splitbeam_bench::timing::{measure, measure_pair, num_threads};
use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
use wifi_phy::link::{simulate_mu_mimo_ber, LinkConfig};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

/// The PR index this report seeds; bump per PR (or override via env).
const PR_INDEX: u32 = 1;

/// One measured workload, optionally with a naive-reference comparison.
struct Entry {
    name: &'static str,
    /// What one "op" means for this entry (for the throughput field).
    unit: &'static str,
    ns_per_op: f64,
    reference_ns_per_op: Option<f64>,
}

impl Entry {
    fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op
    }

    fn speedup(&self) -> Option<f64> {
        self.reference_ns_per_op.map(|r| r / self.ns_per_op)
    }
}

fn random_cmatrix(rng: &mut impl Rng, m: usize, n: usize) -> CMatrix {
    CMatrix::from_fn(m, n, |_, _| {
        Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

/// Blocked write-into matmul vs. the naive allocating product (8x8 complex).
fn bench_matmul() -> Entry {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let a = random_cmatrix(&mut rng, 8, 8);
    let b = random_cmatrix(&mut rng, 8, 8);
    let mut out = CMatrix::zeros(8, 8);
    let (fast, naive) = measure_pair(
        || a.matmul_into(black_box(&b), &mut out),
        || {
            black_box(math_ref::matmul_naive(black_box(&a), black_box(&b)));
        },
    );
    Entry {
        name: "matmul_8x8_complex",
        unit: "matmul",
        ns_per_op: fast,
        reference_ns_per_op: Some(naive),
    }
}

/// The per-subcarrier station pipeline: SVD right-vectors + Givens angles.
fn bench_svd_givens(n: usize) -> Entry {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let h = random_cmatrix(&mut rng, n, n);
    let mut ws = Workspace::new();
    let mut v = CMatrix::zeros(1, 1);
    let mut omega = CMatrix::zeros(1, 1);
    let mut angles = GivensAngles {
        nt: 0,
        nss: 0,
        phi: Vec::new(),
        psi: Vec::new(),
    };
    let (fast, naive) = measure_pair(
        || {
            Svd::right_vectors_into(black_box(&h), 1, &mut v, &mut ws);
            GivensAngles::decompose_into(&v, &mut omega, &mut angles).unwrap();
        },
        || {
            let v = math_ref::svd_naive(black_box(&h)).beamforming_matrix(1);
            black_box(bfi_ref::decompose_naive(&v).unwrap());
        },
    );
    Entry {
        name: if n == 4 {
            "svd_givens_per_subcarrier_4x4"
        } else {
            "svd_givens_per_subcarrier_8x8"
        },
        unit: "subcarrier",
        ns_per_op: fast,
        reference_ns_per_op: Some(naive),
    }
}

/// End-to-end station feedback over a full 80 MHz subcarrier set.
///
/// Returns the engine-vs-naive entry, the parallel-vs-serial scaling entry and
/// the subcarrier throughput. On a multi-core host the first entry's speedup
/// multiplies roughly with the core count (the engine fans subcarrier chunks
/// out and is bit-exact with the serial path); on a single core the scaling
/// entry measures ~1.0x.
fn bench_feedback_e2e() -> (Entry, Entry, f64) {
    let subcarriers = Bandwidth::Mhz80.subcarriers();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let csi: Vec<CMatrix> = (0..subcarriers)
        .map(|_| random_cmatrix(&mut rng, 3, 3))
        .collect();
    let engine = FeedbackEngine::new(1, AngleResolution::High);
    let (fast, naive) = measure_pair(
        || {
            black_box(engine.compute_feedback(black_box(&csi)).unwrap());
        },
        || {
            black_box(
                bfi_ref::compute_feedback_naive(black_box(&csi), 1, AngleResolution::High).unwrap(),
            );
        },
    );
    let (parallel, serial) = measure_pair(
        || {
            black_box(engine.compute_feedback(black_box(&csi)).unwrap());
        },
        || {
            black_box(engine.compute_feedback_serial(black_box(&csi)).unwrap());
        },
    );
    let subcarriers_per_sec = subcarriers as f64 / (fast / 1e9);
    (
        Entry {
            name: "compute_feedback_e2e_3x3_80mhz",
            unit: "feedback frame",
            ns_per_op: fast,
            reference_ns_per_op: Some(naive),
        },
        Entry {
            name: "compute_feedback_parallel_vs_serial",
            unit: "feedback frame",
            ns_per_op: parallel,
            reference_ns_per_op: Some(serial),
        },
        subcarriers_per_sec,
    )
}

/// Fused dense-layer forward vs. the unfused matmul/broadcast/activation chain.
fn bench_fused_dense() -> Entry {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let x = Matrix::xavier_uniform(16, 448, &mut rng);
    let w = Matrix::xavier_uniform(448, 56, &mut rng);
    let mut bias = Matrix::zeros(1, 56);
    for (i, b) in bias.as_mut_slice().iter_mut().enumerate() {
        *b = (i as f32 * 0.37).sin() * 0.1;
    }
    let mut out = Matrix::zeros(16, 56);
    let (fast, naive) = measure_pair(
        || {
            x.matmul_bias_act_into(black_box(&w), &bias, Activation::Tanh, &mut out);
        },
        || {
            black_box(Activation::Tanh.apply(&x.matmul(black_box(&w)).add_row_broadcast(&bias)));
        },
    );
    Entry {
        name: "dense_forward_fused_448x56_batch16",
        unit: "batch forward",
        ns_per_op: fast,
        reference_ns_per_op: Some(naive),
    }
}

/// Batched model inference vs. one forward pass per CSI vector.
fn bench_inference() -> (Entry, f64) {
    let config = SplitBeamConfig::new(
        MimoConfig::symmetric(2, Bandwidth::Mhz20),
        CompressionLevel::OneEighth,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let model = SplitBeamModel::new(config.clone(), &mut rng);
    let batch = 64usize;
    let inputs: Vec<Vec<f32>> = (0..batch)
        .map(|i| {
            (0..config.input_dim())
                .map(|j| ((i * 31 + j) as f32 * 0.173).sin() * 0.1)
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
    let (fast, naive) = measure_pair(
        || {
            black_box(model.infer_batch(black_box(&refs)).unwrap());
        },
        || {
            for input in &inputs {
                black_box(model.infer(black_box(input)).unwrap());
            }
        },
    );
    let per_inference_ns = fast / batch as f64;
    let inferences_per_sec = 1e9 / per_inference_ns;
    (
        Entry {
            name: "model_inference_batch64_2x2",
            unit: "batch of 64 inferences",
            ns_per_op: fast,
            reference_ns_per_op: Some(naive),
        },
        inferences_per_sec,
    )
}

/// Absolute link-simulation cost (tracked over PRs; no separate naive path).
fn bench_link_simulation() -> Entry {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
    let snapshot = model.sample(&mut rng);
    let feedback = snapshot.ideal_beamforming();
    let config = LinkConfig {
        symbols_per_subcarrier: 1,
        ..LinkConfig::default()
    };
    let ns = measure(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        black_box(
            simulate_mu_mimo_ber(
                black_box(&snapshot),
                black_box(&feedback),
                &config,
                &mut rng,
            )
            .unwrap(),
        );
    });
    Entry {
        name: "link_simulation_2x2_20mhz",
        unit: "snapshot BER run",
        ns_per_op: ns,
        reference_ns_per_op: None,
    }
}

fn main() {
    println!("SplitBeam perf report (PR {PR_INDEX}) — optimized vs naive reference kernels\n");

    let mut entries = Vec::new();
    entries.push(bench_matmul());
    entries.push(bench_svd_givens(4));
    entries.push(bench_svd_givens(8));
    let (feedback_entry, scaling_entry, subcarriers_per_sec) = bench_feedback_e2e();
    entries.push(feedback_entry);
    entries.push(scaling_entry);
    entries.push(bench_fused_dense());
    let (inference_entry, inferences_per_sec) = bench_inference();
    entries.push(inference_entry);
    entries.push(bench_link_simulation());

    for e in &entries {
        match e.speedup() {
            Some(s) => println!(
                "{:<38} {:>12.1} ns/op   naive {:>12.1} ns/op   speedup {s:>5.2}x",
                e.name,
                e.ns_per_op,
                e.reference_ns_per_op.unwrap()
            ),
            None => println!("{:<38} {:>12.1} ns/op", e.name, e.ns_per_op),
        }
    }
    println!("\nthroughput: {subcarriers_per_sec:.0} subcarriers/s (feedback), {inferences_per_sec:.0} inferences/s");

    let mut report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value());
    if num_threads() == 1 {
        report = report.field(
            "note",
            "single-core host: the feedback engine's parallel fan-out degenerates to the serial \
             path, so compute_feedback_e2e speedups here are single-thread only; on an N-core \
             host the e2e speedup scales with the bit-exact chunk fan-out (see \
             compute_feedback_parallel_vs_serial)",
        );
    }
    let report = report
        .field(
            "throughput",
            object(vec![
                ("feedback_subcarriers_per_sec", subcarriers_per_sec.into()),
                ("model_inferences_per_sec", inferences_per_sec.into()),
            ]),
        )
        .field(
            "benchmarks",
            entries
                .iter()
                .map(|e| {
                    object(vec![
                        ("name", e.name.into()),
                        ("unit", e.unit.into()),
                        ("ns_per_op", e.ns_per_op.into()),
                        ("ops_per_sec", e.ops_per_sec().into()),
                        (
                            "reference_ns_per_op",
                            e.reference_ns_per_op.map_or(JsonValue::Null, Into::into),
                        ),
                        (
                            "speedup_vs_reference",
                            e.speedup().map_or(JsonValue::Null, Into::into),
                        ),
                    ])
                })
                .collect::<Vec<_>>(),
        );
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("\nwrote {out_path}");
}
