//! Fleet-scale event-engine benchmark: timer wheel, session slab, multi-AP
//! serving.
//!
//! Writes `BENCH_PR10.json` with:
//!
//! * steady-state scheduler throughput (one pop + one schedule per op) for
//!   the timer-wheel backend against the binary-heap backend at 1k / 10k /
//!   100k pending events, plus the wheel's speedup,
//! * session-store microbenches — generational slab vs `std::HashMap` for
//!   insert/remove churn, lookup, and the per-round idle-eviction check
//!   (O(evicted) LRU-prefix walk vs a full-map idle scan),
//! * a fleet sessions ramp to 100k+ concurrent sessions across 8 APs on one
//!   event queue (ideal media, so the wall clock measures the engine, not
//!   simulated airtime), with offers/s and aggregate deadline-hit rate,
//! * an overlapping-BSS contention + roaming run (4 APs on 2 channels at
//!   240 Mbit/s) reporting cross-BSS airtime loss per AP and mean handoff
//!   settle latency,
//! * verdicts: wheel/heap pop-order parity on an identical interleaving,
//!   same-seed fleet determinism, and handoff feedback bit-exactness against
//!   a never-roamed control.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin fleet_report       # writes BENCH_PR10.json
//! SPLITBEAM_FLEET_SESSIONS=1000 SPLITBEAM_SCHED_EVENTS=10000 \
//!     cargo run --release -p bench --bin fleet_report   # CI-scale smoke
//! ```
//!
//! The binary exits non-zero when any verdict fails. The wheel-vs-heap
//! speedup gate (>= 3x) applies at the full 100k-event scale; reduced-scale
//! smoke runs only require the wheel not to regress.
//!
//! `splitbeam-serve` itself bans hash maps (iteration order leaks into
//! summaries — see the `serve-unordered-map` lint rule); the `HashMap` here
//! is the *baseline under test*, living safely outside that crate.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_bench::env_usize;
use splitbeam_bench::report::{kernel_dispatch_value, object, JsonReport, JsonValue};
use splitbeam_bench::timing::{measure_pair, num_threads};
use splitbeam_hwsim::EventQueue;
use splitbeam_serve::{DeadlinePolicy, Fleet, FleetConfig, SessionSlab, StationId, StationSession};
use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

/// The PR index this report seeds.
const PR_INDEX: u32 = 10;

/// Splitmix-style step for deterministic delay spreads.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Builds size ladders like [1k, 10k, `max`], dropping rungs above `max` and
/// always ending exactly at `max` (so reduced-scale CI runs stay cheap).
fn ladder(max: usize) -> Vec<usize> {
    let mut sizes: Vec<usize> = [1_000, 10_000, 100_000]
        .into_iter()
        .filter(|&s| s < max)
        .collect();
    sizes.push(max);
    sizes
}

// ---------------------------------------------------------------------------
// Scheduler: wheel vs heap at a steady pending-event population.
// ---------------------------------------------------------------------------

/// Prefills `queue` with `pending` events over a deterministic delay spread.
fn prefill(queue: &mut EventQueue<u64>, pending: usize, seed: &mut u64) {
    queue.reserve(pending);
    for i in 0..pending {
        let delay = lcg(seed) % 40_000_000 + 1;
        queue.schedule(delay, (i % 101) as u64, i as u64);
    }
}

/// One steady-state op: pop the earliest event, reschedule one relative to
/// its fire time. The pending population stays constant and virtual time
/// advances, which is exactly the fleet's per-round drain/refill shape.
fn sched_step(queue: &mut EventQueue<u64>, seed: &mut u64) {
    let (key, payload) = queue.pop().expect("steady-state queue is non-empty");
    let delay = lcg(seed) % 40_000_000 + 1;
    queue.schedule(key.time_ns + delay, key.station, payload);
}

struct SchedRow {
    pending: usize,
    wheel_ns: f64,
    heap_ns: f64,
}

fn bench_scheduler(pending: usize) -> SchedRow {
    let mut wheel = EventQueue::<u64>::wheel();
    let mut heap = EventQueue::<u64>::heap();
    let (mut wseed, mut hseed) = (0x5eed_0001, 0x5eed_0001);
    prefill(&mut wheel, pending, &mut wseed);
    prefill(&mut heap, pending, &mut hseed);
    let (wheel_ns, heap_ns) = measure_pair(
        || sched_step(&mut wheel, &mut wseed),
        || sched_step(&mut heap, &mut hseed),
    );
    SchedRow {
        pending,
        wheel_ns,
        heap_ns,
    }
}

/// Parity: an identical schedule/pop interleaving must pop identically
/// (key *and* payload, bit for bit) from both backends.
fn scheduler_parity(events: usize) -> bool {
    let mut wheel = EventQueue::<u64>::wheel();
    let mut heap = EventQueue::<u64>::heap();
    let mut seed = 0xdead_beef;
    let mut popped = Vec::new();
    for i in 0..events {
        let time = lcg(&mut seed) % 40_000_000;
        let station = lcg(&mut seed) % 37;
        wheel.schedule(time, station, i as u64);
        heap.schedule(time, station, i as u64);
        // Interleave pops so both backends are exercised mid-stream, not
        // just as a terminal drain.
        if i % 3 == 2 {
            if wheel.pop() != heap.pop() {
                return false;
            }
            popped.push(());
        }
    }
    while let Some(w) = wheel.pop() {
        if heap.pop() != Some(w) {
            return false;
        }
        popped.push(());
    }
    heap.pop().is_none() && popped.len() == events
}

// ---------------------------------------------------------------------------
// Session store: slab vs HashMap.
// ---------------------------------------------------------------------------

fn fresh_session(id: StationId, round: u64) -> StationSession {
    StationSession::synthetic(id, 0, 4, round)
}

struct SlabRows {
    sessions: usize,
    churn_slab_ns: f64,
    churn_map_ns: f64,
    lookup_slab_ns: f64,
    lookup_map_ns: f64,
    idle_check_slab_ns: f64,
    idle_check_map_ns: f64,
}

fn bench_slab(sessions: usize) -> SlabRows {
    let closed_round = 64u64;
    let mut slab = SessionSlab::with_capacity(sessions);
    let mut map: HashMap<StationId, StationSession> = HashMap::with_capacity(sessions);
    for id in 0..sessions as StationId {
        slab.insert(fresh_session(id, closed_round))
            .expect("unique ids");
        map.insert(id, fresh_session(id, closed_round));
    }

    // Churn: remove one session and re-admit it, cycling through ids — the
    // roaming release/adopt hot path.
    let (mut sc, mut mc) = (0 as StationId, 0 as StationId);
    let n = sessions as StationId;
    let (churn_slab_ns, churn_map_ns) = measure_pair(
        || {
            let session = slab.remove(sc).expect("resident id");
            slab.insert(session).expect("freshly removed id");
            sc = (sc + 1) % n;
        },
        || {
            let session = map.remove(&mc).expect("resident id");
            map.insert(mc, session);
            mc = (mc + 1) % n;
        },
    );

    // Lookup: the per-frame session fetch on ingest.
    let (mut sl, mut ml) = (0 as StationId, 0 as StationId);
    let (lookup_slab_ns, lookup_map_ns) = measure_pair(
        || {
            black_box(slab.get(sl).expect("resident id").bits_per_value());
            sl = (sl + 7) % n;
        },
        || {
            black_box(map.get(&ml).expect("resident id").bits_per_value());
            ml = (ml + 7) % n;
        },
    );

    // Idle check with nothing evictable: the slab walks only the LRU prefix
    // (O(1) here), the map has no recency order and must scan every session.
    let max_idle = 128u64;
    let (idle_check_slab_ns, idle_check_map_ns) = measure_pair(
        || {
            black_box(slab.evict_idle(closed_round, max_idle));
        },
        || {
            let evictable = map
                .values()
                .filter(|s| s.idle_rounds(closed_round) > max_idle)
                .count();
            black_box(evictable);
        },
    );

    SlabRows {
        sessions,
        churn_slab_ns,
        churn_map_ns,
        lookup_slab_ns,
        lookup_map_ns,
        idle_check_slab_ns,
        idle_check_map_ns,
    }
}

// ---------------------------------------------------------------------------
// Fleet runs.
// ---------------------------------------------------------------------------

fn model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

fn station_frame(model: &SplitBeamModel, seed: u64, bits: u8) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    let csi: Vec<f32> = channel
        .sample(&mut rng)
        .csi_real_vector(0)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let payload = model.compress_quantized(&csi, bits).expect("compress");
    splitbeam::wire::encode_feedback(&payload).expect("encode")
}

struct RampRow {
    sessions: usize,
    rounds: usize,
    offers_per_s: f64,
    wall_s_per_round: f64,
    served: u64,
    deadline_hit_rate: f64,
}

/// Sessions ramp: `sessions` stations across 8 APs, one shared event queue,
/// ideal media. Wall time covers offer + drain + ingest + round close — the
/// whole engine, end to end.
fn bench_ramp(m: &SplitBeamModel, frame: &[u8], sessions: usize, rounds: usize) -> RampRow {
    let aps = 8.min(sessions);
    let mut fleet = Fleet::new(FleetConfig {
        aps,
        channels: aps.div_ceil(2),
        rate_mbps: None,
        jitter_ns: 200_000,
        seed: 11,
        policy: Some(DeadlinePolicy::eq7d()),
        ..FleetConfig::default()
    });
    let key = fleet.register_model(m);
    fleet.reserve_events(sessions + 1);
    for id in 0..sessions as StationId {
        fleet
            .register_station(id, id as usize % aps, key, 4)
            .expect("unique ids");
    }
    let start = Instant::now();
    for _ in 0..rounds {
        for id in 0..sessions as StationId {
            fleet.offer_frame(id, frame.to_vec()).expect("registered");
        }
        fleet.close_round().expect("round close");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = fleet.stats();
    RampRow {
        sessions,
        rounds,
        offers_per_s: (sessions * rounds) as f64 / elapsed,
        wall_s_per_round: elapsed / rounds as f64,
        served: stats.served,
        deadline_hit_rate: stats.deadline_hit_rate,
    }
}

struct ContentionRun {
    stations: usize,
    rounds: usize,
    summaries: Vec<splitbeam_serve::FleetRoundSummary>,
    stats: splitbeam_serve::FleetStats,
    cross_bss_per_ap: Vec<u64>,
}

/// Overlapping-BSS contention + roaming: 4 APs on 2 channels at 240 Mbit/s.
/// Every round a co-channel cohort of stations roams between the two APs
/// sharing its channel (AP 0 <-> AP 2 on channel 0, AP 1 <-> AP 3 on
/// channel 1), so handoffs never change the contention domain.
fn run_contention(
    m: &SplitBeamModel,
    frame: &[u8],
    stations: usize,
    rounds: usize,
) -> ContentionRun {
    let mut fleet = Fleet::new(FleetConfig {
        aps: 4,
        channels: 2,
        rate_mbps: Some(240.0),
        jitter_ns: 50_000,
        seed: 13,
        policy: Some(DeadlinePolicy::eq7d()),
        ..FleetConfig::default()
    });
    let key = fleet.register_model(m);
    fleet.reserve_events(stations + 1);
    for id in 0..stations as StationId {
        fleet
            .register_station(id, id as usize % 4, key, 4)
            .expect("unique ids");
    }
    let mut summaries = Vec::with_capacity(rounds);
    for round in 0..rounds as u64 {
        if round > 0 {
            for id in 0..stations as StationId {
                if id % 16 == round % 16 {
                    let home = fleet.home_ap(id).expect("registered");
                    fleet.handoff(id, (home + 2) % 4).expect("valid target");
                }
            }
        }
        for id in 0..stations as StationId {
            fleet.offer_frame(id, frame.to_vec()).expect("registered");
        }
        summaries.push(fleet.close_round().expect("round close"));
    }
    let stats = fleet.stats();
    let cross_bss_per_ap = (0..fleet.num_aps())
        .map(|ap| fleet.cross_bss_wait_of(ap))
        .collect();
    ContentionRun {
        stations,
        rounds,
        summaries,
        stats,
        cross_bss_per_ap,
    }
}

/// Handoff bit-exactness: a station roamed A -> B and back, served every
/// round, must end with feedback bit-identical to the same station in a
/// fleet that never roamed it.
fn handoff_bit_exact(m: &SplitBeamModel) -> bool {
    let cfg = FleetConfig {
        aps: 2,
        channels: 2,
        jitter_ns: 0,
        ..FleetConfig::default()
    };
    let mut roamed = Fleet::new(cfg.clone());
    let mut control = Fleet::new(cfg);
    for fleet in [&mut roamed, &mut control] {
        let key = fleet.register_model(m);
        fleet.register_station(0, 0, key, 4).expect("register");
        fleet.register_station(1, 1, key, 4).expect("register");
    }
    for round in 0..4u64 {
        match round {
            1 => roamed.handoff(0, 1).expect("handoff out"),
            2 => roamed.handoff(0, 0).expect("handoff back"),
            _ => {}
        }
        for fleet in [&mut roamed, &mut control] {
            for id in 0..2u64 {
                let frame = station_frame(m, 100 + round * 10 + id, 4);
                fleet.offer_frame(id, frame).expect("offer");
            }
            fleet.close_round().expect("round close");
        }
    }
    let feedback_matches = match (roamed.feedback_of(0), control.feedback_of(0)) {
        (Some(a), Some(b)) => a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
        _ => false,
    };
    feedback_matches && roamed.home_ap(0) == Some(0) && roamed.stats().handoffs == 2
}

fn main() {
    let sched_max = env_usize("SPLITBEAM_SCHED_EVENTS", 100_000);
    let fleet_max = env_usize("SPLITBEAM_FLEET_SESSIONS", 100_000);
    let fleet_rounds = env_usize("SPLITBEAM_FLEET_ROUNDS", 3);
    let slab_sessions = env_usize("SPLITBEAM_SLAB_SESSIONS", 10_000);
    let full_scale = sched_max >= 100_000;

    println!(
        "SplitBeam fleet report (PR {PR_INDEX}) — scheduler to {sched_max} pending, \
         fleet to {fleet_max} sessions x {fleet_rounds} rounds\n"
    );

    // Scheduler ladder.
    let mut sched_rows = Vec::new();
    for pending in ladder(sched_max) {
        let row = bench_scheduler(pending);
        println!(
            "sched    {:>7} pending   wheel {:>8.1} ns/op   heap {:>8.1} ns/op   {:>5.2}x",
            row.pending,
            row.wheel_ns,
            row.heap_ns,
            row.heap_ns / row.wheel_ns
        );
        sched_rows.push(row);
    }
    let top = sched_rows.last().expect("ladder is non-empty");
    let top_speedup = top.heap_ns / top.wheel_ns;
    // The >= 3x gate is a claim about the 100k-event regime; reduced-scale
    // smoke runs only assert the wheel is not slower than the heap.
    let wheel_speedup_ok = if full_scale {
        top_speedup >= 3.0
    } else {
        top_speedup >= 0.8
    };

    let parity_events = sched_max.min(50_000);
    let scheduler_parity_ok = scheduler_parity(parity_events);
    println!("sched    parity over {parity_events} interleaved events: {scheduler_parity_ok}");

    // Session store.
    let slab = bench_slab(slab_sessions);
    println!(
        "slab     {:>7} sessions  churn {:>6.1} vs {:>6.1} ns   lookup {:>5.1} vs {:>5.1} ns   \
         idle-check {:>8.1} vs {:>10.1} ns",
        slab.sessions,
        slab.churn_slab_ns,
        slab.churn_map_ns,
        slab.lookup_slab_ns,
        slab.lookup_map_ns,
        slab.idle_check_slab_ns,
        slab.idle_check_map_ns
    );

    // Fleet ramp.
    let m = model(42);
    let frame = station_frame(&m, 9, 4);
    let mut ramp_rows = Vec::new();
    for sessions in ladder(fleet_max) {
        let row = bench_ramp(&m, &frame, sessions, fleet_rounds);
        println!(
            "fleet    {:>7} sessions  {:>10.0} offers/s   {:>7.3} s/round   hit rate {:.4}",
            row.sessions, row.offers_per_s, row.wall_s_per_round, row.deadline_hit_rate
        );
        ramp_rows.push(row);
    }
    let top_ramp = ramp_rows.last().expect("ladder is non-empty");
    let ramp_completed = top_ramp.served == (top_ramp.sessions * top_ramp.rounds) as u64;

    // Contention + roaming.
    let contention_stations = fleet_max.min(512);
    let contention_rounds = fleet_rounds.max(6);
    let contention = run_contention(&m, &frame, contention_stations, contention_rounds);
    println!(
        "roam     {:>7} stations  hit rate {:.4}   handoffs {} ({} settled, mean {:.0} ns)   \
         cross-BSS {} ns",
        contention.stations,
        contention.stats.deadline_hit_rate,
        contention.stats.handoffs,
        contention.stats.handoffs_settled,
        contention.stats.mean_handoff_latency_ns,
        contention.stats.cross_bss_wait_ns
    );

    // Determinism: the same seed and call sequence must reproduce every
    // summary and aggregate bit-for-bit.
    let rerun = run_contention(&m, &frame, contention_stations, contention_rounds);
    let determinism_ok = rerun.summaries == contention.summaries && rerun.stats == contention.stats;
    println!("roam     same-seed determinism: {determinism_ok}");

    let handoff_ok = handoff_bit_exact(&m);
    println!("roam     handoff bit-exact vs never-roamed control: {handoff_ok}");

    let report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value())
        .field(
            "default_event_queue",
            EventQueue::<u64>::new().backend_name(),
        )
        .field(
            "scheduler",
            JsonValue::Array(
                sched_rows
                    .iter()
                    .map(|r| {
                        object(vec![
                            ("pending_events", r.pending.into()),
                            ("wheel_ns_per_op", r.wheel_ns.into()),
                            ("heap_ns_per_op", r.heap_ns.into()),
                            ("wheel_events_per_s", (1e9 / r.wheel_ns).into()),
                            ("heap_events_per_s", (1e9 / r.heap_ns).into()),
                            ("wheel_speedup", (r.heap_ns / r.wheel_ns).into()),
                        ])
                    })
                    .collect(),
            ),
        )
        .field("wheel_speedup_at_top", top_speedup)
        .field("wheel_speedup_gate", if full_scale { 3.0 } else { 0.8 })
        .field(
            "session_store",
            object(vec![
                ("sessions", slab.sessions.into()),
                ("churn_slab_ns", slab.churn_slab_ns.into()),
                ("churn_hashmap_ns", slab.churn_map_ns.into()),
                ("lookup_slab_ns", slab.lookup_slab_ns.into()),
                ("lookup_hashmap_ns", slab.lookup_map_ns.into()),
                ("idle_check_slab_ns", slab.idle_check_slab_ns.into()),
                ("idle_check_hashmap_ns", slab.idle_check_map_ns.into()),
                (
                    "idle_check_speedup",
                    (slab.idle_check_map_ns / slab.idle_check_slab_ns).into(),
                ),
            ]),
        )
        .field(
            "fleet_ramp",
            JsonValue::Array(
                ramp_rows
                    .iter()
                    .map(|r| {
                        object(vec![
                            ("sessions", r.sessions.into()),
                            ("rounds", r.rounds.into()),
                            ("offers_per_s", r.offers_per_s.into()),
                            ("wall_s_per_round", r.wall_s_per_round.into()),
                            ("served", (r.served as i64).into()),
                            ("deadline_hit_rate", r.deadline_hit_rate.into()),
                        ])
                    })
                    .collect(),
            ),
        )
        .field(
            "contention",
            object(vec![
                ("stations", contention.stations.into()),
                ("rounds", contention.rounds.into()),
                ("aps", 4usize.into()),
                ("channels", 2usize.into()),
                ("rate_mbps", 240.0.into()),
                (
                    "deadline_hit_rate",
                    contention.stats.deadline_hit_rate.into(),
                ),
                ("handoffs", (contention.stats.handoffs as i64).into()),
                (
                    "handoffs_settled",
                    (contention.stats.handoffs_settled as i64).into(),
                ),
                (
                    "mean_handoff_latency_ns",
                    contention.stats.mean_handoff_latency_ns.into(),
                ),
                ("air_ns", (contention.stats.air_ns as i64).into()),
                ("wait_ns", (contention.stats.wait_ns as i64).into()),
                (
                    "cross_bss_wait_ns",
                    (contention.stats.cross_bss_wait_ns as i64).into(),
                ),
                (
                    "cross_bss_wait_ns_per_ap",
                    JsonValue::Array(
                        contention
                            .cross_bss_per_ap
                            .iter()
                            .map(|&ns| (ns as i64).into())
                            .collect(),
                    ),
                ),
            ]),
        )
        .field("wheel_speedup_ok", wheel_speedup_ok)
        .field("scheduler_parity_ok", scheduler_parity_ok)
        .field("ramp_completed", ramp_completed)
        .field("determinism_ok", determinism_ok)
        .field("handoff_bit_exact_ok", handoff_ok);
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("\nwrote {out_path}");

    let mut failed = false;
    for (name, ok) in [
        ("wheel_speedup_ok", wheel_speedup_ok),
        ("scheduler_parity_ok", scheduler_parity_ok),
        ("ramp_completed", ramp_completed),
        ("determinism_ok", determinism_ok),
        ("handoff_bit_exact_ok", handoff_ok),
    ] {
        if !ok {
            eprintln!("FAIL: {name}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
