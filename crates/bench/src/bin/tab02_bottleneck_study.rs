//! Table II: impact of the bottleneck placement and size on BER for 2x2 MIMO
//! at 20/40/80 MHz — the 3-layer SplitBeam model against deeper variants.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam::training::{train_model, TrainingOptions};
use splitbeam_bench::{dataset, measure_ber, print_table, training_data, FeedbackScheme, Workload};
use splitbeam_datasets::catalog::dataset_for;
use wifi_phy::ofdm::Bandwidth;

fn main() {
    let workload = Workload::from_env();
    let mut rows = Vec::new();
    for bw in [Bandwidth::Mhz20, Bandwidth::Mhz40, Bandwidth::Mhz80] {
        let spec = dataset_for(2, bw, "E1").expect("catalog entry");
        let generated = dataset(&spec, &workload, 11 + bw.mhz() as u64);
        let (train_snaps, val_snaps, test) = generated.split_train_val_test();

        // Candidate architectures: the heuristic 3-layer model (K = 1/8) and a
        // deeper variant with an extra tail layer (the paper's "more complex DNN").
        let base = SplitBeamConfig::new(spec.mimo, CompressionLevel::OneEighth);
        let candidates = vec![base.clone(), base.with_extra_tail_layer()];
        for config in candidates {
            let train_data = training_data(&config, train_snaps);
            let val_data = training_data(&config, val_snaps);
            let options = TrainingOptions {
                epochs: workload.epochs,
                ..TrainingOptions::default()
            };
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            let (model, _): (SplitBeamModel, _) = train_model(
                &config,
                train_data.examples(),
                val_data.examples(),
                &options,
                &mut rng,
            );
            let ber = measure_ber(
                &FeedbackScheme::SplitBeam(&model),
                test,
                &workload,
                None,
                31,
            );
            rows.push(vec![
                format!("{}", bw),
                config.architecture_label(),
                format!("{}", config.bottleneck_dim() / 2),
                format!("{}", model.head_macs()),
                format!("{:.4}", ber),
            ]);
        }
    }
    print_table(
        "Table II: bottleneck architecture vs |B| vs BER (2x2)",
        &[
            "bandwidth",
            "architecture (real dims)",
            "|B| (complex)",
            "head MACs",
            "BER",
        ],
        &rows,
    );
}
