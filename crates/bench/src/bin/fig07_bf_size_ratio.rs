//! Figure 7: ratio of the beamforming feedback size (SplitBeam / 802.11) for
//! 4x4 and 8x8 MU-MIMO at 20/40/80 MHz and K in {1/32, 1/16, 1/8, 1/4}.

use splitbeam::airtime::{average_airtime_saving_percent, bf_size_grid};
use splitbeam_bench::print_table;

fn main() {
    let levels = [1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0];
    let grid = bf_size_grid(&[4, 8], &[56, 114, 242], &levels);
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|p| {
            vec![
                format!("{}x{}", p.mimo_order, p.mimo_order),
                format!("{}", p.subcarriers),
                format!("1/{}", (1.0 / p.k).round() as u32),
                format!("{}", p.splitbeam_bits),
                format!("{}", p.dot11_bits),
                format!("{:.2}", p.ratio_percent),
            ]
        })
        .collect();
    print_table(
        "Figure 7: beamforming feedback size ratio SplitBeam / 802.11 (%)",
        &[
            "MIMO",
            "subcarriers",
            "K",
            "SplitBeam bits",
            "802.11 bits",
            "ratio %",
        ],
        &rows,
    );
    println!(
        "\nAverage airtime saving over the grid: {:.1}% (paper reports 75% on average, 91% headline)",
        average_airtime_saving_percent(&grid)
    );
}
