//! Ablation: training objective — the paper's normalized L1 (Eq. 8) vs MSE.

use neural::loss::Loss;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::training::{train_model, TrainingOptions};
use splitbeam_bench::{dataset, measure_ber, print_table, training_data, FeedbackScheme, Workload};
use splitbeam_datasets::catalog::dataset_for;
use wifi_phy::ofdm::Bandwidth;

fn main() {
    let workload = Workload::from_env();
    let spec = dataset_for(2, Bandwidth::Mhz20, "E2").expect("catalog entry");
    let generated = dataset(&spec, &workload, 701);
    let (train_snaps, val_snaps, test) = generated.split_train_val_test();
    let config = SplitBeamConfig::new(spec.mimo, CompressionLevel::OneEighth);
    let train = training_data(&config, train_snaps);
    let val = training_data(&config, val_snaps);

    let mut rows = Vec::new();
    for (name, loss) in [
        ("normalized L1 (Eq. 8)", Loss::NormalizedL1),
        ("MSE", Loss::Mse),
        ("MAE", Loss::Mae),
    ] {
        let options = TrainingOptions {
            epochs: workload.epochs,
            loss,
            ..TrainingOptions::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let (model, history) = train_model(
            &config,
            train.examples(),
            val.examples(),
            &options,
            &mut rng,
        );
        let ber = measure_ber(
            &FeedbackScheme::SplitBeam(&model),
            test,
            &workload,
            None,
            72,
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.5}", history.final_train_loss()),
            format!("{ber:.4}"),
        ]);
    }
    print_table(
        "Ablation: training objective vs BER (2x2 @ 20 MHz, K = 1/8)",
        &["loss", "final train loss", "BER"],
        &rows,
    );
}
