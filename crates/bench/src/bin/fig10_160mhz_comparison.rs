//! Figure 10: BER and STA computational load at 160 MHz (synthetic Model-B
//! datasets D13-D15), K = 1/8, rate-1/2 BCC; SplitBeam vs LB-SciFi vs 802.11.

use dot11_bfi::complexity::dot11_sta_flops;
use dot11_bfi::quantize::AngleResolution;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam_baselines::lbscifi::LbSciFiConfig;
use splitbeam_bench::{
    dataset, measure_ber, print_table, train_lbscifi, train_splitbeam, FeedbackScheme, Workload,
};
use splitbeam_datasets::catalog::dataset_catalog;
use splitbeam_datasets::catalog::DatasetKind;
use wifi_phy::coding::CodeRate;

fn main() {
    let mut workload = Workload::from_env();
    // 160 MHz models are large; keep the default run small but representative.
    workload.samples = workload.samples.min(60);
    workload.test_snapshots = workload.test_snapshots.min(4);
    let mut rows = Vec::new();
    for spec in dataset_catalog()
        .iter()
        .filter(|d| d.kind == DatasetKind::Synthetic)
    {
        let generated = dataset(spec, &workload, 200 + spec.id.0 as u64);
        let (_, _, test) = generated.split_train_val_test();
        let config = SplitBeamConfig::new(spec.mimo, CompressionLevel::OneEighth);
        let model = train_splitbeam(&config, &generated, &workload, 17);
        let lbs_config = LbSciFiConfig::new(spec.mimo, 0.125);
        let lbs = train_lbscifi(&lbs_config, &generated, &workload, 18);
        let coding = Some(CodeRate::Half);
        let schemes: Vec<(&str, f64, u64)> = vec![
            (
                "SplitBeam",
                measure_ber(
                    &FeedbackScheme::SplitBeam(&model),
                    test,
                    &workload,
                    coding,
                    19,
                ),
                model.head_macs(),
            ),
            (
                "LB-SciFi",
                measure_ber(&FeedbackScheme::LbSciFi(&lbs), test, &workload, coding, 19),
                lbs.sta_flops(),
            ),
            (
                "802.11",
                measure_ber(
                    &FeedbackScheme::Dot11(AngleResolution::High),
                    test,
                    &workload,
                    coding,
                    19,
                ),
                dot11_sta_flops(spec.mimo.nt, spec.mimo.nr, spec.mimo.subcarriers()),
            ),
        ];
        for (name, ber, flops) in schemes {
            rows.push(vec![
                spec.mimo.label(),
                name.to_string(),
                format!("{ber:.5}"),
                format!("{flops}"),
            ]);
        }
    }
    print_table(
        "Figure 10: BER and STA load at 160 MHz (K = 1/8, rate-1/2 BCC)",
        &["config", "scheme", "BER", "STA FLOPs"],
        &rows,
    );
}
