//! Figure 12: BER (K = 1/8) and STA computational load per compression level,
//! SplitBeam vs LB-SciFi, single-environment (E1, E2) and cross-environment
//! (E1/E2, E2/E1), for 3x3 MU-MIMO at 80 MHz.

use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam_baselines::lbscifi::LbSciFiConfig;
use splitbeam_bench::{
    dataset, measure_ber, print_table, standard_levels, train_lbscifi, train_splitbeam,
    FeedbackScheme, Workload,
};
use splitbeam_datasets::catalog::dataset_for;
use wifi_phy::ofdm::Bandwidth;

fn main() {
    let workload = Workload::from_env();
    let spec_e1 = dataset_for(3, Bandwidth::Mhz80, "E1").expect("catalog entry");
    let spec_e2 = dataset_for(3, Bandwidth::Mhz80, "E2").expect("catalog entry");
    let data_e1 = dataset(&spec_e1, &workload, 401);
    let data_e2 = dataset(&spec_e2, &workload, 402);

    let config = SplitBeamConfig::new(spec_e1.mimo, CompressionLevel::OneEighth);
    let lbs_config = LbSciFiConfig::new(spec_e1.mimo, 0.125);
    let sb_e1 = train_splitbeam(&config, &data_e1, &workload, 41);
    let sb_e2 = train_splitbeam(&config, &data_e2, &workload, 42);
    let lbs_e1 = train_lbscifi(&lbs_config, &data_e1, &workload, 43);
    let lbs_e2 = train_lbscifi(&lbs_config, &data_e2, &workload, 44);

    let (_, _, test_e1) = data_e1.split_train_val_test();
    let (_, _, test_e2) = data_e2.split_train_val_test();

    // BER rows: single-environment (train and test in the same environment) and
    // cross-environment (train in X, test in Y).
    let sb_scheme_e1 = FeedbackScheme::SplitBeam(&sb_e1);
    let sb_scheme_e2 = FeedbackScheme::SplitBeam(&sb_e2);
    let lbs_scheme_e1 = FeedbackScheme::LbSciFi(&lbs_e1);
    let lbs_scheme_e2 = FeedbackScheme::LbSciFi(&lbs_e2);
    let cases: Vec<(&str, &FeedbackScheme, &[wifi_phy::channel::ChannelSnapshot])> = vec![
        ("SplitBeam E1", &sb_scheme_e1, test_e1),
        ("SplitBeam E2", &sb_scheme_e2, test_e2),
        ("SplitBeam E1/E2", &sb_scheme_e1, test_e2),
        ("SplitBeam E2/E1", &sb_scheme_e2, test_e1),
        ("LB-SciFi E1", &lbs_scheme_e1, test_e1),
        ("LB-SciFi E2", &lbs_scheme_e2, test_e2),
        ("LB-SciFi E1/E2", &lbs_scheme_e1, test_e2),
        ("LB-SciFi E2/E1", &lbs_scheme_e2, test_e1),
    ];
    let mut rows = Vec::new();
    for (name, scheme, test) in cases {
        let ber = measure_ber(scheme, test, &workload, None, 45);
        rows.push(vec![name.to_string(), format!("{ber:.4}")]);
    }
    print_table(
        "Figure 12 (top): BER, single- and cross-environment, 3x3 @ 80 MHz, K = 1/8",
        &["scheme / environments", "BER"],
        &rows,
    );

    // FLOP comparison per compression level (bottom half of the figure).
    let mut flop_rows = Vec::new();
    for level in standard_levels() {
        let sb_config = SplitBeamConfig::new(spec_e1.mimo, level);
        let lbs_cfg = LbSciFiConfig::new(spec_e1.mimo, level.ratio());
        let sb_macs = splitbeam::complexity::splitbeam_head_macs(&sb_config);
        let lbs_flops = dot11_bfi::complexity::dot11_sta_flops(3, 3, 242)
            + (lbs_cfg.angle_dim() * lbs_cfg.latent_dim()) as u64;
        flop_rows.push(vec![
            level.label(),
            format!("{sb_macs}"),
            format!("{lbs_flops}"),
            format!("{:.1}", 100.0 * (1.0 - sb_macs as f64 / lbs_flops as f64)),
        ]);
    }
    print_table(
        "Figure 12 (bottom): STA load per compression level, 3x3 @ 80 MHz",
        &["K", "SplitBeam MACs", "LB-SciFi FLOPs", "saving %"],
        &flop_rows,
    );
}
