//! Fault-resilience benchmark: graceful degradation of event-driven serving
//! under a lossy/hostile medium.
//!
//! Sweeps the seeded `FaultInjector` over increasing loss/corruption rates and
//! drives the full PR 6 degradation machinery — CRC rejection, duplicate
//! suppression, deadline-aware retransmission, health states and stale
//! serving — writing `BENCH_PR6.json` with:
//!
//! * per-fault-level rows: deadline-hit rate, MU-MIMO link BER over the served
//!   feedback, lost/corrupt/retransmitted/stale-served accounting, and the
//!   retransmission recovery vs. a no-retry control run,
//! * the **zero-fault parity verdict**: with a `FaultConfig::none()` plan the
//!   armed fault machinery must be bit-exact with the PR 5 legacy batched,
//!   serial and sharded ({1, 4}) drivers,
//! * the **inertness verdict**: on the realistic (contended-medium) pipeline,
//!   an armed-but-inactive injector must not perturb the PR 5 outcome,
//! * the **determinism verdict**: same seed + same fault plan → identical
//!   summaries.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin resilience_report       # writes BENCH_PR6.json
//! SPLITBEAM_STATIONS=16 SPLITBEAM_ROUNDS=8 \
//!     cargo run --release -p bench --bin resilience_report
//! ```
//!
//! The binary exits non-zero when parity breaks, the deadline-hit rate fails
//! to degrade monotonically (graceful, not cliff-edged), or retransmission
//! stops recovering lost frames — CI runs it as a smoke test.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_bench::report::{kernel_dispatch_value, JsonReport, JsonValue};
use splitbeam_bench::timing::num_threads;
use splitbeam_bench::{env_usize, feedback_identical};
use splitbeam_hwsim::fault::FaultConfig;
use splitbeam_serve::driver::{
    build_server, build_sharded_server, generate_traffic, link_check, serve_traffic, ServeMode,
    ServeOutcome, SimConfig, SimTraffic,
};
use splitbeam_serve::event::{build_event_driver, build_sharded_event_driver, EventConfig};
use splitbeam_serve::{ApServer, EventDriver};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};
use wifi_phy::sounding::SoundingConfig;

/// The PR index this report seeds.
const PR_INDEX: u32 = 6;

/// The loss/corruption sweep: each entry is `(loss, corrupt)` probability.
const FAULT_SWEEP: [(f64, f64); 6] = [
    (0.0, 0.0),
    (0.05, 0.02),
    (0.10, 0.05),
    (0.20, 0.10),
    (0.35, 0.15),
    (0.50, 0.25),
];

struct RowStats {
    outcome: ServeOutcome,
    served: usize,
    on_time: usize,
    late: usize,
    expired: usize,
    lost: usize,
    corrupt: usize,
    retransmitted: usize,
    stale_served: usize,
}

fn run(driver: &mut EventDriver<ApServer>, traffic: &SimTraffic) -> RowStats {
    let outcome = serve_traffic(driver, traffic, ServeMode::Batched).expect("faulty serving");
    let sum = |f: fn(&splitbeam_serve::RoundSummary) -> usize| -> usize {
        outcome.summaries.iter().map(f).sum()
    };
    RowStats {
        served: sum(|s| s.served),
        on_time: sum(|s| s.on_time),
        late: sum(|s| s.late),
        expired: sum(|s| s.expired),
        lost: sum(|s| s.lost),
        corrupt: sum(|s| s.corrupt),
        retransmitted: sum(|s| s.retransmitted),
        stale_served: sum(|s| s.stale_served),
        outcome,
    }
}

fn main() {
    let stations = env_usize("SPLITBEAM_STATIONS", 8);
    let rounds = env_usize("SPLITBEAM_ROUNDS", 5);
    let bits_per_value = 4u8;
    let snr_db = 25.0;

    // The paper's headline MU-MIMO configuration (same as the serve/shard/
    // latency reports): 3x3 at 80 MHz, 545-wide bottleneck at K = 1/8.
    let mimo = MimoConfig::symmetric(3, Bandwidth::Mhz80);
    let config = SplitBeamConfig::new(mimo, CompressionLevel::OneEighth);
    let bottleneck_dim = config.bottleneck_dim();
    let sounding = SoundingConfig::new(Bandwidth::Mhz80, stations);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let model = SplitBeamModel::new(config, &mut rng);

    // Contended medium, zero jitter and zero compute latency: the sweep
    // isolates the injected faults as the only source of degradation.
    let base_cfg = EventConfig {
        feedback_rate_mbps: Some(sounding.feedback_rate_mbps),
        seed: 42,
        max_retries: 2,
        retry_backoff_ns: 100_000,
        ..EventConfig::lockstep()
    };

    let sim = SimConfig {
        stations,
        rounds,
        bits_per_value,
        drop_every: 0,
        snr_db,
        churn: splitbeam_serve::driver::ChurnConfig::none(),
    };
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let frames_transmitted = traffic.total_frames();

    println!(
        "SplitBeam resilience report (PR {PR_INDEX}) — {stations} stations x {rounds} rounds, \
         {bottleneck_dim}-wide bottleneck at {bits_per_value} bits/value, medium \
         {:.1} Mbit/s, retries <= {} @ {} ns backoff\n",
        sounding.feedback_rate_mbps, base_cfg.max_retries, base_cfg.retry_backoff_ns
    );

    let stale_cap = splitbeam_serve::HealthPolicy::default().stale_serve_cap;
    let mut sweep_rows = Vec::new();
    let mut hit_rates = Vec::new();
    let mut total_recovered_on_time = 0i64;
    let mut deterministic = true;
    let mut zero_fault_row: Option<ServeOutcome> = None;
    for (loss, corrupt) in FAULT_SWEEP {
        let faults = FaultConfig {
            loss,
            corrupt,
            ..FaultConfig::none()
        };
        let cfg = EventConfig { faults, ..base_cfg };
        let mut driver = build_event_driver(model.clone(), stations, bits_per_value, cfg, None);
        let row = run(&mut driver, &traffic);
        let stats = driver.fault_stats();

        // Same-seed rerun must replay the fault plan bit-exactly.
        let mut rerun = build_event_driver(model.clone(), stations, bits_per_value, cfg, None);
        let rrow = run(&mut rerun, &traffic);
        deterministic &= rrow.outcome == row.outcome && rerun.fault_stats() == stats;

        // No-retry control: how many reports does bounded retransmission
        // recover *inside the deadline budget*?
        let mut control = build_event_driver(
            model.clone(),
            stations,
            bits_per_value,
            EventConfig {
                max_retries: 0,
                ..cfg
            },
            None,
        );
        let crow = run(&mut control, &traffic);
        let recovered_on_time = row.on_time as i64 - crow.on_time as i64;
        total_recovered_on_time += recovered_on_time;

        // MU-MIMO link BER over the actually-served feedback (fresh or stale
        // up to the serving cap) against the stations' true final channels.
        let link =
            link_check(driver.inner(), &traffic, stale_cap, snr_db, &mut rng).expect("link check");
        let link_ber = if link.per_user_bits.is_empty() {
            JsonValue::Null
        } else {
            link.ber().into()
        };

        let hit_rate = row.on_time as f64 / frames_transmitted as f64;
        hit_rates.push(hit_rate);
        if loss == 0.0 && corrupt == 0.0 {
            zero_fault_row = Some(row.outcome.clone());
        }
        println!(
            "loss {loss:>4.2} corrupt {corrupt:>4.2}   deadline-hit {:>5.1}%   served {:>3} \
             (stale-served {:>2})   lost/corrupt {:>3}/{:>3}   retx {:>3} (+{recovered_on_time} \
             on-time vs no-retry)   link BER {}",
            hit_rate * 100.0,
            row.served,
            row.stale_served,
            row.lost,
            row.corrupt,
            row.retransmitted,
            if link.per_user_bits.is_empty() {
                "n/a".to_string()
            } else {
                format!("{:.2e}", link.ber())
            },
        );
        sweep_rows.push(JsonValue::Object(vec![
            ("loss".into(), loss.into()),
            ("corrupt".into(), corrupt.into()),
            ("frames_transmitted".into(), frames_transmitted.into()),
            (
                "offered_with_retries".into(),
                (stats.offered as usize).into(),
            ),
            ("lost".into(), row.lost.into()),
            ("corrupt_frames".into(), row.corrupt.into()),
            ("retransmitted".into(), row.retransmitted.into()),
            ("served".into(), row.served.into()),
            ("stale_served".into(), row.stale_served.into()),
            ("on_time".into(), row.on_time.into()),
            ("late".into(), row.late.into()),
            ("expired".into(), row.expired.into()),
            ("deadline_hit_rate".into(), hit_rate.into()),
            (
                "retransmission_overhead".into(),
                (row.retransmitted as f64 / frames_transmitted as f64).into(),
            ),
            (
                "recovered_on_time_vs_no_retry".into(),
                recovered_on_time.into(),
            ),
            ("link_ber".into(), link_ber),
        ]));
    }

    // Graceful degradation: the deadline-hit rate must fall monotonically (to
    // a small tolerance) as the fault level rises — no cliff at low rates, no
    // spurious recovery at high ones.
    let hit_rate_monotone = hit_rates.windows(2).all(|pair| pair[1] <= pair[0] + 0.02);
    let retransmission_recovers = total_recovered_on_time > 0;

    // Zero-fault parity verdict: the armed fault machinery with a
    // `FaultConfig::none()` plan must be bit-exact with every PR 5 driver
    // flavor under the ideal (lockstep) medium.
    let parity_cfg = EventConfig {
        max_retries: 2,
        retry_backoff_ns: 100_000,
        ..EventConfig::lockstep()
    };
    let parity_sim = SimConfig {
        drop_every: 7,
        ..sim
    };
    let parity_traffic = generate_traffic(&parity_sim, &model, &mut rng);
    let mut batched = build_server(model.clone(), stations, bits_per_value);
    let want =
        serve_traffic(&mut batched, &parity_traffic, ServeMode::Batched).expect("batched serving");
    let mut serial = build_server(model.clone(), stations, bits_per_value);
    let want_serial =
        serve_traffic(&mut serial, &parity_traffic, ServeMode::Serial).expect("serial serving");
    let mut event = build_event_driver(model.clone(), stations, bits_per_value, parity_cfg, None);
    let got =
        serve_traffic(&mut event, &parity_traffic, ServeMode::Batched).expect("event serving");
    let mut parity = got == want
        && want == want_serial
        && feedback_identical(&event, &batched, stations)
        && feedback_identical(&event, &serial, stations);
    let mut parity_rows = vec![JsonValue::Object(vec![
        ("reference".into(), "batched+serial".into()),
        ("matches".into(), parity.into()),
    ])];
    for shards in [1usize, 4] {
        let mut legacy = build_sharded_server(model.clone(), stations, bits_per_value, shards);
        let legacy_outcome =
            serve_traffic(&mut legacy, &parity_traffic, ServeMode::Batched).expect("sharded");
        let mut sharded_event = build_sharded_event_driver(
            model.clone(),
            stations,
            bits_per_value,
            shards,
            parity_cfg,
            None,
        );
        let sharded_outcome =
            serve_traffic(&mut sharded_event, &parity_traffic, ServeMode::Batched)
                .expect("sharded event");
        let matches = sharded_outcome == legacy_outcome
            && feedback_identical(&sharded_event, &batched, stations);
        parity &= matches;
        parity_rows.push(JsonValue::Object(vec![
            ("reference".into(), format!("sharded_{shards}").into()),
            ("matches".into(), matches.into()),
        ]));
    }

    // Inertness verdict: on the *contended* pipeline of the sweep itself, the
    // zero-fault row must equal a PR 5-style driver with no fault machinery
    // at all (retries disarmed, injector never constructed draws).
    let mut pr5_style = build_event_driver(
        model.clone(),
        stations,
        bits_per_value,
        EventConfig {
            faults: FaultConfig::none(),
            max_retries: 0,
            retry_backoff_ns: 0,
            ..base_cfg
        },
        None,
    );
    let pr5_outcome =
        serve_traffic(&mut pr5_style, &traffic, ServeMode::Batched).expect("pr5-style serving");
    let zero_fault_inert = zero_fault_row
        .as_ref()
        .is_some_and(|row| *row == pr5_outcome);

    println!(
        "\nzero-fault parity (event == batched == serial == sharded 1/4): {parity}   \
         inert on contended medium: {zero_fault_inert}\n\
         hit-rate monotone: {hit_rate_monotone}   retransmission recovers: \
         {retransmission_recovers} (+{total_recovered_on_time} on-time)   deterministic: \
         {deterministic}"
    );

    let report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value())
        .field("stations", stations)
        .field("rounds", rounds)
        .field("bits_per_value", bits_per_value)
        .field("bottleneck_dim", bottleneck_dim)
        .field("budget_ms", base_cfg.budget.max_delay_s * 1e3)
        .field("grace_ms", base_cfg.grace_s * 1e3)
        .field("medium_rate_mbps", sounding.feedback_rate_mbps)
        .field("max_retries", base_cfg.max_retries as usize)
        .field(
            "retry_backoff_ns",
            JsonValue::Int(base_cfg.retry_backoff_ns as i64),
        )
        .field("stale_serve_cap", stale_cap as usize)
        .field("sweep", JsonValue::Array(sweep_rows))
        .field("parity", JsonValue::Array(parity_rows))
        .field("zero_fault_parity", parity)
        .field("zero_fault_inert", zero_fault_inert)
        .field("hit_rate_monotone", hit_rate_monotone)
        .field("retransmission_recovers", retransmission_recovers)
        .field("deterministic", deterministic);
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("wrote {out_path}");

    if !parity {
        eprintln!("FAIL: armed zero-fault machinery diverged from the PR 5 drivers");
        std::process::exit(1);
    }
    if !zero_fault_inert {
        eprintln!("FAIL: inactive injector perturbed the contended-medium pipeline");
        std::process::exit(1);
    }
    if !hit_rate_monotone {
        eprintln!("FAIL: deadline-hit rate did not degrade monotonically: {hit_rates:?}");
        std::process::exit(1);
    }
    if !retransmission_recovers {
        eprintln!("FAIL: bounded retransmission recovered no frames inside the budget");
        std::process::exit(1);
    }
    if !deterministic {
        eprintln!("FAIL: same-seed fault plans diverged");
        std::process::exit(1);
    }
}
