//! Ablation: effect of the bottleneck quantization width on BER (a design
//! choice the paper fixes at 16 bits/value; DESIGN.md calls it out for study).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam_bench::{dataset, print_table, train_splitbeam, Workload};
use splitbeam_datasets::catalog::dataset_for;
use wifi_phy::link::{simulate_mu_mimo_ber, LinkConfig, LinkReport};
use wifi_phy::ofdm::Bandwidth;

fn main() {
    let workload = Workload::from_env();
    let spec = dataset_for(2, Bandwidth::Mhz20, "E1").expect("catalog entry");
    let generated = dataset(&spec, &workload, 601);
    let (_, _, test) = generated.split_train_val_test();
    let config = SplitBeamConfig::new(spec.mimo, CompressionLevel::OneEighth);
    let model = train_splitbeam(&config, &generated, &workload, 61);

    let mut rows = Vec::new();
    for bits in [4u8, 6, 8, 12, 16] {
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        let link = LinkConfig {
            snr_db: workload.snr_db,
            symbols_per_subcarrier: 1,
            ..LinkConfig::default()
        };
        let mut report = LinkReport::empty();
        for snap in test.iter().take(workload.test_snapshots) {
            let mut feedback = Vec::new();
            for user in 0..snap.num_users() {
                feedback.push(model.feedback_for_user_quantized(snap, user, bits).unwrap());
            }
            if let Ok(r) = simulate_mu_mimo_ber(snap, &feedback, &link, &mut rng) {
                report.merge(&r);
            }
        }
        rows.push(vec![format!("{bits}"), format!("{:.4}", report.ber())]);
    }
    print_table(
        "Ablation: bottleneck quantization width vs BER (2x2 @ 20 MHz, K = 1/8)",
        &["bits per value", "BER"],
        &rows,
    );
}
