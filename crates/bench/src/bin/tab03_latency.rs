//! Table III: SplitBeam end-to-end latency vs MIMO order and bandwidth
//! (K = 1/4, 200 MHz MAC-array accelerator).

use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam_bench::print_table;
use splitbeam_hwsim::accelerator::AcceleratorModel;
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

fn main() {
    let paper_ms = [
        (2, [0.0202, 0.0824, 0.3686, 1.477]),
        (3, [0.0459, 0.1867, 0.8337, 3.314]),
        (4, [0.0808, 0.3298, 1.4782, 5.883]),
    ];
    let mut rows = Vec::new();
    for (order, paper) in paper_ms {
        for (i, bw) in Bandwidth::ALL.iter().enumerate() {
            let config = SplitBeamConfig::new(
                MimoConfig::symmetric(order, *bw),
                CompressionLevel::OneQuarter,
            );
            let accel = AcceleratorModel::zynq_200mhz(order, order);
            let latency = accel.split_latency_from_config(&config);
            rows.push(vec![
                format!("{order}x{order}"),
                format!("{bw}"),
                format!("{:.4}", latency.total_s() * 1e3),
                format!("{:.4}", paper[i]),
            ]);
        }
    }
    print_table(
        "Table III: SplitBeam compute latency (ms), K = 1/4, 200 MHz clock",
        &["MIMO", "bandwidth", "measured (model) ms", "paper ms"],
        &rows,
    );
    println!("\nAll configurations must stay below the 10 ms MU-MIMO sounding deadline.");
}
