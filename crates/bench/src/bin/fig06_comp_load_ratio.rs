//! Figure 6: ratio of the STA computational load (SplitBeam / 802.11) for
//! 4x4 and 8x8 MU-MIMO at 20/40/80 MHz and K in {1/32, 1/16, 1/8, 1/4}.

use splitbeam::complexity::{average_saving_percent, comp_load_grid};
use splitbeam_bench::print_table;

fn main() {
    let levels = [1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0];
    let grid = comp_load_grid(&[4, 8], &[56, 114, 242], &levels);
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|p| {
            vec![
                format!("{}x{}", p.mimo_order, p.mimo_order),
                format!("{}", p.subcarriers),
                format!("1/{}", (1.0 / p.k).round() as u32),
                format!("{:.0}", p.splitbeam_macs),
                format!("{}", p.dot11_flops),
                format!("{:.2}", p.ratio_percent),
            ]
        })
        .collect();
    print_table(
        "Figure 6: computational load ratio SplitBeam / 802.11 (%)",
        &[
            "MIMO",
            "subcarriers",
            "K",
            "SplitBeam MACs",
            "802.11 FLOPs",
            "ratio %",
        ],
        &rows,
    );
    println!(
        "\nAverage computational saving over the grid: {:.1}% (paper reports 73% on average, 92% headline)",
        average_saving_percent(&grid)
    );
}
