//! Streaming micro-batch serving benchmark: deadline-hit rate and virtual
//! e2e delay, watermark streaming vs. the legacy round barrier, with one
//! artificially slow shard.
//!
//! Drives `EventDriver<ShardedApServer>` (4 shards) over growing fleets and
//! writes `BENCH_PR7.json` with:
//!
//! * per-station-count rows: overall / healthy-shard / stalled-shard
//!   deadline-hit rates for all four runs (barrier and streaming, with and
//!   without a 15 ms close stall on shard 0), p50/p99 virtual e2e delay and
//!   micro-close counts,
//! * the **streaming-parity verdict**: streaming with zero jitter, an ideal
//!   medium and one watermark per sounding interval must be bit-exact with
//!   the batched, serial and sharded barrier drivers,
//! * the **stall-isolation verdict**: under streaming, a stalled shard must
//!   leave the healthy shards' deadline-hit rate within 1% (absolute) of the
//!   unstalled streaming run — while the barrier drags every shard down,
//! * the **determinism verdict**: two runs with the same seed must produce
//!   identical summaries and per-shard stats.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin streaming_report       # writes BENCH_PR7.json
//! SPLITBEAM_STATIONS=8 SPLITBEAM_ROUNDS=4 \
//!     cargo run --release -p bench --bin streaming_report
//! ```
//!
//! The binary exits non-zero when any verdict is false — CI runs it as a
//! smoke test.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_bench::report::{kernel_dispatch_value, JsonReport, JsonValue};
use splitbeam_bench::timing::num_threads;
use splitbeam_bench::{env_usize, feedback_identical};
use splitbeam_hwsim::event::ns_to_s;
use splitbeam_serve::driver::{
    build_server, build_sharded_server, generate_traffic, serve_traffic, ChurnConfig, RoundServing,
    ServeMode, SimConfig, SimTraffic,
};
use splitbeam_serve::event::{build_event_driver, build_sharded_event_driver, EventConfig};
use splitbeam_serve::shard::{ShardRoundStats, ShardedApServer};
use splitbeam_serve::{EventDriver, RoundSummary, StationId};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};
use wifi_phy::sounding::SoundingConfig;

/// The PR index this report seeds.
const PR_INDEX: u32 = 7;

/// Close stall injected on shard 0 in the "stalled" runs, in virtual ns.
/// Comfortably past the Eq. 7d budget (10 ms), so a barrier close that waits
/// for the slow shard pushes *every* shard's reports past the deadline.
const STALL_NS: u64 = 15_000_000;

/// Watermark cadence for the streaming sweep runs: 2.5 ms, i.e. four
/// micro-close opportunities per 10 ms sounding interval.
const WATERMARK_NS: u64 = 2_500_000;

/// Number of shards in every sweep run; shard 0 is the stalled one.
const SHARDS: usize = 4;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Accumulated outcome of replaying one traffic trace through a sharded
/// event driver.
struct RunResult {
    summaries: Vec<RoundSummary>,
    /// Per-shard stats summed across all rounds.
    shard_totals: Vec<ShardRoundStats>,
    /// Virtual e2e delays of every delivered report, seconds.
    delays_s: Vec<f64>,
}

impl RunResult {
    /// `on_time / (served + expired)` summed over the given shard indices.
    fn hit_rate(&self, shards: impl Iterator<Item = usize>) -> f64 {
        let (mut on_time, mut total) = (0usize, 0usize);
        for s in shards {
            let st = &self.shard_totals[s];
            on_time += st.on_time;
            total += st.served + st.expired;
        }
        if total == 0 {
            1.0
        } else {
            on_time as f64 / total as f64
        }
    }

    fn micro_closes(&self) -> usize {
        self.shard_totals.iter().map(|s| s.micro_closes).sum()
    }
}

fn add_stats(acc: &mut ShardRoundStats, s: &ShardRoundStats) {
    acc.served += s.served;
    acc.on_time += s.on_time;
    acc.late += s.late;
    acc.expired += s.expired;
    acc.batches += s.batches;
    acc.micro_closes += s.micro_closes;
}

/// Replays `traffic` round by round; whether the close streams or uses the
/// barrier is decided by the driver's `EventConfig::streaming` flag.
fn run_sharded(driver: &mut EventDriver<ShardedApServer>, traffic: &SimTraffic) -> RunResult {
    let mut summaries = Vec::with_capacity(traffic.rounds.len());
    let mut shard_totals = vec![ShardRoundStats::default(); driver.inner().num_shards()];
    let mut delays_s = Vec::new();
    for round in &traffic.rounds {
        for (id, frame) in &round.frames {
            let Some(frame) = frame else { continue };
            driver
                .ingest_wire(*id, frame)
                .expect("traffic stations are registered");
        }
        let summary = driver
            .close_round(ServeMode::Batched)
            .expect("event round close");
        delays_s.extend(
            driver
                .last_round_stamps()
                .iter()
                .map(|(_, stamp)| ns_to_s(stamp.total_ns())),
        );
        for (acc, stats) in shard_totals
            .iter_mut()
            .zip(driver.inner().shard_round_stats())
        {
            add_stats(acc, stats);
        }
        summaries.push(summary);
    }
    RunResult {
        summaries,
        shard_totals,
        delays_s,
    }
}

fn build_run(
    model: &SplitBeamModel,
    stations: usize,
    bits_per_value: u8,
    cfg: EventConfig,
    stall_ns: u64,
) -> EventDriver<ShardedApServer> {
    let mut driver =
        build_sharded_event_driver(model.clone(), stations, bits_per_value, SHARDS, cfg, None);
    if stall_ns > 0 {
        driver.inner_mut().set_shard_stall_ns(0, stall_ns);
    }
    driver
}

fn main() {
    let max_stations = env_usize("SPLITBEAM_STATIONS", 16);
    let rounds = env_usize("SPLITBEAM_ROUNDS", 6);
    let bits_per_value = 4u8;

    // The paper's headline MU-MIMO configuration (same as the other serve
    // reports): 3x3 at 80 MHz, 545-wide bottleneck at K = 1/8.
    let mimo = MimoConfig::symmetric(3, Bandwidth::Mhz80);
    let config = SplitBeamConfig::new(mimo, CompressionLevel::OneEighth);
    let bottleneck_dim = config.bottleneck_dim();
    let sounding = SoundingConfig::new(Bandwidth::Mhz80, max_stations);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let model = SplitBeamModel::new(config, &mut rng);

    // Pin the streaming knobs explicitly so ambient SPLITBEAM_STREAMING /
    // SPLITBEAM_WATERMARK_NS (set by the CI env matrix) cannot skew the
    // barrier-vs-streaming comparison.
    let mut barrier_cfg = EventConfig::realistic(sounding.feedback_rate_mbps, 200_000, 42);
    barrier_cfg.streaming = false;
    barrier_cfg.watermark_ns = 0;
    let mut streaming_cfg = barrier_cfg;
    streaming_cfg.streaming = true;
    streaming_cfg.watermark_ns = WATERMARK_NS;

    let station_sweep: Vec<usize> = [2usize, 4, 8, 16]
        .into_iter()
        .filter(|&n| n <= max_stations)
        .collect();

    println!(
        "SplitBeam streaming report (PR {PR_INDEX}) — up to {max_stations} stations x {rounds} \
         rounds, {SHARDS} shards (shard 0 stalled {:.1} ms), watermark {:.1} ms, \
         {bottleneck_dim}-wide bottleneck at {bits_per_value} bits/value, medium {} Mbit/s\n",
        STALL_NS as f64 / 1e6,
        WATERMARK_NS as f64 / 1e6,
        sounding.feedback_rate_mbps
    );

    let mut sweep_rows = Vec::new();
    let mut deterministic = true;
    let mut stall_isolation = true;
    let mut barrier_degrades = true;
    let healthy = || 1..SHARDS;
    for &stations in &station_sweep {
        let sim = SimConfig {
            stations,
            rounds,
            bits_per_value,
            drop_every: 0,
            snr_db: 25.0,
            churn: ChurnConfig::none(),
        };
        let traffic = generate_traffic(&sim, &model, &mut rng);

        let mut runs = [
            ("barrier", barrier_cfg, 0u64),
            ("barrier+stall", barrier_cfg, STALL_NS),
            ("streaming", streaming_cfg, 0),
            ("streaming+stall", streaming_cfg, STALL_NS),
        ]
        .map(|(name, cfg, stall)| {
            let mut driver = build_run(&model, stations, bits_per_value, cfg, stall);
            (name, run_sharded(&mut driver, &traffic))
        });

        // Same-seed rerun of the headline (stalled streaming) configuration
        // must reproduce summaries and per-shard stats exactly.
        {
            let mut rerun = build_run(&model, stations, bits_per_value, streaming_cfg, STALL_NS);
            let again = run_sharded(&mut rerun, &traffic);
            deterministic &= again.summaries == runs[3].1.summaries
                && again.shard_totals == runs[3].1.shard_totals;
        }

        let healthy_hits: Vec<f64> = runs.iter().map(|(_, r)| r.hit_rate(healthy())).collect();
        // Streaming must hold the healthy shards within 1% (absolute) of the
        // unstalled streaming run; the barrier is expected to drag them down
        // by at least five points.
        stall_isolation &= (healthy_hits[3] - healthy_hits[2]).abs() <= 0.01;
        barrier_degrades &= healthy_hits[0] - healthy_hits[1] >= 0.05;

        let mut run_rows = Vec::new();
        for (i, (name, run)) in runs.iter_mut().enumerate() {
            run.delays_s.sort_by(f64::total_cmp);
            let p50_ms = percentile(&run.delays_s, 0.50) * 1e3;
            let p99_ms = percentile(&run.delays_s, 0.99) * 1e3;
            let overall = run.hit_rate(0..SHARDS);
            let stalled_shard = run.hit_rate(std::iter::once(0));
            println!(
                "{stations:>3} stations  {name:<16} overall {:>6.1}%   healthy {:>6.1}%   \
                 shard0 {:>6.1}%   p50 {p50_ms:>7.3} ms   p99 {p99_ms:>7.3} ms   \
                 micro-closes {}",
                overall * 100.0,
                healthy_hits[i] * 100.0,
                stalled_shard * 100.0,
                run.micro_closes()
            );
            run_rows.push(JsonValue::Object(vec![
                ("run".into(), (*name).into()),
                ("overall_hit_rate".into(), overall.into()),
                ("healthy_hit_rate".into(), healthy_hits[i].into()),
                ("stalled_shard_hit_rate".into(), stalled_shard.into()),
                ("p50_e2e_ms".into(), p50_ms.into()),
                ("p99_e2e_ms".into(), p99_ms.into()),
                ("micro_closes".into(), run.micro_closes().into()),
            ]));
        }
        println!();
        sweep_rows.push(JsonValue::Object(vec![
            ("stations".into(), stations.into()),
            ("frames_transmitted".into(), traffic.total_frames().into()),
            ("runs".into(), JsonValue::Array(run_rows)),
        ]));
    }

    // Streaming-parity verdict: zero jitter + ideal medium + one watermark
    // per sounding interval must reproduce the batched, serial and sharded
    // barrier drivers bit-exactly.
    let parity_stations = station_sweep.last().copied().unwrap_or(4);
    let parity_sim = SimConfig {
        stations: parity_stations,
        rounds,
        bits_per_value,
        drop_every: 7,
        snr_db: 25.0,
        churn: ChurnConfig::none(),
    };
    let parity_traffic = generate_traffic(&parity_sim, &model, &mut rng);
    let mut batched = build_server(model.clone(), parity_stations, bits_per_value);
    let want =
        serve_traffic(&mut batched, &parity_traffic, ServeMode::Batched).expect("batched serving");
    let mut serial = build_server(model.clone(), parity_stations, bits_per_value);
    let want_serial =
        serve_traffic(&mut serial, &parity_traffic, ServeMode::Serial).expect("serial serving");
    let mut lockstep_stream_cfg = EventConfig::lockstep();
    lockstep_stream_cfg.streaming = true;
    let mut event = build_event_driver(
        model.clone(),
        parity_stations,
        bits_per_value,
        lockstep_stream_cfg,
        None,
    );
    let got =
        serve_traffic(&mut event, &parity_traffic, ServeMode::Batched).expect("streaming serving");
    let mut parity = got == want
        && want == want_serial
        && feedback_identical(&event, &batched, parity_stations)
        && feedback_identical(&event, &serial, parity_stations);
    let mut parity_rows = vec![JsonValue::Object(vec![
        ("reference".into(), "batched+serial".into()),
        ("matches".into(), parity.into()),
    ])];
    for shards in [1usize, 4] {
        let mut legacy =
            build_sharded_server(model.clone(), parity_stations, bits_per_value, shards);
        let legacy_outcome = serve_traffic(&mut legacy, &parity_traffic, ServeMode::Batched)
            .expect("sharded serving");
        let mut sharded_event = build_sharded_event_driver(
            model.clone(),
            parity_stations,
            bits_per_value,
            shards,
            lockstep_stream_cfg,
            None,
        );
        let sharded_outcome =
            serve_traffic(&mut sharded_event, &parity_traffic, ServeMode::Batched)
                .expect("sharded streaming serving");
        let matches = sharded_outcome == legacy_outcome
            && feedback_identical(&sharded_event, &batched, parity_stations)
            && (0..parity_stations as StationId)
                .all(|id| sharded_event.feedback_of(id) == legacy.feedback_of(id));
        parity &= matches;
        parity_rows.push(JsonValue::Object(vec![
            ("reference".into(), format!("sharded_{shards}").into()),
            ("matches".into(), matches.into()),
        ]));
    }
    println!(
        "streaming parity (streaming lockstep == batched == serial == sharded 1/4): {parity}   \
         stall isolation: {stall_isolation}   barrier degrades: {barrier_degrades}   \
         same-seed determinism: {deterministic}"
    );

    let report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value())
        .field("rounds", rounds)
        .field("bits_per_value", bits_per_value)
        .field("bottleneck_dim", bottleneck_dim)
        .field("budget_ms", barrier_cfg.budget.max_delay_s * 1e3)
        .field(
            "jitter_ns",
            JsonValue::Int(barrier_cfg.jitter_max_ns as i64),
        )
        .field("medium_rate_mbps", sounding.feedback_rate_mbps)
        .field("shards", SHARDS)
        .field("stall_ns", JsonValue::Int(STALL_NS as i64))
        .field("watermark_ns", JsonValue::Int(WATERMARK_NS as i64))
        .field(
            "station_sweep",
            JsonValue::Array(station_sweep.iter().map(|&s| s.into()).collect()),
        )
        .field("sweep", JsonValue::Array(sweep_rows))
        .field("parity", JsonValue::Array(parity_rows))
        .field("streaming_parity", parity)
        .field("stall_isolation", stall_isolation)
        .field("barrier_degrades", barrier_degrades)
        .field("deterministic", deterministic);
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("wrote {out_path}");

    if !parity {
        eprintln!("FAIL: streaming close diverged from the lockstep barrier references");
        std::process::exit(1);
    }
    if !stall_isolation {
        eprintln!("FAIL: a stalled shard degraded healthy shards under streaming");
        std::process::exit(1);
    }
    if !barrier_degrades {
        eprintln!("FAIL: the barrier reference did not degrade under a stalled shard");
        std::process::exit(1);
    }
    if !deterministic {
        eprintln!("FAIL: same-seed streaming runs diverged");
        std::process::exit(1);
    }
}
