//! Serving-layer benchmark: the multi-station AP feedback service.
//!
//! Drives `splitbeam-serve` over simulated sounding rounds and writes
//! `BENCH_PR2.json` with:
//!
//! * AP-side serving throughput (payloads/s) for the coalesced batched path
//!   and the station-at-a-time reference, plus their speedup,
//! * a bit-exactness verdict (batched and serial serving must reconstruct
//!   byte-identical feedback),
//! * actual wire bytes per frame for the bit-packed bottleneck codec against
//!   both the legacy `Vec<u16>` in-memory representation and the airtime
//!   model's predicted size,
//! * the end-to-end MU-MIMO link-check BER over the served feedback.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin serve_report            # writes BENCH_PR2.json
//! SPLITBEAM_STATIONS=32 SPLITBEAM_ROUNDS=12 cargo run --release -p bench --bin serve_report
//! ```
//!
//! The binary exits non-zero when batched and serial serving disagree or the
//! wire accounting drifts from the airtime model — CI runs it as a smoke test.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::airtime::feedback_bits_on_air;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam::wire;
use splitbeam_bench::report::{kernel_dispatch_value, JsonReport};
use splitbeam_bench::timing::{measure, num_threads};
use splitbeam_bench::{env_usize, feedback_identical};
use splitbeam_serve::driver::{
    build_server, generate_traffic, link_check, serve_traffic, ChurnConfig, ServeMode, SimConfig,
};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

/// The PR index this report seeds.
const PR_INDEX: u32 = 2;

fn main() {
    let stations = env_usize("SPLITBEAM_STATIONS", 12);
    let rounds = env_usize("SPLITBEAM_ROUNDS", 6);
    let bits_per_value = 4u8;

    // The paper's headline MU-MIMO configuration: 3x3 at 80 MHz, 242
    // subcarriers, 4356-wide CSI, 545-wide bottleneck at K = 1/8. The tail's
    // weight matrix (~3 MB) no longer fits in L2, which is exactly the regime
    // where coalescing stations into one batched inference pays: serial
    // serving re-streams the weights once per station, the batched path once
    // per register panel.
    let config = SplitBeamConfig::new(
        MimoConfig::symmetric(3, Bandwidth::Mhz80),
        CompressionLevel::OneEighth,
    );
    let subcarriers = config.mimo.subcarriers();
    let bottleneck_dim = config.bottleneck_dim();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let model = SplitBeamModel::new(config, &mut rng);

    println!(
        "SplitBeam serve report (PR {PR_INDEX}) — {stations} stations x {rounds} rounds, \
         {bottleneck_dim}-wide bottleneck at {bits_per_value} bits/value\n"
    );

    // Clean traffic (no drops, no churn) for the timed comparison.
    let sim = SimConfig {
        stations,
        rounds,
        bits_per_value,
        drop_every: 0,
        snr_db: 25.0,
        churn: ChurnConfig::none(),
    };
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let payloads_per_pass = traffic.total_frames();

    // Bit-exactness: one pass per mode on fresh servers.
    let mut batched_server = build_server(model.clone(), stations, bits_per_value);
    let mut serial_server = build_server(model.clone(), stations, bits_per_value);
    let batched_outcome =
        serve_traffic(&mut batched_server, &traffic, ServeMode::Batched).expect("batched serving");
    let serial_outcome =
        serve_traffic(&mut serial_server, &traffic, ServeMode::Serial).expect("serial serving");
    let batched_matches_serial = batched_outcome.summaries == serial_outcome.summaries
        && feedback_identical(&batched_server, &serial_server, stations);

    // Throughput: reuse one long-lived server per mode (sessions persist, the
    // round counter keeps advancing — exactly the steady-state serving loop).
    let ns_batched = {
        let mut server = build_server(model.clone(), stations, bits_per_value);
        measure(|| {
            serve_traffic(&mut server, &traffic, ServeMode::Batched).expect("batched serving");
        })
    };
    let ns_serial = {
        let mut server = build_server(model.clone(), stations, bits_per_value);
        measure(|| {
            serve_traffic(&mut server, &traffic, ServeMode::Serial).expect("serial serving");
        })
    };
    let payloads_per_sec_batched = payloads_per_pass as f64 / (ns_batched / 1e9);
    let payloads_per_sec_serial = payloads_per_pass as f64 / (ns_serial / 1e9);
    let speedup = ns_serial / ns_batched;

    // Wire accounting: actual frame length vs the legacy in-memory
    // representation and vs the airtime model's prediction.
    let wire_bytes_per_frame = wire::encoded_len(bottleneck_dim, bits_per_value);
    let legacy_bytes_per_frame = wire::legacy_repr_bytes(bottleneck_dim);
    let wire_vs_legacy = wire_bytes_per_frame as f64 / legacy_bytes_per_frame as f64;
    let airtime_bits = feedback_bits_on_air(bottleneck_dim, bits_per_value);
    let airtime_matches_wire = airtime_bits.div_ceil(8) == wire_bytes_per_frame;
    let observed_frame = traffic.rounds[0].frames[0]
        .1
        .as_ref()
        .expect("first frame exists in drop-free traffic");
    assert_eq!(observed_frame.len(), wire_bytes_per_frame);

    // Link check over served feedback, on traffic with drops (staleness).
    let dropped_sim = SimConfig {
        drop_every: 9,
        ..sim
    };
    let dropped_traffic = generate_traffic(&dropped_sim, &model, &mut rng);
    let mut link_server = build_server(model, stations, bits_per_value);
    serve_traffic(&mut link_server, &dropped_traffic, ServeMode::Batched).expect("serving");
    let stale_station_rounds = stations * rounds - dropped_traffic.total_frames();
    let link_report = link_check(
        &link_server,
        &dropped_traffic,
        1,
        dropped_sim.snr_db,
        &mut rng,
    )
    .expect("link check");
    let link_ber = link_report.ber();

    println!(
        "batched  {:>12.0} payloads/s   ({ns_batched:>12.0} ns/pass)",
        payloads_per_sec_batched
    );
    println!(
        "serial   {:>12.0} payloads/s   ({ns_serial:>12.0} ns/pass)",
        payloads_per_sec_serial
    );
    println!("speedup  {speedup:>12.2}x   bit-exact: {batched_matches_serial}");
    println!(
        "wire     {wire_bytes_per_frame} B/frame vs legacy {legacy_bytes_per_frame} B \
         ({:.1}%), airtime model {airtime_bits} bits (match: {airtime_matches_wire})",
        100.0 * wire_vs_legacy
    );
    println!("link     BER {link_ber:.4} over {} payload bits", {
        let bits: usize = link_report.per_user_bits.iter().sum();
        bits
    });

    let report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value())
        .field("stations", stations)
        .field("rounds", rounds)
        .field("subcarriers", subcarriers)
        .field("bottleneck_dim", bottleneck_dim)
        .field("bits_per_value", bits_per_value)
        .field("payloads_per_sec_batched", payloads_per_sec_batched)
        .field("payloads_per_sec_serial", payloads_per_sec_serial)
        .field("batched_speedup_vs_serial", speedup)
        .field("batched_matches_serial", batched_matches_serial)
        .field("wire_bytes_per_frame", wire_bytes_per_frame)
        .field("legacy_vec_u16_bytes_per_frame", legacy_bytes_per_frame)
        .field("wire_vs_legacy_ratio", wire_vs_legacy)
        .field("airtime_model_bits_per_frame", airtime_bits)
        .field("airtime_model_matches_wire", airtime_matches_wire)
        .field("stale_station_rounds", stale_station_rounds)
        .field("link_check_ber", link_ber);
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("\nwrote {out_path}");

    if !batched_matches_serial {
        eprintln!("FAIL: batched serving diverged from station-at-a-time serving");
        std::process::exit(1);
    }
    if !airtime_matches_wire {
        eprintln!("FAIL: wire frame size drifted from the airtime model prediction");
        std::process::exit(1);
    }
}
