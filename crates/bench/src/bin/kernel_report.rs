//! Kernel-dispatch benchmark: scalar vs SIMD across the compute layers.
//!
//! Measures, per kernel backend, the hot kernels the `SPLITBEAM_KERNEL`
//! dispatch covers — the complex matmul of `mimo-math`, the dense f32 GEMM of
//! `neural` at the head and tail shapes of the paper's configurations, and the
//! fused dequantize→tail reconstruction of `splitbeam` — plus the end-to-end
//! AP serving throughput (`splitbeam-serve`) under `scalar` and `auto`
//! dispatch, and writes `BENCH_PR3.json`.
//!
//! On hosts without AVX2+FMA the SIMD measurements gracefully degrade to the
//! scalar backend: the parity numbers (speedups ~1.0) are still reported, not
//! skipped, and the `kernel.avx2_fma_available` field says why.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin kernel_report           # writes BENCH_PR3.json
//! SPLITBEAM_STATIONS=32 SPLITBEAM_ROUNDS=12 cargo run --release -p bench --bin kernel_report
//! ```
//!
//! The binary exits non-zero when fused and unfused reconstructions diverge or
//! batched serving stops being bit-exact with serial serving under either
//! kernel — CI runs it as a smoke test.

use std::hint::black_box;

use mimo_math::kernel::{avx2_fma_available, set_kernel, Kernel, KernelChoice};
use mimo_math::{CMatrix, Complex64};
use neural::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::fused::TailScratch;
use splitbeam::model::SplitBeamModel;
use splitbeam::quantization::{dequantize_bottleneck, quantize_bottleneck, QuantizedFeedback};
use splitbeam_bench::report::{kernel_dispatch_value, object, tune_value, JsonReport, JsonValue};
use splitbeam_bench::timing::{gb_per_s, gflop_per_s, measure, measure_pair, num_threads};
use splitbeam_bench::{env_usize, feedback_identical};
use splitbeam_serve::driver::{
    build_server, generate_traffic, serve_traffic, ServeMode, SimConfig,
};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

/// The PR index this report seeds.
const PR_INDEX: u32 = 3;

/// One scalar-vs-SIMD kernel comparison, with the bytes moved and FLOPs
/// executed per op so the report can state effective GB/s and GFLOP/s
/// alongside ns/op.
struct KernelBench {
    name: &'static str,
    unit: &'static str,
    scalar_ns: f64,
    simd_ns: f64,
    bytes_per_op: usize,
    flops_per_op: usize,
}

impl KernelBench {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.simd_ns
    }

    fn to_json(&self) -> JsonValue {
        object(vec![
            ("name", self.name.into()),
            ("unit", self.unit.into()),
            ("scalar_ns_per_op", self.scalar_ns.into()),
            ("simd_ns_per_op", self.simd_ns.into()),
            ("simd_speedup_vs_scalar", self.speedup().into()),
            ("bytes_per_op", self.bytes_per_op.into()),
            ("flops_per_op", self.flops_per_op.into()),
            (
                "simd_gb_per_s",
                gb_per_s(self.bytes_per_op, self.simd_ns).into(),
            ),
            (
                "simd_gflop_per_s",
                gflop_per_s(self.flops_per_op, self.simd_ns).into(),
            ),
            (
                "scalar_gb_per_s",
                gb_per_s(self.bytes_per_op, self.scalar_ns).into(),
            ),
            (
                "scalar_gflop_per_s",
                gflop_per_s(self.flops_per_op, self.scalar_ns).into(),
            ),
        ])
    }
}

/// The SIMD backend to measure: AVX2+FMA when available, otherwise the scalar
/// fallback itself (parity run).
fn simd_kernel() -> Kernel {
    if avx2_fma_available() {
        Kernel::Avx2Fma
    } else {
        Kernel::Scalar
    }
}

fn bench_complex_matmul() -> KernelBench {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let a = CMatrix::from_fn(8, 8, |_, _| {
        Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    let b = CMatrix::from_fn(8, 8, |_, _| {
        Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    let mut out_simd = CMatrix::zeros(8, 8);
    let mut out_scalar = CMatrix::zeros(8, 8);
    let simd = simd_kernel();
    let (simd_ns, scalar_ns) = measure_pair(
        || a.matmul_into_with(black_box(&b), &mut out_simd, simd),
        || a.matmul_into_with(black_box(&b), &mut out_scalar, Kernel::Scalar),
    );
    KernelBench {
        name: "cmatrix_matmul_8x8",
        unit: "matmul",
        scalar_ns,
        simd_ns,
        // Two operands read + one written, 16 bytes per complex; 8 real FLOPs
        // per complex multiply-accumulate.
        bytes_per_op: 3 * 8 * 8 * 16,
        flops_per_op: 8 * 8 * 8 * 8,
    }
}

fn bench_dense_gemm(name: &'static str, batch: usize, m: usize, n: usize) -> KernelBench {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let a = Matrix::xavier_uniform(batch, m, &mut rng);
    let b = Matrix::xavier_uniform(m, n, &mut rng);
    let mut out_simd = Matrix::zeros(batch, n);
    let mut out_scalar = Matrix::zeros(batch, n);
    let simd = simd_kernel();
    let (simd_ns, scalar_ns) = measure_pair(
        || a.matmul_into_with(black_box(&b), &mut out_simd, simd),
        || a.matmul_into_with(black_box(&b), &mut out_scalar, Kernel::Scalar),
    );
    KernelBench {
        name,
        unit: "gemm",
        scalar_ns,
        simd_ns,
        bytes_per_op: 4 * (batch * m + m * n + batch * n),
        flops_per_op: 2 * batch * m * n,
    }
}

/// Fused dequantize→tail vs dequantize-then-batched-tail at the serve
/// configuration, both under the dispatched (auto) kernel, plus the bitwise
/// verdict between the two paths.
fn bench_fused(model: &SplitBeamModel, stations: usize) -> (KernelBench, bool) {
    let dim = model.bottleneck_dim();
    let payloads: Vec<QuantizedFeedback> = (0..stations.max(1))
        .map(|s| {
            let values: Vec<f32> = (0..dim)
                .map(|j| ((s * dim + j) as f32 * 0.173).sin() * 0.4)
                .collect();
            quantize_bottleneck(&values, 4)
        })
        .collect();
    let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
    let mut scratch = TailScratch::new();

    set_kernel(Some(KernelChoice::Auto));
    let fused = model
        .reconstruct_quantized_batch_into(&refs, &mut scratch)
        .expect("fused reconstruction")
        .as_slice()
        .to_vec();
    let unfused: Vec<f32> = {
        let bottlenecks: Vec<Vec<f32>> = payloads.iter().map(dequantize_bottleneck).collect();
        let slices: Vec<&[f32]> = bottlenecks.iter().map(Vec::as_slice).collect();
        model
            .reconstruct_batch(&slices)
            .expect("unfused reconstruction")
            .concat()
    };
    let fused_matches_unfused = fused == unfused;

    let (fused_ns, unfused_ns) = measure_pair(
        || {
            black_box(
                model
                    .reconstruct_quantized_batch_into(black_box(&refs), &mut scratch)
                    .unwrap(),
            );
        },
        || {
            let bottlenecks: Vec<Vec<f32>> = payloads.iter().map(dequantize_bottleneck).collect();
            let slices: Vec<&[f32]> = bottlenecks.iter().map(Vec::as_slice).collect();
            black_box(model.reconstruct_batch(black_box(&slices)).unwrap());
        },
    );
    set_kernel(None);
    // One batched reconstruction streams the tail weights once (one f32 per
    // MAC) plus the batch inputs and outputs, and runs 2 FLOPs per MAC per
    // station.
    let macs = model.tail_macs() as usize;
    let out_dim = fused.len() / stations.max(1);
    (
        KernelBench {
            name: "fused_dequant_tail_vs_dequant_then_batch",
            unit: "batched reconstruction",
            scalar_ns: unfused_ns,
            simd_ns: fused_ns,
            bytes_per_op: 4 * (macs + stations * (dim + out_dim)),
            flops_per_op: 2 * macs * stations,
        },
        fused_matches_unfused,
    )
}

/// Serves the same traffic under a pinned kernel choice; returns
/// (payloads/sec, batched-matches-serial).
fn serve_under(
    choice: KernelChoice,
    model: &SplitBeamModel,
    sim: &SimConfig,
    traffic: &splitbeam_serve::driver::SimTraffic,
) -> (f64, bool) {
    set_kernel(Some(choice));
    let mut batched = build_server(model.clone(), sim.stations, sim.bits_per_value);
    let mut serial = build_server(model.clone(), sim.stations, sim.bits_per_value);
    serve_traffic(&mut batched, traffic, ServeMode::Batched).expect("batched serving");
    serve_traffic(&mut serial, traffic, ServeMode::Serial).expect("serial serving");
    let bit_exact = feedback_identical(&batched, &serial, sim.stations);

    let mut server = build_server(model.clone(), sim.stations, sim.bits_per_value);
    let ns_per_pass = measure(|| {
        serve_traffic(&mut server, traffic, ServeMode::Batched).expect("batched serving");
    });
    set_kernel(None);
    (
        traffic.total_frames() as f64 / (ns_per_pass / 1e9),
        bit_exact,
    )
}

fn main() {
    let stations = env_usize("SPLITBEAM_STATIONS", 12);
    let rounds = env_usize("SPLITBEAM_ROUNDS", 6);
    let dispatch = mimo_math::kernel::dispatch_report();
    println!(
        "SplitBeam kernel report (PR {PR_INDEX}) — requested {}, selected {}, avx2+fma {}\n",
        dispatch.requested, dispatch.selected, dispatch.avx2_fma_available
    );

    // Microkernels: the paper's 2x2/20MHz head shape (448→56, batch 16) and
    // the 3x3/80MHz tail shape (545→4356, batch = stations) the AP serves.
    let benchmarks = [
        bench_complex_matmul(),
        bench_dense_gemm("dense_gemm_head_448x56_batch16", 16, 448, 56),
        bench_dense_gemm("dense_gemm_tail_545x4356_batch12", 12, 545, 4356),
    ];

    // The serve configuration (same as serve_report / BENCH_PR2).
    let config = SplitBeamConfig::new(
        MimoConfig::symmetric(3, Bandwidth::Mhz80),
        CompressionLevel::OneEighth,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let model = SplitBeamModel::new(config, &mut rng);
    let (fused_bench, fused_matches_unfused) = bench_fused(&model, stations);

    let sim = SimConfig {
        stations,
        rounds,
        bits_per_value: 4,
        drop_every: 0,
        snr_db: 25.0,
        churn: splitbeam_serve::driver::ChurnConfig::none(),
    };
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let (payloads_per_sec_scalar, bit_exact_scalar) =
        serve_under(KernelChoice::Scalar, &model, &sim, &traffic);
    let (payloads_per_sec_auto, bit_exact_auto) =
        serve_under(KernelChoice::Auto, &model, &sim, &traffic);
    let e2e_speedup = payloads_per_sec_auto / payloads_per_sec_scalar;

    for b in benchmarks.iter().chain([&fused_bench]) {
        println!(
            "{:<42} scalar {:>12.1} ns/op   simd {:>12.1} ns/op   speedup {:>5.2}x   \
             {:>6.1} GB/s {:>6.1} GFLOP/s",
            b.name,
            b.scalar_ns,
            b.simd_ns,
            b.speedup(),
            gb_per_s(b.bytes_per_op, b.simd_ns),
            gflop_per_s(b.flops_per_op, b.simd_ns),
        );
    }
    println!(
        "\nserve e2e   scalar {payloads_per_sec_scalar:>10.0} payloads/s   auto \
         {payloads_per_sec_auto:>10.0} payloads/s   speedup {e2e_speedup:.2}x"
    );
    println!(
        "bit-exact   fused==unfused {fused_matches_unfused}, batched==serial scalar \
         {bit_exact_scalar} / auto {bit_exact_auto}"
    );

    let report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value())
        .field("tune", tune_value())
        .field("stations", stations)
        .field("rounds", rounds)
        .field(
            "benchmarks",
            benchmarks
                .iter()
                .map(KernelBench::to_json)
                .collect::<Vec<_>>(),
        )
        .field(
            "fused",
            object(vec![
                ("fused_ns_per_op", fused_bench.simd_ns.into()),
                ("unfused_ns_per_op", fused_bench.scalar_ns.into()),
                ("fused_speedup_vs_unfused", fused_bench.speedup().into()),
                ("fused_matches_unfused", fused_matches_unfused.into()),
            ]),
        )
        .field(
            "serve_e2e",
            object(vec![
                ("payloads_per_pass", traffic.total_frames().into()),
                ("payloads_per_sec_scalar", payloads_per_sec_scalar.into()),
                ("payloads_per_sec_auto", payloads_per_sec_auto.into()),
                ("auto_speedup_vs_scalar", e2e_speedup.into()),
                ("batched_matches_serial_scalar", bit_exact_scalar.into()),
                ("batched_matches_serial_auto", bit_exact_auto.into()),
            ]),
        );
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("\nwrote {out_path}");

    if !fused_matches_unfused {
        eprintln!("FAIL: fused dequantize→tail diverged from dequantize-then-reconstruct");
        std::process::exit(1);
    }
    if !bit_exact_scalar || !bit_exact_auto {
        eprintln!("FAIL: batched serving diverged from station-at-a-time serving");
        std::process::exit(1);
    }
}
