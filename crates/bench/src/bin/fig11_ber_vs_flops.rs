//! Figure 11: BER as a function of the STA computational load — the SplitBeam
//! compression sweep against the single 802.11 operating point, for 2x2 and
//! 3x3 at 40 and 80 MHz.

use dot11_bfi::complexity::dot11_sta_flops;
use dot11_bfi::quantize::AngleResolution;
use splitbeam::config::SplitBeamConfig;
use splitbeam_bench::{
    dataset, measure_ber, print_table, standard_levels, train_splitbeam, FeedbackScheme, Workload,
};
use splitbeam_datasets::catalog::dataset_for;
use wifi_phy::ofdm::Bandwidth;

fn main() {
    let workload = Workload::from_env();
    let mut rows = Vec::new();
    for order in [2usize, 3] {
        for bw in [Bandwidth::Mhz40, Bandwidth::Mhz80] {
            let spec = dataset_for(order, bw, "E1").expect("catalog entry");
            let generated = dataset(&spec, &workload, 300 + spec.id.0 as u64);
            let (_, _, test) = generated.split_train_val_test();
            for level in standard_levels() {
                let config = SplitBeamConfig::new(spec.mimo, level);
                let model = train_splitbeam(&config, &generated, &workload, 23);
                let ber = measure_ber(
                    &FeedbackScheme::SplitBeam(&model),
                    test,
                    &workload,
                    None,
                    29,
                );
                rows.push(vec![
                    format!("{order}x{order}"),
                    format!("{bw}"),
                    format!("SplitBeam {}", level.label()),
                    format!("{}", model.head_macs()),
                    format!("{ber:.4}"),
                ]);
            }
            let dot11_ber = measure_ber(
                &FeedbackScheme::Dot11(AngleResolution::High),
                test,
                &workload,
                None,
                29,
            );
            rows.push(vec![
                format!("{order}x{order}"),
                format!("{bw}"),
                "802.11".to_string(),
                format!("{}", dot11_sta_flops(order, order, bw.subcarriers())),
                format!("{dot11_ber:.4}"),
            ]);
        }
    }
    print_table(
        "Figure 11: BER vs STA computational load",
        &["config", "bandwidth", "scheme", "STA FLOPs/MACs", "BER"],
        &rows,
    );
}
