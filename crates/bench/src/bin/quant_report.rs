//! Low-precision tail serving report: f32 vs int8 tail weights end to end.
//!
//! Measures AP serving throughput at the paper's 3x3/80 MHz serve
//! configuration under both `SPLITBEAM_TAIL_WEIGHTS` modes, checks the
//! correctness anchors of the quantized path, and writes `BENCH_PR8.json`:
//!
//! * **Throughput** — payloads/s batched-serving under the dispatched (auto)
//!   kernel with f32 and int8 tail weights, the int8 speedup, and the effective
//!   weight-stream GB/s of each mode (the tail GEMM is memory-bound, so the
//!   byte ratio is the speedup lever).
//! * **Bit-exactness** — with `f32` weights every serving flavor must
//!   reproduce the direct [`SplitBeamModel::reconstruct_quantized`] output
//!   (the pre-quantization serving behavior) bit-for-bit under both existing
//!   kernel backends; with `int8` weights batched and serial serving must
//!   reproduce the scalar int8 reference bit-for-bit under both backends.
//! * **Accuracy guardrail** — BER at the `fig09_ber_vs_compression` 3x3/80 MHz
//!   point (E1, 1/8 compression) with the int8 tail must stay within the
//!   quantized-f32 envelope ([`splitbeam_bench::ber_within_envelope`]).
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin quant_report        # writes BENCH_PR8.json
//! SPLITBEAM_SAMPLES=40 SPLITBEAM_EPOCHS=4 cargo run --release -p bench --bin quant_report
//! ```
//!
//! The binary exits non-zero when any verdict fails — CI runs it as the PR 8
//! regression gate.

use mimo_math::kernel::int8::Int8Kernel;
use mimo_math::kernel::{set_kernel, KernelChoice};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::fused::{QuantizedTail, TailWeights};
use splitbeam::model::SplitBeamModel;
use splitbeam::quantization::QuantizedFeedback;
use splitbeam::wire::decode_feedback;
use splitbeam_bench::report::{kernel_dispatch_value, object, tune_value, JsonReport};
use splitbeam_bench::timing::{gb_per_s, measure_pair, num_threads};
use splitbeam_bench::{
    ber_within_envelope, dataset, env_usize, measure_ber, train_splitbeam, FeedbackScheme, Workload,
};
use splitbeam_datasets::catalog::dataset_for;
use splitbeam_serve::driver::{
    build_server, generate_traffic, serve_traffic, ServeMode, SimConfig, SimTraffic,
};
use splitbeam_serve::server::ApServer;
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

/// The PR index this report seeds.
const PR_INDEX: u32 = 8;

/// Batched-serving payloads/s of both tail-weight modes under auto dispatch,
/// measured with alternating batches ([`measure_pair`]) so frequency scaling
/// and background load hit the f32 and int8 sides equally — the speedup
/// verdict divides the two, so drift between separate measurements would go
/// straight into the ratio.
fn serve_pps_pair(model: &SplitBeamModel, sim: &SimConfig, traffic: &SimTraffic) -> (f64, f64) {
    set_kernel(Some(KernelChoice::Auto));
    let mut f32_server = build_server(model.clone(), sim.stations, sim.bits_per_value);
    f32_server.set_tail_weights(TailWeights::F32);
    let mut int8_server = build_server(model.clone(), sim.stations, sim.bits_per_value);
    int8_server.set_tail_weights(TailWeights::Int8);
    let (f32_ns, int8_ns) = measure_pair(
        || {
            serve_traffic(&mut f32_server, traffic, ServeMode::Batched).expect("batched serving");
        },
        || {
            serve_traffic(&mut int8_server, traffic, ServeMode::Batched).expect("batched serving");
        },
    );
    set_kernel(None);
    let pps = |ns_per_pass: f64| traffic.total_frames() as f64 / (ns_per_pass / 1e9);
    (pps(f32_ns), pps(int8_ns))
}

/// One frame + decoded payload per station, taken from a single-round traffic
/// pass. The frames were produced by the head under whatever kernel was live
/// at generation time; replaying the same bytes under every pin keeps the
/// bit-exactness comparisons honest (the f32 head is deterministic per
/// backend, not identical across backends).
fn exactness_frames(traffic: &SimTraffic) -> Vec<(u64, Vec<u8>, QuantizedFeedback)> {
    traffic.rounds[0]
        .frames
        .iter()
        .filter_map(|(id, frame)| {
            let frame = frame.as_ref()?;
            let payload = decode_feedback(frame).ok()?;
            Some((*id, frame.clone(), payload))
        })
        .collect()
}

/// Serves the frames under a pinned kernel in `mode`, both batched and
/// serial, and checks every station's feedback against `expected_of`
/// (computed inside the pin, so the reference sees the same f32 backend).
fn bit_exact_under(
    choice: KernelChoice,
    mode: TailWeights,
    model: &SplitBeamModel,
    frames: &[(u64, Vec<u8>, QuantizedFeedback)],
    expected_of: impl Fn(usize, &QuantizedFeedback) -> Vec<f32>,
    bits: u8,
) -> bool {
    set_kernel(Some(choice));
    let mut batched = ApServer::new();
    let mut serial = ApServer::new();
    batched.set_tail_weights(mode);
    serial.set_tail_weights(mode);
    let bk = batched.register_model(model.clone());
    let sk = serial.register_model(model.clone());
    for (id, frame, _) in frames {
        batched.register_station(*id, bk, bits).expect("register");
        serial.register_station(*id, sk, bits).expect("register");
        batched.ingest_wire(*id, frame).expect("ingest");
        serial.ingest_wire(*id, frame).expect("ingest");
    }
    batched.process_round().expect("batched round");
    serial.process_round_serial().expect("serial round");
    let ok = frames.iter().enumerate().all(|(i, (id, _, payload))| {
        let want = expected_of(i, payload);
        batched.feedback_of(*id) == Some(want.as_slice())
            && serial.feedback_of(*id) == Some(want.as_slice())
    });
    set_kernel(None);
    ok
}

fn main() {
    let stations = env_usize("SPLITBEAM_STATIONS", 12);
    let rounds = env_usize("SPLITBEAM_ROUNDS", 6);
    let dispatch = mimo_math::kernel::dispatch_report();
    println!(
        "SplitBeam quantized-tail report (PR {PR_INDEX}) — f32 kernel {}, int8 kernel {}, \
         vnni {}\n",
        dispatch.selected, dispatch.selected_int8, dispatch.avx512_vnni_available
    );

    // The serve configuration (same as kernel_report / BENCH_PR3): the paper's
    // 3x3/80 MHz tail at 1/8 compression.
    let config = SplitBeamConfig::new(
        MimoConfig::symmetric(3, Bandwidth::Mhz80),
        CompressionLevel::OneEighth,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let model = SplitBeamModel::new(config, &mut rng);
    let tail = QuantizedTail::bind(&model);
    let f32_weight_bytes = model.tail_macs() as usize * 4;
    let int8_weight_bytes = tail.weight_bytes();

    let sim = SimConfig {
        stations,
        rounds,
        bits_per_value: 4,
        drop_every: 0,
        snr_db: 25.0,
        churn: splitbeam_serve::driver::ChurnConfig::none(),
    };
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let exact_sim = SimConfig { rounds: 1, ..sim };
    let exact_traffic = generate_traffic(&exact_sim, &model, &mut rng);
    let frames = exactness_frames(&exact_traffic);
    assert!(!frames.is_empty(), "exactness traffic produced no frames");

    // Throughput: f32 vs int8 under the dispatched kernel.
    let (f32_pps, int8_pps) = serve_pps_pair(&model, &sim, &traffic);
    let speedup = int8_pps / f32_pps;
    let speedup_target = if dispatch.avx512_vnni_available {
        3.0
    } else if dispatch.avx2_fma_available {
        2.0
    } else {
        1.0
    };
    let speedup_ok = speedup >= speedup_target;
    let batch_ns = |pps: f64| stations as f64 / pps * 1e9;
    let f32_gb = gb_per_s(f32_weight_bytes, batch_ns(f32_pps));
    let int8_gb = gb_per_s(int8_weight_bytes, batch_ns(int8_pps));

    // Bit-exactness anchors under both existing kernel backends. The scalar
    // int8 reference is exact integer math, so one reference serves all pins;
    // the f32 reference must be recomputed inside each pin.
    let int8_reference: Vec<Vec<f32>> = frames
        .iter()
        .map(|(_, _, payload)| {
            tail.reconstruct_quantized(payload, Int8Kernel::Scalar)
                .expect("scalar int8 reference")
        })
        .collect();
    let mut f32_exact = Vec::new();
    let mut int8_exact = Vec::new();
    for choice in [KernelChoice::Scalar, KernelChoice::Auto] {
        f32_exact.push(bit_exact_under(
            choice,
            TailWeights::F32,
            &model,
            &frames,
            |_, payload| model.reconstruct_quantized(payload).expect("f32 reference"),
            sim.bits_per_value,
        ));
        int8_exact.push(bit_exact_under(
            choice,
            TailWeights::Int8,
            &model,
            &frames,
            |i, _| int8_reference[i].clone(),
            sim.bits_per_value,
        ));
    }
    let (f32_exact_scalar, f32_exact_auto) = (f32_exact[0], f32_exact[1]);
    let (int8_exact_scalar, int8_exact_auto) = (int8_exact[0], int8_exact[1]);

    // Accuracy guardrail: BER at the fig09 3x3/80 MHz point (E1), f32 vs int8
    // tail on the same trained model, same link noise seed.
    let workload = Workload::from_env();
    let spec = dataset_for(3, Bandwidth::Mhz80, "E1").expect("catalog entry");
    let generated = dataset(&spec, &workload, 100 + spec.id.0 as u64);
    let (_, _, test) = generated.split_train_val_test();
    let ber_config = SplitBeamConfig::new(spec.mimo, CompressionLevel::OneEighth);
    let trained = train_splitbeam(&ber_config, &generated, &workload, 7 + spec.id.0 as u64);
    let trained_tail = QuantizedTail::bind(&trained);
    let ber_f32 = measure_ber(
        &FeedbackScheme::SplitBeam(&trained),
        test,
        &workload,
        None,
        13,
    );
    let ber_int8 = measure_ber(
        &FeedbackScheme::SplitBeamInt8(&trained, &trained_tail),
        test,
        &workload,
        None,
        13,
    );
    let ber_ok = ber_within_envelope(ber_int8, ber_f32);

    println!(
        "serve e2e   f32 {f32_pps:>10.0} payloads/s ({f32_gb:.1} GB/s weights)   int8 \
         {int8_pps:>10.0} payloads/s ({int8_gb:.1} GB/s weights)   speedup {speedup:.2}x \
         (target {speedup_target:.1}x)"
    );
    println!(
        "bit-exact   f32==PR7 scalar {f32_exact_scalar} / auto {f32_exact_auto}, int8==scalar-ref \
         scalar {int8_exact_scalar} / auto {int8_exact_auto}"
    );
    println!("BER 3x3/80  f32 {ber_f32:.4}   int8 {ber_int8:.4}   within envelope {ber_ok}");

    let report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value())
        .field("tune", tune_value())
        .field("stations", stations)
        .field("rounds", rounds)
        .field(
            "serve",
            object(vec![
                ("payloads_per_pass", traffic.total_frames().into()),
                ("f32_payloads_per_sec", f32_pps.into()),
                ("int8_payloads_per_sec", int8_pps.into()),
                ("int8_speedup_vs_f32", speedup.into()),
                ("speedup_target", speedup_target.into()),
                ("f32_weight_bytes", f32_weight_bytes.into()),
                ("int8_weight_bytes", int8_weight_bytes.into()),
                (
                    "weight_bytes_ratio",
                    (f32_weight_bytes as f64 / int8_weight_bytes as f64).into(),
                ),
                ("f32_weight_stream_gb_per_s", f32_gb.into()),
                ("int8_weight_stream_gb_per_s", int8_gb.into()),
            ]),
        )
        .field(
            "ber",
            object(vec![
                ("config", "3x3 80MHz E1 1/8".into()),
                ("f32_ber", ber_f32.into()),
                ("int8_ber", ber_int8.into()),
            ]),
        )
        .field(
            "verdicts",
            object(vec![
                ("int8_speedup_meets_target", speedup_ok.into()),
                ("ber_within_envelope", ber_ok.into()),
                ("f32_bit_exact_scalar", f32_exact_scalar.into()),
                ("f32_bit_exact_auto", f32_exact_auto.into()),
                ("int8_bit_exact_scalar", int8_exact_scalar.into()),
                ("int8_bit_exact_auto", int8_exact_auto.into()),
            ]),
        );
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("\nwrote {out_path}");

    let mut failed = false;
    for (name, ok) in [
        ("int8_speedup_meets_target", speedup_ok),
        ("ber_within_envelope", ber_ok),
        ("f32_bit_exact_scalar", f32_exact_scalar),
        ("f32_bit_exact_auto", f32_exact_auto),
        ("int8_bit_exact_scalar", int8_exact_scalar),
        ("int8_bit_exact_auto", int8_exact_auto),
    ] {
        if !ok {
            eprintln!("FAIL: verdict {name} is false");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
