//! Sharded-serving benchmark: the multi-core AP serving layer under churn.
//!
//! Drives `splitbeam_serve::shard::ShardedApServer` over simulated sounding
//! rounds with session churn (joins, departures, bursty drops) and writes
//! `BENCH_PR4.json` with:
//!
//! * AP-side serving throughput (payloads/s) at shard counts 1/2/4/8
//!   (informational — single-core hosts serialize the shards),
//! * bit-exactness verdicts: sharded serving must reconstruct byte-identical
//!   feedback to the single-shard batched path and the station-at-a-time
//!   serial reference at every shard count,
//! * churn statistics: scheduled joins/leaves/drops, plus evictions and
//!   re-associations from a run with an aggressive idle budget.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin shard_report            # writes BENCH_PR4.json
//! SPLITBEAM_STATIONS=32 SPLITBEAM_ROUNDS=12 cargo run --release -p bench --bin shard_report
//! ```
//!
//! The binary exits non-zero when any bit-exactness verdict is false — CI
//! runs it as a smoke test.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_bench::report::{kernel_dispatch_value, JsonReport, JsonValue};
use splitbeam_bench::timing::{measure, num_threads};
use splitbeam_bench::{env_usize, feedback_identical};
use splitbeam_serve::driver::{
    build_server, build_sharded_server, generate_traffic, serve_traffic, ChurnConfig, ServeMode,
    SimConfig,
};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

/// The PR index this report seeds.
const PR_INDEX: u32 = 4;

/// Shard counts swept by the report.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let stations = env_usize("SPLITBEAM_STATIONS", 12);
    let rounds = env_usize("SPLITBEAM_ROUNDS", 6);
    let bits_per_value = 4u8;

    // The paper's headline MU-MIMO configuration (same as serve_report):
    // 3x3 at 80 MHz, 545-wide bottleneck at K = 1/8.
    let config = SplitBeamConfig::new(
        MimoConfig::symmetric(3, Bandwidth::Mhz80),
        CompressionLevel::OneEighth,
    );
    let bottleneck_dim = config.bottleneck_dim();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let model = SplitBeamModel::new(config, &mut rng);

    println!(
        "SplitBeam shard report (PR {PR_INDEX}) — {stations} stations x {rounds} rounds, \
         {bottleneck_dim}-wide bottleneck at {bits_per_value} bits/value, churn enabled\n"
    );

    // Churny traffic: joins, departures and bursty drops on top of the
    // steady drop schedule — every server flavor replays the identical run.
    let sim = SimConfig {
        stations,
        rounds,
        bits_per_value,
        drop_every: 9,
        snr_db: 25.0,
        churn: ChurnConfig {
            join_every: 2,
            leave_every: 3,
            burst_every: 4,
        },
    };
    let traffic = generate_traffic(&sim, &model, &mut rng);
    let all_ids = traffic.max_station_id as usize;

    // Steady-state traffic (no churn, no drops) for the timed sweep: churn
    // events are not replay-safe on a persistent server (a join would
    // re-register on the second pass), and throughput should measure the
    // per-round serving path, not registration.
    let steady_sim = SimConfig {
        drop_every: 0,
        churn: ChurnConfig::none(),
        ..sim
    };
    let steady_traffic = generate_traffic(&steady_sim, &model, &mut rng);
    let payloads_per_pass = steady_traffic.total_frames();

    // References: single-shard batched and station-at-a-time serial.
    let mut batched = build_server(model.clone(), stations, bits_per_value);
    let batched_outcome =
        serve_traffic(&mut batched, &traffic, ServeMode::Batched).expect("batched serving");
    let mut serial = build_server(model.clone(), stations, bits_per_value);
    let serial_outcome =
        serve_traffic(&mut serial, &traffic, ServeMode::Serial).expect("serial serving");
    let batched_matches_serial = batched_outcome.summaries == serial_outcome.summaries
        && feedback_identical(&batched, &serial, all_ids);

    // Sharded sweep: bit-exactness verdicts plus throughput per shard count.
    let mut throughput_rows = Vec::new();
    let mut verdict_rows = Vec::new();
    let mut all_exact = true;
    for &shards in &SHARD_COUNTS {
        let mut sharded = build_sharded_server(model.clone(), stations, bits_per_value, shards);
        let outcome =
            serve_traffic(&mut sharded, &traffic, ServeMode::Batched).expect("sharded serving");
        let matches_batched = outcome.total_served() == batched_outcome.total_served()
            && feedback_identical(&sharded, &batched, all_ids);
        let matches_serial = feedback_identical(&sharded, &serial, all_ids);
        all_exact &= matches_batched && matches_serial;

        let mut bench_server =
            build_sharded_server(model.clone(), stations, bits_per_value, shards);
        let ns_per_pass = measure(|| {
            serve_traffic(&mut bench_server, &steady_traffic, ServeMode::Batched)
                .expect("sharded serving");
        });
        let payloads_per_sec = payloads_per_pass as f64 / (ns_per_pass / 1e9);
        println!(
            "{shards:>2} shards  {payloads_per_sec:>12.0} payloads/s   \
             sharded==batched: {matches_batched}   sharded==serial: {matches_serial}"
        );
        throughput_rows.push(JsonValue::Object(vec![
            ("shards".into(), shards.into()),
            ("payloads_per_sec".into(), payloads_per_sec.into()),
        ]));
        verdict_rows.push(JsonValue::Object(vec![
            ("shards".into(), shards.into()),
            ("sharded_matches_batched".into(), matches_batched.into()),
            ("sharded_matches_serial".into(), matches_serial.into()),
        ]));
    }

    // Churn + lifecycle run on the same traffic: an aggressive idle budget
    // forces evictions, and serve_traffic cleanly re-associates any evicted
    // station the moment it transmits again.
    let mut lifecycle = build_sharded_server(model.clone(), stations, bits_per_value, 4);
    lifecycle.set_max_idle_rounds(Some(1));
    let lifecycle_outcome =
        serve_traffic(&mut lifecycle, &traffic, ServeMode::Batched).expect("lifecycle serving");
    let evicted = lifecycle_outcome.evictions;
    let reassociations = lifecycle_outcome.reassociations;
    let churn_stats = JsonValue::Object(vec![
        ("joins".into(), traffic.total_joins().into()),
        ("leaves".into(), traffic.total_leaves().into()),
        ("dropped_reports".into(), traffic.total_drops().into()),
        ("evictions".into(), evicted.into()),
        ("reassociations".into(), reassociations.into()),
        ("stations_final".into(), lifecycle.num_stations().into()),
    ]);
    println!(
        "\nchurn     joins {} / leaves {} / dropped {} / evictions {evicted} / \
         reassociations {reassociations}",
        traffic.total_joins(),
        traffic.total_leaves(),
        traffic.total_drops()
    );
    println!("bit-exact batched==serial: {batched_matches_serial}, sharded sweep: {all_exact}");

    let report = JsonReport::new()
        .field("pr", PR_INDEX)
        .field("threads", num_threads())
        .field("kernel", kernel_dispatch_value())
        .field("stations", stations)
        .field("rounds", rounds)
        .field("bits_per_value", bits_per_value)
        .field("bottleneck_dim", bottleneck_dim)
        .field("payloads_per_pass", payloads_per_pass)
        .field(
            "shard_counts",
            JsonValue::Array(SHARD_COUNTS.iter().map(|&s| s.into()).collect()),
        )
        .field("throughput", JsonValue::Array(throughput_rows))
        .field("verdicts", JsonValue::Array(verdict_rows))
        .field("batched_matches_serial", batched_matches_serial)
        .field("sharded_matches_batched", all_exact)
        .field("churn", churn_stats);
    let out_path = report.write(&format!("BENCH_PR{PR_INDEX}.json"));
    println!("\nwrote {out_path}");

    if !batched_matches_serial {
        eprintln!("FAIL: batched serving diverged from station-at-a-time serving");
        std::process::exit(1);
    }
    if !all_exact {
        eprintln!("FAIL: sharded serving diverged from the single-shard references");
        std::process::exit(1);
    }
}
