//! Criterion microbenchmarks of SplitBeam head/tail inference — the per-packet
//! cost that replaces the station's SVD + Givens pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitbeam_inference");
    for (order, bw) in [(2usize, Bandwidth::Mhz20), (3, Bandwidth::Mhz40)] {
        let config = SplitBeamConfig::new(
            MimoConfig::symmetric(order, bw),
            CompressionLevel::OneEighth,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = SplitBeamModel::new(config.clone(), &mut rng);
        let input: Vec<f32> = (0..config.input_dim())
            .map(|i| ((i as f32) * 0.173).sin() * 0.1)
            .collect();
        let label = format!("{order}x{order}@{bw}");
        group.bench_with_input(BenchmarkId::new("head", &label), &input, |b, x| {
            b.iter(|| model.compress(std::hint::black_box(x)).unwrap())
        });
        let bottleneck = model.compress(&input).unwrap();
        group.bench_with_input(BenchmarkId::new("tail", &label), &bottleneck, |b, x| {
            b.iter(|| model.reconstruct(std::hint::black_box(x)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
