//! Criterion benchmark of the end-to-end MU-MIMO BER link simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
use wifi_phy::link::{simulate_mu_mimo_ber, LinkConfig};
use wifi_phy::ofdm::Bandwidth;

fn bench_link(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
    let snapshot = model.sample(&mut rng);
    let feedback = snapshot.ideal_beamforming();
    let config = LinkConfig {
        symbols_per_subcarrier: 1,
        ..LinkConfig::default()
    };
    c.bench_function("mu_mimo_ber_2x2_20mhz", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            simulate_mu_mimo_ber(
                std::hint::black_box(&snapshot),
                std::hint::black_box(&feedback),
                &config,
                &mut rng,
            )
            .unwrap()
        })
    });

    c.bench_function("channel_snapshot_3x3_80mhz", |b| {
        let model = ChannelModel::new(EnvironmentProfile::e2(), Bandwidth::Mhz80, 3, 3, 1);
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            std::hint::black_box(model.sample(&mut rng))
        })
    });
}

criterion_group!(benches, bench_link);
criterion_main!(benches);
