//! Criterion microbenchmarks of the 802.11 station-side pipeline: complex SVD
//! and Givens decomposition/reconstruction of beamforming matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dot11_bfi::givens::GivensAngles;
use mimo_math::svd::Svd;
use mimo_math::{CMatrix, Complex64};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_matrix(rng: &mut impl Rng, n: usize) -> CMatrix {
    CMatrix::from_fn(n, n, |_, _| {
        Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    for n in [2usize, 3, 4, 8] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let h = random_matrix(&mut rng, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &h,
            |b, h| b.iter(|| Svd::compute(std::hint::black_box(h))),
        );
    }
    group.finish();
}

fn bench_givens(c: &mut Criterion) {
    let mut group = c.benchmark_group("givens");
    for n in [2usize, 3, 4] {
        let mut rng = ChaCha8Rng::seed_from_u64(10 + n as u64);
        let v = Svd::compute(&random_matrix(&mut rng, n)).beamforming_matrix(1);
        group.bench_with_input(BenchmarkId::new("decompose", n), &v, |b, v| {
            b.iter(|| GivensAngles::decompose(std::hint::black_box(v)).unwrap())
        });
        let angles = GivensAngles::decompose(&v).unwrap();
        group.bench_with_input(BenchmarkId::new("reconstruct", n), &angles, |b, a| {
            b.iter(|| std::hint::black_box(a).reconstruct())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd, bench_givens);
criterion_main!(benches);
