//! CSI dataset generation equivalent to the paper's measurement campaign.
//!
//! The paper trains and evaluates SplitBeam on 15 datasets (Table I): twelve
//! collected with Nexmon-patched routers in two physical environments (E1, E2)
//! at 20/40/80 MHz for 2x2 and 3x3 MU-MIMO, plus three MATLAB-generated 160 MHz
//! datasets (Model-B) for 2x2/3x3/4x4. Neither the hardware nor the recorded
//! traces are available, so this crate generates statistically equivalent data
//! from the `wifi-phy` channel simulator and reproduces the paper's capture
//! pipeline:
//!
//! * packets arrive at 1000 packets/s, so consecutive CSI samples are
//!   temporally correlated through the channel's Doppler process,
//! * some stations drop packets; samples are re-aligned by sequence number so
//!   every retained index represents the same time instant on every station,
//! * CSI amplitudes are normalized by the mean amplitude over subcarriers and
//!   smoothed with an `n = 10` moving-median window (Section 5.2.1),
//! * datasets are split 8:1:1 into train/validation/test.

pub mod capture;
pub mod catalog;
pub mod generator;

pub use catalog::{dataset_catalog, DatasetId, DatasetSpec};
pub use generator::{generate_dataset, GeneratedDataset, GeneratorOptions};

/// Errors produced by dataset generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The requested dataset identifier does not exist in the catalog.
    UnknownDataset(String),
    /// Generation parameters are inconsistent.
    InvalidParameters(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::UnknownDataset(name) => write!(f, "unknown dataset: {name}"),
            DatasetError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(format!("{}", DatasetError::UnknownDataset("D99".into())).contains("D99"));
        assert!(format!("{}", DatasetError::InvalidParameters("zero".into())).contains("zero"));
    }
}
