//! Capture-pipeline simulation: packet drops, sequence alignment, normalization
//! and moving-median smoothing (Section 5.2.1 of the paper).

use mimo_math::CMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the simulated capture pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptureOptions {
    /// Probability that a given station misses a given packet (Nexmon drops).
    pub drop_probability: f64,
    /// Window length of the moving-median amplitude smoother (paper: n = 10).
    pub median_window: usize,
    /// Whether to normalize each CSI matrix by its mean amplitude over subcarriers.
    pub normalize: bool,
}

impl Default for CaptureOptions {
    fn default() -> Self {
        Self {
            drop_probability: 0.02,
            median_window: 10,
            normalize: true,
        }
    }
}

/// Simulates per-station packet reception: returns, for each station, the set
/// of packet sequence numbers it actually captured.
pub fn simulate_receptions(
    num_stations: usize,
    num_packets: usize,
    drop_probability: f64,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    (0..num_stations)
        .map(|_| {
            (0..num_packets)
                .filter(|_| !rng.gen_bool(drop_probability.clamp(0.0, 1.0)))
                .collect()
        })
        .collect()
}

/// Aligns per-station capture sets by sequence number: only packets captured by
/// *every* station are retained, so each remaining index refers to the same
/// time/frequency channel observation on all stations (Section 5.2.1).
pub fn align_sequences(receptions: &[Vec<usize>]) -> Vec<usize> {
    if receptions.is_empty() {
        return Vec::new();
    }
    let mut common: Vec<usize> = receptions[0].clone();
    for r in &receptions[1..] {
        let set: std::collections::HashSet<usize> = r.iter().copied().collect();
        common.retain(|seq| set.contains(seq));
    }
    common
}

/// Normalizes a CSI matrix by the mean amplitude of its entries (removing
/// per-packet AGC/amplification differences, as the paper does).
pub fn normalize_by_mean_amplitude(h: &CMatrix) -> CMatrix {
    let mean: f64 = h.as_slice().iter().map(|z| z.abs()).sum::<f64>() / h.as_slice().len() as f64;
    if mean < 1e-12 {
        h.clone()
    } else {
        h.scale_real(1.0 / mean)
    }
}

/// Applies an `n`-point moving median to a scalar time series (used on the
/// per-subcarrier amplitude traces to suppress impulsive estimation noise).
///
/// NaN samples (a corrupted CSI estimate) are ordered by `f64::total_cmp`, so
/// they sort after every finite amplitude instead of panicking the capture
/// pipeline; a NaN therefore only surfaces in a window's output when it
/// reaches the median position itself.
pub fn moving_median(values: &[f64], window: usize) -> Vec<f64> {
    if window <= 1 || values.is_empty() {
        return values.to_vec();
    }
    let half = window / 2;
    (0..values.len())
        .map(|i| {
            let start = i.saturating_sub(half);
            let end = (i + half + 1).min(values.len());
            let mut slice: Vec<f64> = values[start..end].to_vec();
            slice.sort_by(f64::total_cmp);
            slice[slice.len() / 2]
        })
        .collect()
}

/// Applies the moving-median smoother to the amplitude of every entry of a CSI
/// time series (a sequence of `Nr x Nt` matrices for one subcarrier), keeping
/// the original phases.
pub fn smooth_csi_series(series: &[CMatrix], window: usize) -> Vec<CMatrix> {
    if series.is_empty() || window <= 1 {
        return series.to_vec();
    }
    let (rows, cols) = series[0].shape();
    let mut out = series.to_vec();
    for r in 0..rows {
        for c in 0..cols {
            let amplitudes: Vec<f64> = series.iter().map(|h| h[(r, c)].abs()).collect();
            let smoothed = moving_median(&amplitudes, window);
            for (t, h) in out.iter_mut().enumerate() {
                let phase = series[t][(r, c)].arg();
                h[(r, c)] = mimo_math::Complex64::from_polar(smoothed[t], phase);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_math::Complex64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn receptions_respect_drop_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let receptions = simulate_receptions(3, 1000, 0.1, &mut rng);
        assert_eq!(receptions.len(), 3);
        for r in &receptions {
            assert!(
                r.len() > 800 && r.len() < 1000,
                "drop rate ~10% expected, kept {}",
                r.len()
            );
        }
        let no_drops = simulate_receptions(2, 100, 0.0, &mut rng);
        assert!(no_drops.iter().all(|r| r.len() == 100));
    }

    #[test]
    fn alignment_keeps_only_common_sequences() {
        let receptions = vec![vec![0, 1, 2, 4, 5], vec![1, 2, 3, 5], vec![0, 1, 2, 5, 6]];
        assert_eq!(align_sequences(&receptions), vec![1, 2, 5]);
        assert!(align_sequences(&[]).is_empty());
    }

    #[test]
    fn normalization_gives_unit_mean_amplitude() {
        let h = CMatrix::from_fn(2, 2, |r, c| Complex64::new((r + c) as f64 + 1.0, 0.5));
        let normalized = normalize_by_mean_amplitude(&h);
        let mean: f64 = normalized.as_slice().iter().map(|z| z.abs()).sum::<f64>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-12);
        // Zero matrices pass through unchanged.
        let zero = CMatrix::zeros(2, 2);
        assert_eq!(normalize_by_mean_amplitude(&zero), zero);
    }

    #[test]
    fn moving_median_removes_impulse() {
        let mut series = vec![1.0; 21];
        series[10] = 100.0; // impulsive outlier
        let smoothed = moving_median(&series, 10);
        assert!((smoothed[10] - 1.0).abs() < 1e-12);
        // Window of 1 is a no-op.
        assert_eq!(moving_median(&series, 1), series);
    }

    #[test]
    fn moving_median_survives_nan_samples() {
        // Regression: the comparator used `partial_cmp(..).unwrap()`, so a
        // single NaN amplitude (a corrupted capture) panicked the whole
        // pipeline. With total_cmp, NaN sorts above every finite value and
        // the surrounding windows still produce finite medians.
        let mut series = vec![1.0; 21];
        series[10] = f64::NAN;
        let smoothed = moving_median(&series, 10);
        assert_eq!(smoothed.len(), series.len());
        // Windows where the NaN does not reach the median position stay finite.
        assert!((smoothed[0] - 1.0).abs() < 1e-12);
        assert!((smoothed[20] - 1.0).abs() < 1e-12);
        // Majority-finite windows around the corrupt sample are repaired.
        assert!((smoothed[10] - 1.0).abs() < 1e-12);
        // An all-NaN series must not panic either.
        let all_nan = vec![f64::NAN; 5];
        let out = moving_median(&all_nan, 3);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn csi_series_smoothing_preserves_phase_and_shape() {
        let series: Vec<CMatrix> = (0..20)
            .map(|t| {
                CMatrix::from_fn(2, 2, |r, c| {
                    let amp = if t == 7 { 50.0 } else { 1.0 };
                    Complex64::from_polar(amp, 0.3 * (r + c) as f64)
                })
            })
            .collect();
        let smoothed = smooth_csi_series(&series, 10);
        assert_eq!(smoothed.len(), 20);
        // The outlier amplitude is suppressed but the phase is untouched.
        assert!(smoothed[7][(0, 0)].abs() < 2.0);
        assert!((smoothed[7][(0, 1)].arg() - 0.3).abs() < 1e-9);
        // Degenerate cases.
        assert!(smooth_csi_series(&[], 10).is_empty());
    }
}
