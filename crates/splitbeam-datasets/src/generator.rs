//! Dataset generation: temporally-correlated CSI traces with capture artifacts.

use crate::capture::{
    align_sequences, normalize_by_mean_amplitude, simulate_receptions, smooth_csi_series,
    CaptureOptions,
};
use crate::catalog::DatasetSpec;
use crate::DatasetError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wifi_phy::channel::{ChannelModel, ChannelSnapshot};

/// Options controlling dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorOptions {
    /// Number of packets (CSI samples before drops) to simulate.
    pub samples: usize,
    /// Packet interval in seconds (the paper transmits 1000 packets/s).
    pub packet_interval_s: f64,
    /// Capture-pipeline parameters.
    pub capture: CaptureOptions,
    /// RNG seed, so datasets are reproducible.
    pub seed: u64,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        Self {
            samples: 1000,
            packet_interval_s: 1e-3,
            capture: CaptureOptions::default(),
            seed: 0x5B17,
        }
    }
}

impl GeneratorOptions {
    /// A small configuration for unit tests and quick demos.
    pub fn quick(samples: usize, seed: u64) -> Self {
        Self {
            samples,
            seed,
            ..Self::default()
        }
    }
}

/// A generated dataset: the retained (aligned, cleaned) CSI snapshots of one
/// Table I entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedDataset {
    /// The dataset specification this data realizes.
    pub spec: DatasetSpec,
    /// The cleaned CSI snapshots, in time order.
    pub snapshots: Vec<ChannelSnapshot>,
}

impl GeneratedDataset {
    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Splits the snapshots 8:1:1 into train/validation/test, as in the paper.
    pub fn split_train_val_test(
        &self,
    ) -> (&[ChannelSnapshot], &[ChannelSnapshot], &[ChannelSnapshot]) {
        let n = self.snapshots.len();
        let train_end = n * 8 / 10;
        let val_end = n * 9 / 10;
        (
            &self.snapshots[..train_end],
            &self.snapshots[train_end..val_end],
            &self.snapshots[val_end..],
        )
    }
}

/// Generates one dataset according to its specification and the options.
///
/// # Errors
/// Returns [`DatasetError::InvalidParameters`] when `samples` is zero.
pub fn generate_dataset(
    spec: &DatasetSpec,
    options: &GeneratorOptions,
) -> Result<GeneratedDataset, DatasetError> {
    if options.samples == 0 {
        return Err(DatasetError::InvalidParameters(
            "samples must be positive".into(),
        ));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(options.seed ^ (spec.id.0 as u64) << 32);
    let model = ChannelModel::from_config(spec.profile(), &spec.mimo);
    let mut process = model.process(&mut rng);

    // 1. Temporally correlated raw captures at the packet rate.
    let mut raw: Vec<ChannelSnapshot> = Vec::with_capacity(options.samples);
    for _ in 0..options.samples {
        raw.push(process.advance(options.packet_interval_s, &mut rng));
    }

    // 2. Per-station packet drops and sequence alignment.
    let receptions = simulate_receptions(
        spec.mimo.num_stations,
        options.samples,
        options.capture.drop_probability,
        &mut rng,
    );
    let kept = align_sequences(&receptions);
    let mut aligned: Vec<ChannelSnapshot> = kept.iter().map(|&i| raw[i].clone()).collect();

    // 3. Amplitude normalization per snapshot.
    if options.capture.normalize {
        for snap in aligned.iter_mut() {
            for user in 0..snap.num_users() {
                let cleaned: Vec<_> = snap
                    .csi(user)
                    .iter()
                    .map(normalize_by_mean_amplitude)
                    .collect();
                *snap.csi_mut(user) = cleaned;
            }
        }
    }

    // 4. Moving-median smoothing along time, per user and subcarrier.
    if options.capture.median_window > 1 && !aligned.is_empty() {
        let num_users = aligned[0].num_users();
        let subcarriers = aligned[0].subcarriers();
        for user in 0..num_users {
            for s in 0..subcarriers {
                let series: Vec<_> = aligned
                    .iter()
                    .map(|snap| snap.csi(user)[s].clone())
                    .collect();
                let smoothed = smooth_csi_series(&series, options.capture.median_window);
                for (snap, h) in aligned.iter_mut().zip(smoothed) {
                    snap.csi_mut(user)[s] = h;
                }
            }
        }
    }

    Ok(GeneratedDataset {
        spec: spec.clone(),
        snapshots: aligned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{dataset_by_id, dataset_for};
    use wifi_phy::ofdm::Bandwidth;

    #[test]
    fn generates_expected_shapes() {
        let spec = dataset_for(2, Bandwidth::Mhz20, "E1").unwrap();
        let data = generate_dataset(&spec, &GeneratorOptions::quick(50, 1)).unwrap();
        assert!(!data.is_empty());
        assert!(data.len() <= 50);
        let snap = &data.snapshots[0];
        assert_eq!(snap.num_users(), 2);
        assert_eq!(snap.subcarriers(), 56);
    }

    #[test]
    fn packet_drops_reduce_sample_count() {
        let spec = dataset_for(3, Bandwidth::Mhz20, "E2").unwrap();
        let mut opts = GeneratorOptions::quick(100, 2);
        opts.capture.drop_probability = 0.2;
        let data = generate_dataset(&spec, &opts).unwrap();
        assert!(
            data.len() < 100,
            "with 3 stations at 20% drop, alignment must discard packets"
        );
        assert!(data.len() > 20);
    }

    #[test]
    fn normalization_bounds_amplitude() {
        let spec = dataset_for(2, Bandwidth::Mhz20, "E2").unwrap();
        let data = generate_dataset(&spec, &GeneratorOptions::quick(30, 3)).unwrap();
        for snap in &data.snapshots {
            let power = snap.average_power();
            assert!(
                power > 0.1 && power < 10.0,
                "normalized power {power} out of range"
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = dataset_by_id(1).unwrap();
        let a = generate_dataset(&spec, &GeneratorOptions::quick(20, 7)).unwrap();
        let b = generate_dataset(&spec, &GeneratorOptions::quick(20, 7)).unwrap();
        assert_eq!(a, b);
        let c = generate_dataset(&spec, &GeneratorOptions::quick(20, 8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn split_ratios_are_8_1_1() {
        let spec = dataset_by_id(2).unwrap();
        let mut opts = GeneratorOptions::quick(40, 4);
        opts.capture.drop_probability = 0.0;
        let data = generate_dataset(&spec, &opts).unwrap();
        assert_eq!(data.len(), 40);
        let (train, val, test) = data.split_train_val_test();
        assert_eq!(train.len(), 32);
        assert_eq!(val.len(), 4);
        assert_eq!(test.len(), 4);
    }

    #[test]
    fn zero_samples_rejected() {
        let spec = dataset_by_id(1).unwrap();
        assert!(matches!(
            generate_dataset(&spec, &GeneratorOptions::quick(0, 1)),
            Err(DatasetError::InvalidParameters(_))
        ));
    }

    #[test]
    fn synthetic_160mhz_dataset_generates() {
        let spec = dataset_by_id(13).unwrap();
        let mut opts = GeneratorOptions::quick(5, 5);
        opts.capture.median_window = 1; // keep the test fast at 484 subcarriers
        let data = generate_dataset(&spec, &opts).unwrap();
        assert_eq!(data.snapshots[0].subcarriers(), 484);
    }
}
