//! The dataset catalog of Table I (D1–D15).

use crate::DatasetError;
use serde::{Deserialize, Serialize};
use wifi_phy::channel::EnvironmentProfile;
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

/// Identifier of one dataset of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DatasetId(pub u8);

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Whether a dataset corresponds to measured (Nexmon) or synthetic (MATLAB) data
/// in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Stands in for CSI measured with off-the-shelf routers.
    Measured,
    /// Stands in for the MATLAB WLAN-toolbox synthetic channels.
    Synthetic,
}

/// Specification of one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Table I identifier.
    pub id: DatasetId,
    /// Measured-equivalent or synthetic.
    pub kind: DatasetKind,
    /// MU-MIMO configuration.
    pub mimo: MimoConfig,
    /// Environment name ("E1", "E2" or "Model-B").
    pub environment: String,
    /// Number of CSI samples the paper collected for this dataset.
    pub samples: usize,
}

impl DatasetSpec {
    /// The environment profile used to generate this dataset.
    pub fn profile(&self) -> EnvironmentProfile {
        match self.environment.as_str() {
            "E1" => EnvironmentProfile::e1(),
            "E2" => EnvironmentProfile::e2(),
            _ => EnvironmentProfile::model_b(),
        }
    }

    /// A human-readable label such as `"D9: 2x2 @ 80 MHz in E1"`.
    pub fn label(&self) -> String {
        format!("{}: {} in {}", self.id, self.mimo.label(), self.environment)
    }
}

/// Builds the full Table I catalog: D1–D12 measured-equivalent (20/40/80 MHz ×
/// E1/E2 × 2x2/3x3) plus D13–D15 synthetic Model-B at 160 MHz (2x2/3x3/4x4),
/// 10 000 samples each.
pub fn dataset_catalog() -> Vec<DatasetSpec> {
    let mut out = Vec::with_capacity(15);
    let mut id = 1u8;
    for bandwidth in [Bandwidth::Mhz20, Bandwidth::Mhz40, Bandwidth::Mhz80] {
        for environment in ["E1", "E2"] {
            for order in [2usize, 3] {
                out.push(DatasetSpec {
                    id: DatasetId(id),
                    kind: DatasetKind::Measured,
                    mimo: MimoConfig::symmetric(order, bandwidth),
                    environment: environment.to_string(),
                    samples: 10_000,
                });
                id += 1;
            }
        }
    }
    for order in [2usize, 3, 4] {
        out.push(DatasetSpec {
            id: DatasetId(id),
            kind: DatasetKind::Synthetic,
            mimo: MimoConfig::symmetric(order, Bandwidth::Mhz160),
            environment: "Model-B".to_string(),
            samples: 10_000,
        });
        id += 1;
    }
    out
}

/// Looks up a dataset by its Table I identifier (1–15).
///
/// # Errors
/// Returns [`DatasetError::UnknownDataset`] for identifiers outside 1–15.
pub fn dataset_by_id(id: u8) -> Result<DatasetSpec, DatasetError> {
    dataset_catalog()
        .into_iter()
        .find(|d| d.id.0 == id)
        .ok_or_else(|| DatasetError::UnknownDataset(format!("D{id}")))
}

/// Finds the dataset matching a configuration and environment (the lookup used
/// by the cross-environment experiments: same configuration, other environment).
pub fn dataset_for(
    order: usize,
    bandwidth: Bandwidth,
    environment: &str,
) -> Result<DatasetSpec, DatasetError> {
    dataset_catalog()
        .into_iter()
        .find(|d| {
            d.mimo.nt == order && d.mimo.bandwidth == bandwidth && d.environment == environment
        })
        .ok_or_else(|| {
            DatasetError::UnknownDataset(format!("{order}x{order} @ {bandwidth} in {environment}"))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_fifteen_entries() {
        let catalog = dataset_catalog();
        assert_eq!(catalog.len(), 15);
        assert_eq!(
            catalog
                .iter()
                .filter(|d| d.kind == DatasetKind::Measured)
                .count(),
            12
        );
        assert_eq!(
            catalog
                .iter()
                .filter(|d| d.kind == DatasetKind::Synthetic)
                .count(),
            3
        );
        // Total sample budget matches the paper's 120,000 measured + 30,000 synthetic.
        let measured: usize = catalog
            .iter()
            .filter(|d| d.kind == DatasetKind::Measured)
            .map(|d| d.samples)
            .sum();
        assert_eq!(measured, 120_000);
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let catalog = dataset_catalog();
        for (i, d) in catalog.iter().enumerate() {
            assert_eq!(d.id.0 as usize, i + 1);
        }
    }

    #[test]
    fn lookup_by_id_and_config() {
        let d9ish = dataset_for(2, Bandwidth::Mhz80, "E1").unwrap();
        assert_eq!(d9ish.mimo.bandwidth, Bandwidth::Mhz80);
        assert_eq!(d9ish.environment, "E1");
        assert!(dataset_by_id(1).is_ok());
        assert!(dataset_by_id(15).is_ok());
        assert!(dataset_by_id(16).is_err());
        assert!(dataset_for(5, Bandwidth::Mhz20, "E1").is_err());
    }

    #[test]
    fn synthetic_datasets_are_160mhz() {
        for d in dataset_catalog()
            .iter()
            .filter(|d| d.kind == DatasetKind::Synthetic)
        {
            assert_eq!(d.mimo.bandwidth, Bandwidth::Mhz160);
            assert_eq!(d.environment, "Model-B");
            assert_eq!(d.profile().name, "Model-B");
        }
    }

    #[test]
    fn labels_and_profiles() {
        let d = dataset_by_id(1).unwrap();
        assert!(d.label().starts_with("D1:"));
        assert_eq!(d.profile().name, d.environment);
    }
}
