//! Counting global allocator and `assert_no_alloc` scopes.
//!
//! The serving stack claims zero steady-state heap traffic on its hot paths
//! (barrier ingest→decode→reconstruct, streaming micro-batch close, the
//! fused tail, int8 serving). Each sentinel test binary registers
//! [`CountingAlloc`] as its `#[global_allocator]`:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: splitbeam_analysis::alloc_sentinel::CountingAlloc =
//!     splitbeam_analysis::alloc_sentinel::CountingAlloc;
//! ```
//!
//! and wraps the hot path in [`assert_no_alloc`] after a warm-up round has
//! populated every pool. The counters are process-global, so a sentinel
//! binary must keep exactly one `#[test]` (the libtest harness itself runs
//! tests on freshly spawned threads whose stacks and channels allocate) and
//! CI pins `RAYON_NUM_THREADS=1` so no worker thread is mid-flight during a
//! scope.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Pass-through to the system allocator that counts every call. Counting
/// must never allocate or panic — the counters are plain atomics.
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the added atomic increments have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; `layout` is the caller's valid layout.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; `layout` is the caller's valid layout.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; `ptr`/`layout` come from a prior
        // `alloc` with the same layout, per the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; caller guarantees `ptr`/`layout`
        // describe a live allocation and `new_size` is valid.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    pub allocs: u64,
    pub reallocs: u64,
    pub deallocs: u64,
    pub bytes: u64,
}

pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::SeqCst),
        reallocs: REALLOCS.load(Ordering::SeqCst),
        deallocs: DEALLOCS.load(Ordering::SeqCst),
        bytes: BYTES.load(Ordering::SeqCst),
    }
}

/// Run `f` and panic if it allocated. New allocations and reallocations
/// both count (a growing `Vec` on a "zero-alloc" path is exactly the
/// regression this guards against); frees alone are permitted.
///
/// Meaningful only in a binary whose `#[global_allocator]` is
/// [`CountingAlloc`]; under any other allocator the counters never move and
/// the scope passes vacuously — `assert_counting` guards sentinel tests
/// against that misconfiguration.
pub fn assert_no_alloc<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let before = stats();
    let result = f();
    let after = stats();
    let allocs = after.allocs - before.allocs;
    let reallocs = after.reallocs - before.reallocs;
    assert!(
        allocs == 0 && reallocs == 0,
        "hot path `{label}` allocated: {allocs} allocation(s), {reallocs} reallocation(s), \
         {} byte(s) — the zero-steady-state-allocation invariant is broken",
        after.bytes - before.bytes,
    );
    result
}

/// Assert that [`CountingAlloc`] really is this binary's global allocator.
/// Call once at the start of every sentinel test so a missing
/// `#[global_allocator]` line fails loudly instead of passing vacuously.
pub fn assert_counting() {
    let before = stats();
    let v: Vec<u8> = Vec::with_capacity(4096);
    drop(v);
    let after = stats();
    assert!(
        after.allocs > before.allocs,
        "CountingAlloc is not registered as #[global_allocator] in this binary; \
         the sentinel would pass vacuously"
    );
}
