//! Repo-invariant lint runner: `cargo run -p splitbeam-analysis --bin lint`.
//!
//! Exit codes: 0 clean, 1 violations or stale allowlist entries, 2 setup
//! errors (bad allowlist syntax, unreadable tree).

use std::path::PathBuf;
use std::process::ExitCode;

use splitbeam_analysis::lint;

fn find_repo_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: lint [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().and_then(find_repo_root)) {
        Some(r) => r,
        None => {
            eprintln!("lint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    let allowlist_path = root.join("lint_allowlist.txt");
    let allow = if allowlist_path.is_file() {
        match std::fs::read_to_string(&allowlist_path) {
            Ok(text) => match lint::parse_allowlist(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("lint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("lint: reading {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        lint::Allowlist::default()
    };

    let report = match lint::lint_repo(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    for e in &report.stale_allowlist {
        println!(
            "stale allowlist entry (suppressed nothing): {}|{}|{}|{}",
            e.rule, e.path, e.needle, e.reason
        );
    }
    println!(
        "lint: {} file(s) scanned, {} violation(s), {} stale allowlist entr(ies)",
        report.files_scanned,
        report.violations.len(),
        report.stale_allowlist.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
