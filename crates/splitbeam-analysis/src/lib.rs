//! Correctness tooling for the SplitBeam workspace.
//!
//! Three layers, each turning a README claim into a mechanical check:
//!
//! - [`lint`]: a source-scanning invariant pass (`cargo run -p
//!   splitbeam-analysis --bin lint`) enforcing the repo's safety and
//!   layering rules — SAFETY comments on every `unsafe` block, no wall
//!   clock in virtual-time crates, centralized `SPLITBEAM_*` env access,
//!   and no `unwrap`/`expect` on the serving ingest path.
//! - [`alloc_sentinel`]: a counting global allocator and
//!   `assert_no_alloc` scopes that integration tests wrap around the
//!   serving hot paths, so the zero-steady-state-allocation claims fail CI
//!   if regressed.
//! - The model-check suite (`tests/ring_model.rs`, built under
//!   `RUSTFLAGS="--cfg splitbeam_model"`) which exhaustively explores the
//!   MPMC ring through the `loom` facade.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc_sentinel;
pub mod lint;
