//! Repo-invariant lint pass.
//!
//! A std-only source scanner (no syn, no rustc — the container is offline)
//! that enforces the workspace's cross-cutting rules on non-test code:
//!
//! - **`safety-comment`**: every `unsafe` block and `unsafe impl` carries a
//!   `// SAFETY:` comment on the same line or within the few lines above.
//! - **`deny-unsafe-op`**: any crate whose non-test sources contain
//!   `unsafe` must set `#![deny(unsafe_op_in_unsafe_fn)]` at its root.
//! - **`wall-clock`**: no `std::time::Instant`/`SystemTime` in
//!   `splitbeam-hwsim` or `splitbeam-serve` — those crates run on virtual
//!   time and a wall-clock read is always a layering bug.
//! - **`env-access`**: `SPLITBEAM_*` environment variables are read only
//!   through `mimo_math::env`; a raw `env::var("SPLITBEAM_…")` anywhere
//!   else bypasses the central trim/parse policy.
//! - **`ingest-unwrap`**: no `.unwrap()`/`.expect(` on the serving ingest
//!   path (`server.rs`, `session.rs`, `shard.rs`, `ring.rs`, `timing.rs`,
//!   `slab.rs`, `fleet.rs`) — a malformed frame must degrade, never abort
//!   the shard.
//! - **`serve-unordered-map`**: no `HashMap`/`HashSet` in `splitbeam-serve`
//!   sources — round-close and summary outputs are bit-reproducibility
//!   contracts, and hash iteration order is a seed away from breaking them.
//!   Keyed state uses `BTreeMap` or the generational session slab.
//!
//! Vetted exceptions live in `lint_allowlist.txt` at the repo root, one
//! `rule|path|needle|reason` per line; entries that no longer suppress
//! anything are themselves reported (stale) so the file cannot rot.
//!
//! The scanner works on a "code view" of each file — comments and string
//! literals blanked out, raw strings and char-vs-lifetime quotes handled —
//! and skips test code: files under `tests/`/`benches/` and regions under
//! `#[cfg(test)]`.

use std::fmt;
use std::io;
use std::path::Path;

pub const RULE_SAFETY_COMMENT: &str = "safety-comment";
pub const RULE_DENY_UNSAFE_OP: &str = "deny-unsafe-op";
pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_ENV_ACCESS: &str = "env-access";
pub const RULE_INGEST_UNWRAP: &str = "ingest-unwrap";
pub const RULE_SERVE_UNORDERED_MAP: &str = "serve-unordered-map";

/// How many lines above an `unsafe` site a `SAFETY:` comment may sit.
const SAFETY_LOOKBACK: usize = 4;

/// Files covered by the `ingest-unwrap` rule: the serving data path from
/// wire frame to round close.
const INGEST_PATH_FILES: [&str; 7] = [
    "crates/splitbeam-serve/src/server.rs",
    "crates/splitbeam-serve/src/session.rs",
    "crates/splitbeam-serve/src/shard.rs",
    "crates/splitbeam-serve/src/ring.rs",
    "crates/splitbeam-serve/src/timing.rs",
    "crates/splitbeam-serve/src/slab.rs",
    "crates/splitbeam-serve/src/fleet.rs",
];

/// Sources covered by the `serve-unordered-map` rule: everything in the
/// serving crate, whose round-close/summary outputs are deterministic
/// contracts.
const ORDERED_STATE_PREFIX: &str = "crates/splitbeam-serve/src/";

/// Crates pinned to virtual time by the `wall-clock` rule.
const VIRTUAL_TIME_PREFIXES: [&str; 2] =
    ["crates/splitbeam-hwsim/src/", "crates/splitbeam-serve/src/"];

/// The one blessed site for raw `SPLITBEAM_*` env reads.
const ENV_MODULE: &str = "crates/mimo-math/src/env.rs";

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based; 0 for whole-file findings.
    pub line: usize,
    pub excerpt: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )?;
        if !self.excerpt.is_empty() {
            write!(f, "\n    {}", self.excerpt)?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    /// Substring the flagged line must contain; `*` matches any line.
    pub needle: String,
    pub reason: String,
}

impl AllowEntry {
    fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule
            && self.path == v.path
            && (self.needle == "*" || v.excerpt.contains(&self.needle))
    }
}

#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

/// Parse the `rule|path|needle|reason` allowlist format. `#` comments and
/// blank lines are ignored; every field including the reason is mandatory —
/// an exception nobody can justify is not an exception.
pub fn parse_allowlist(text: &str) -> Result<Allowlist, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.splitn(4, '|').collect();
        if fields.len() != 4 {
            return Err(format!(
                "allowlist line {}: expected `rule|path|needle|reason`, got `{line}`",
                idx + 1
            ));
        }
        let entry = AllowEntry {
            rule: fields[0].trim().to_string(),
            path: fields[1].trim().to_string(),
            needle: fields[2].trim().to_string(),
            reason: fields[3].trim().to_string(),
        };
        if entry.rule.is_empty() || entry.path.is_empty() || entry.needle.is_empty() {
            return Err(format!(
                "allowlist line {}: empty field in `{line}`",
                idx + 1
            ));
        }
        if entry.reason.len() < 10 {
            return Err(format!(
                "allowlist line {}: reason `{}` is too thin to justify an exception",
                idx + 1,
                entry.reason
            ));
        }
        entries.push(entry);
    }
    Ok(Allowlist { entries })
}

pub fn format_allowlist(list: &Allowlist) -> String {
    let mut out = String::new();
    for e in &list.entries {
        out.push_str(&format!(
            "{}|{}|{}|{}\n",
            e.rule, e.path, e.needle, e.reason
        ));
    }
    out
}

#[derive(Debug)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    /// Allowlist entries that suppressed nothing this run.
    pub stale_allowlist: Vec<AllowEntry>,
    pub files_scanned: usize,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allowlist.is_empty()
    }
}

/// Lint in-memory sources (`(repo-relative path, contents)` pairs). This is
/// the whole engine; [`lint_repo`] merely loads files into it, so fixture
/// tests exercise exactly the production path.
pub fn lint_sources(sources: &[(String, String)], allow: &Allowlist) -> LintReport {
    let mut raw_violations = Vec::new();
    for (rel, text) in sources {
        scan_file(rel, text, &mut raw_violations);
    }
    check_crate_roots(sources, &mut raw_violations);

    let mut used = vec![false; allow.entries.len()];
    let mut violations = Vec::new();
    for v in raw_violations {
        let mut suppressed = false;
        for (i, e) in allow.entries.iter().enumerate() {
            if e.matches(&v) {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            violations.push(v);
        }
    }
    let stale_allowlist = allow
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    LintReport {
        violations,
        stale_allowlist,
        files_scanned: sources.len(),
    }
}

/// Walk the repo, load every non-fixture `.rs` file, and lint it.
pub fn lint_repo(root: &Path, allow: &Allowlist) -> io::Result<LintReport> {
    let mut sources = Vec::new();
    collect_rs_files(root, root, &mut sources)?;
    sources.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(lint_sources(&sources, allow))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` trees hold sources with *deliberate* violations for
            // the lint's own tests; they are data, not code.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            out.push((rel, text));
        }
    }
    Ok(())
}

fn is_test_file(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
}

fn scan_file(rel: &str, text: &str, out: &mut Vec<Violation>) {
    if is_test_file(rel) {
        return;
    }
    let raw: Vec<&str> = text.lines().collect();
    let code = code_view(text);
    let code: Vec<&str> = code_lines(&code, raw.len());
    let in_test = test_region_mask(&code);

    for i in 0..raw.len() {
        if in_test[i] {
            continue;
        }
        check_wall_clock(rel, i, raw[i], code[i], out);
        check_env_access(rel, i, &raw, code[i], out);
        check_ingest_unwrap(rel, i, raw[i], code[i], out);
        check_unordered_map(rel, i, raw[i], code[i], out);
    }
    check_safety_comments(rel, &raw, &code, &in_test, out);
}

/// Crate-level pass: a crate root (`src/lib.rs` or `src/main.rs`) must deny
/// `unsafe_op_in_unsafe_fn` when any non-test source in the crate uses
/// `unsafe`.
fn check_crate_roots(sources: &[(String, String)], out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    // crate key = path prefix up to and including "src/"
    let mut crates: BTreeMap<String, (Option<usize>, bool)> = BTreeMap::new();
    for (idx, (rel, text)) in sources.iter().enumerate() {
        let Some(pos) = rel.find("src/") else {
            continue;
        };
        let key = rel[..pos + 4].to_string();
        let entry = crates.entry(key.clone()).or_insert((None, false));
        if rel == &format!("{key}lib.rs") || rel == &format!("{key}main.rs") {
            entry.0 = Some(idx);
        }
        if !is_test_file(rel) && !entry.1 {
            let code = code_view(text);
            let code_ls: Vec<&str> = code_lines(&code, text.lines().count());
            let mask = test_region_mask(&code_ls);
            for (i, line) in code_ls.iter().enumerate() {
                if !mask[i] && has_word(line, "unsafe") {
                    entry.1 = true;
                    break;
                }
            }
        }
    }
    for (key, (root_idx, has_unsafe)) in crates {
        if !has_unsafe {
            continue;
        }
        let Some(idx) = root_idx else { continue };
        let (rel, text) = &sources[idx];
        if !text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
            out.push(Violation {
                rule: RULE_DENY_UNSAFE_OP,
                path: rel.clone(),
                line: 1,
                excerpt: String::new(),
                message: format!(
                    "crate `{key}` contains unsafe code but its root does not declare \
                     #![deny(unsafe_op_in_unsafe_fn)]"
                ),
            });
        }
    }
}

fn check_wall_clock(rel: &str, i: usize, raw: &str, code: &str, out: &mut Vec<Violation>) {
    if !VIRTUAL_TIME_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    for token in ["Instant", "SystemTime"] {
        if has_word(code, token) {
            out.push(Violation {
                rule: RULE_WALL_CLOCK,
                path: rel.to_string(),
                line: i + 1,
                excerpt: excerpt(raw),
                message: format!(
                    "`{token}` in a virtual-time crate — derive time from the event loop, \
                     not the host clock"
                ),
            });
        }
    }
}

fn check_env_access(rel: &str, i: usize, raw: &[&str], code: &str, out: &mut Vec<Violation>) {
    if rel == ENV_MODULE {
        return;
    }
    if !code.contains("env::var") {
        return;
    }
    // The variable name may sit on the next line after rustfmt wrapping.
    let window = raw[i..raw.len().min(i + 3)].join("\n");
    if window.contains("SPLITBEAM") {
        out.push(Violation {
            rule: RULE_ENV_ACCESS,
            path: rel.to_string(),
            line: i + 1,
            excerpt: excerpt(raw[i]),
            message: "raw SPLITBEAM_* env read — go through mimo_math::env so trimming and \
                      parse policy stay centralized"
                .to_string(),
        });
    }
}

fn check_ingest_unwrap(rel: &str, i: usize, raw: &str, code: &str, out: &mut Vec<Violation>) {
    if !INGEST_PATH_FILES.contains(&rel) {
        return;
    }
    for token in [".unwrap()", ".expect("] {
        if code.contains(token) {
            out.push(Violation {
                rule: RULE_INGEST_UNWRAP,
                path: rel.to_string(),
                line: i + 1,
                excerpt: excerpt(raw),
                message: format!(
                    "`{token}` on the serving ingest path — malformed input must degrade, \
                     not abort the shard",
                ),
            });
        }
    }
}

fn check_unordered_map(rel: &str, i: usize, raw: &str, code: &str, out: &mut Vec<Violation>) {
    if !rel.starts_with(ORDERED_STATE_PREFIX) {
        return;
    }
    for token in ["HashMap", "HashSet"] {
        if has_word(code, token) {
            out.push(Violation {
                rule: RULE_SERVE_UNORDERED_MAP,
                path: rel.to_string(),
                line: i + 1,
                excerpt: excerpt(raw),
                message: format!(
                    "`{token}` in the serving crate — hash iteration order can leak into \
                     round-close/summary output; use BTreeMap or the session slab",
                ),
            });
        }
    }
}

fn check_safety_comments(
    rel: &str,
    raw: &[&str],
    code: &[&str],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    for (i, line) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        for site in unsafe_sites_in_line(line) {
            let lo = i.saturating_sub(SAFETY_LOOKBACK);
            let documented = raw[lo..=i].iter().any(|l| l.contains("SAFETY:"));
            if !documented {
                out.push(Violation {
                    rule: RULE_SAFETY_COMMENT,
                    path: rel.to_string(),
                    line: i + 1,
                    excerpt: excerpt(raw[i]),
                    message: format!("{site} without a `// SAFETY:` comment on or just above it"),
                });
            }
        }
    }
}

/// `unsafe` sites needing a SAFETY comment on this code-view line: `unsafe`
/// blocks and `unsafe impl`s. `unsafe fn`/`unsafe extern`/`unsafe trait`
/// declarations document their contract in `# Safety` rustdoc instead.
fn unsafe_sites_in_line(code: &str) -> Vec<&'static str> {
    let mut sites = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            let next = after.trim_start();
            if next.is_empty() || next.starts_with('{') {
                // `unsafe` at end of line counts as a block opener ("unsafe\n{").
                sites.push("`unsafe` block");
            } else if next.starts_with("impl") {
                sites.push("`unsafe impl`");
            }
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    sites
}

fn excerpt(raw: &str) -> String {
    let t = raw.trim();
    if t.len() > 160 {
        format!(
            "{}…",
            &t[..t
                .char_indices()
                .take(159)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    } else {
        t.to_string()
    }
}

fn has_word(haystack: &str, word: &str) -> bool {
    let mut rest = haystack;
    while let Some(pos) = rest.find(word) {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + word.len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + word.len()..];
    }
    false
}

/// Split the blanked code view back into lines, padded to `n` lines.
fn code_lines(code: &str, n: usize) -> Vec<&str> {
    let mut v: Vec<&str> = code.lines().collect();
    while v.len() < n {
        v.push("");
    }
    v
}

/// Blank out comments and string/char literal contents, preserving line
/// structure, so token scans don't trip on prose. Handles nested block
/// comments, raw strings (`r#"…"#`), and the char-literal/lifetime
/// ambiguity.
fn code_view(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let (consumed, blanked) = blank_raw_string(bytes, i);
                out.extend_from_slice(&blanked);
                i += consumed;
            }
            b'\'' => {
                // Char literal vs lifetime: `'x'` / `'\n'` are literals,
                // `'a` followed by anything but `'` is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    out.extend_from_slice(b"' ");
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < bytes.len() {
                        out.push(b'\'');
                        i += 1;
                    }
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    out.extend_from_slice(b"'  ");
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"`, `r#"`, `r##"`, … (the `b` of byte raw strings is consumed as a
    // normal identifier char before we get here, which is fine).
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
        && (i == 0
            || !(bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'b')
                && bytes[i - 1] != b'_')
}

fn blank_raw_string(bytes: &[u8], start: usize) -> (usize, Vec<u8>) {
    let mut hashes = 0;
    let mut i = start + 1;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let mut out = vec![b' '; i - start];
    loop {
        match bytes.get(i) {
            None => break,
            Some(&b'"') => {
                let mut k = 0;
                while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    out.extend(std::iter::repeat_n(b' ', 1 + hashes));
                    i += 1 + hashes;
                    break;
                }
                out.push(b' ');
                i += 1;
            }
            Some(&b'\n') => {
                out.push(b'\n');
                i += 1;
            }
            Some(_) => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    (i - start, out)
}

/// Mark lines inside `#[cfg(test)] mod … { … }` regions (and the lone item
/// under a `#[cfg(test)]` that isn't a mod).
fn test_region_mask(code: &[&str]) -> Vec<bool> {
    let n = code.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if !code[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Find the annotated item: skip further attributes.
        let mut j = i;
        if !code[i].contains("mod ") {
            j = i + 1;
            while j < n {
                let t = code[j].trim_start();
                if t.is_empty() || t.starts_with("#[") {
                    j += 1;
                } else {
                    break;
                }
            }
        }
        if j >= n || !code[j].contains("mod ") {
            // Single non-mod item (a `use`, a helper fn): mask through the
            // end of its braces if any, else just its line.
            let end = brace_span(code, j.min(n - 1)).unwrap_or(j.min(n - 1));
            for m in mask.iter_mut().take(end.min(n - 1) + 1).skip(i) {
                *m = true;
            }
            i = end.min(n - 1) + 1;
            continue;
        }
        let end = brace_span(code, j).unwrap_or(n - 1);
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Line index of the `}` matching the first `{` at or after line `start`.
fn brace_span(code: &[&str], start: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut opened = false;
    for (i, line) in code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        // A `#[cfg(test)] use …;` item has no braces at all.
        if !opened && i > start {
            return None;
        }
    }
    None
}
