//! Exhaustive model checking of the serving ring.
//!
//! Build and run with `RUSTFLAGS="--cfg splitbeam_model" cargo test -p
//! splitbeam-analysis --test ring_model --release`; without the cfg this
//! file compiles to nothing.
//!
//! Each scenario explores *every* interleaving (modulo sleep-set
//! equivalence) of small producer/consumer configurations of
//! [`splitbeam_serve::Ring`], checking:
//!
//! - **exactly-once delivery**: the multiset of popped values equals the
//!   multiset of pushed values, and the ring drains empty;
//! - **no slot reuse before sequence release**: premature reuse shows up
//!   either as a cell data race (caught by the checker's vector clocks) or
//!   as a duplicated/lost value (caught by the exactly-once check);
//! - **acquire/release orderings are load-bearing**: the negative tests
//!   weaken each Release store through `ring::model_hooks` and assert the
//!   exploration reports a data race.
#![cfg(splitbeam_model)]

use std::sync::{Arc, Mutex, MutexGuard};

use loom::model::{explore, Config, Report, Scenario};
use splitbeam_serve::ring::{model_hooks, Ring};

/// The ordering-mutation hooks are process-global, so every test in this
/// binary serializes on one lock — otherwise a negative test could weaken
/// the orderings underneath a concurrently running positive test.
fn hook_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn cfg() -> Config {
    Config {
        max_executions: 40_000_000,
        max_steps: 3_000,
    }
}

/// Explore `counts.len()` producers × `consumers` over a ring of
/// `capacity`, producer `p` pushing `counts[p]` tagged values, and assert
/// exactly-once delivery on every complete interleaving.
fn explore_ring(counts: &'static [u64], consumers: usize, capacity: usize) -> Report {
    let total: u64 = counts.iter().sum();
    // Every consumer pops a fixed quota; quotas sum to the total pushed, so
    // termination never depends on the schedule.
    let base = total as usize / consumers;
    let extra = total as usize % consumers;
    explore(&cfg(), move || {
        let ring: Arc<Ring<u64>> = Arc::new(Ring::with_capacity(capacity));
        let received = Arc::new(Mutex::new(Vec::new()));
        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for (p, &per_producer) in counts.iter().enumerate() {
            let p = p as u64;
            let ring = Arc::clone(&ring);
            threads.push(Box::new(move || {
                for i in 0..per_producer {
                    let mut value = (p << 32) | i;
                    loop {
                        match ring.push(value) {
                            Ok(()) => break,
                            Err(back) => {
                                value = back;
                                // Full: progress needs a consumer's release
                                // store, so spin-park is sound here.
                                loom::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        for c in 0..consumers {
            let quota = base + usize::from(c < extra);
            let ring = Arc::clone(&ring);
            let received = Arc::clone(&received);
            threads.push(Box::new(move || {
                let mut got = Vec::with_capacity(quota);
                for _ in 0..quota {
                    loop {
                        match ring.pop() {
                            Some(v) => {
                                got.push(v);
                                break;
                            }
                            // Empty: progress needs a producer's publish
                            // store, so spin-park is sound here.
                            None => loom::thread::yield_now(),
                        }
                    }
                }
                received
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(got);
            }));
        }
        let check = {
            let ring = Arc::clone(&ring);
            let received = Arc::clone(&received);
            Box::new(move || {
                let mut got = received.lock().unwrap_or_else(|p| p.into_inner()).clone();
                got.sort_unstable();
                let mut want: Vec<u64> = counts
                    .iter()
                    .enumerate()
                    .flat_map(|(p, &n)| (0..n).map(move |i| ((p as u64) << 32) | i))
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "delivery was not exactly-once");
                assert!(ring.pop().is_none(), "ring did not drain empty");
            }) as Box<dyn FnOnce()>
        };
        Scenario { threads, check }
    })
}

fn assert_clean(report: Report, label: &str) {
    if let Some(f) = &report.failure {
        panic!("{label}: model checker found a bug:\n{f}");
    }
    assert!(
        report.complete,
        "{label}: exploration hit the execution budget before exhausting \
         the schedule tree ({} executions)",
        report.executions
    );
    assert!(
        report.executions > 1,
        "{label}: expected more than one interleaving"
    );
    eprintln!(
        "{label}: exhaustive — {} executions, {} steps",
        report.executions, report.steps
    );
}

#[test]
fn spsc_capacity2_three_values_wraps_cleanly() {
    let _guard = hook_lock();
    // Three values through a capacity-2 ring: exercises the full-ring wait
    // and the second-lap slot reuse.
    assert_clean(explore_ring(&[3], 1, 2), "1p1c cap2 n3");
}

#[test]
fn two_producers_one_consumer_full_ring_pressure() {
    let _guard = hook_lock();
    assert_clean(explore_ring(&[2, 1], 1, 2), "2p1c cap2 n[2,1]");
}

#[test]
fn one_producer_two_consumers() {
    let _guard = hook_lock();
    assert_clean(explore_ring(&[2], 2, 2), "1p2c cap2 n2");
}

#[test]
fn two_producers_two_consumers_capacity2() {
    let _guard = hook_lock();
    assert_clean(explore_ring(&[1, 1], 2, 2), "2p2c cap2 n1");
}

#[test]
fn two_producers_two_consumers_capacity4() {
    let _guard = hook_lock();
    assert_clean(explore_ring(&[1, 1], 2, 4), "2p2c cap4 n1");
}

/// Negative test: downgrading the producer's slot-publish store from
/// Release to Relaxed severs the happens-before edge between the cell
/// write and the consumer's read — the checker must report a data race.
#[test]
fn weakened_publish_ordering_is_caught() {
    let _guard = hook_lock();
    model_hooks::set_weaken_publish(true);
    let report = explore_ring(&[1], 1, 2);
    model_hooks::set_weaken_publish(false);
    let failure = report
        .failure
        .expect("a relaxed publish store must be detected");
    assert!(
        failure.message.contains("data race"),
        "expected a data race, got: {failure}"
    );
}

/// Negative test: downgrading the consumer's slot-release store severs the
/// edge between the first-lap read and the second-lap producer write into
/// the same slot (needs 3 values through capacity 2 to revisit a slot).
#[test]
fn weakened_release_ordering_is_caught() {
    let _guard = hook_lock();
    model_hooks::set_weaken_release(true);
    let report = explore_ring(&[3], 1, 2);
    model_hooks::set_weaken_release(false);
    let failure = report
        .failure
        .expect("a relaxed slot-release store must be detected");
    assert!(
        failure.message.contains("data race"),
        "expected a data race, got: {failure}"
    );
}
