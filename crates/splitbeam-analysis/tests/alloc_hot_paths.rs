//! Allocation sentinel over the serving hot paths.
//!
//! The serving stack claims zero steady-state heap traffic once its pools
//! are warm: barrier ingest→round close, streaming ingest→micro-batch
//! close→round close, the fused batched tail, and the int8 tail. This
//! binary registers the counting allocator, warms each path until every
//! arena/scratch/cache has reached its steady shape, then re-runs the same
//! operations under [`assert_no_alloc`].
//!
//! One `#[test]` only: the counters are process-global and the libtest
//! harness spawns an allocating thread per test. Run with
//! `RAYON_NUM_THREADS=1` so the rayon shim stays serial — a `thread::scope`
//! spawn inside a scope would be charged to the hot path.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::fused::{TailScratch, TailWeights};
use splitbeam::model::SplitBeamModel;
use splitbeam::wire;
use splitbeam_analysis::alloc_sentinel::{assert_counting, assert_no_alloc, CountingAlloc};
use splitbeam_serve::server::ApServer;
use splitbeam_serve::timing::FrameStamp;
use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARM_ROUNDS: u64 = 3;
const BITS: u8 = 4;

fn small_model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

fn wire_frame(model: &SplitBeamModel, seed: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    let csi: Vec<f32> = channel
        .sample(&mut rng)
        .csi_real_vector(0)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let payload = model.compress_quantized(&csi, BITS).unwrap();
    wire::encode_feedback(&payload).unwrap()
}

fn barrier_server(model: &SplitBeamModel, weights: TailWeights, stations: u64) -> ApServer {
    let mut server = ApServer::new();
    server.set_tail_weights(weights);
    let key = server.register_model(model.clone());
    for id in 0..stations {
        server.register_station(id, key, BITS).unwrap();
    }
    server
}

/// Barrier serving: after warm-up rounds have sized the decode buffer, the
/// round arena, and the tail scratch, a full ingest + round close must not
/// touch the heap.
fn barrier_path(model: &SplitBeamModel, weights: TailWeights, label_prefix: &str) {
    let frames: Vec<Vec<u8>> = (0..2).map(|s| wire_frame(model, 100 + s)).collect();
    let mut server = barrier_server(model, weights, frames.len() as u64);
    for _ in 0..WARM_ROUNDS {
        for (id, frame) in frames.iter().enumerate() {
            server.ingest_wire(id as u64, frame).unwrap();
        }
        server.process_round().unwrap();
    }
    assert_no_alloc(&format!("{label_prefix}: wire ingest"), || {
        for (id, frame) in frames.iter().enumerate() {
            server.ingest_wire(id as u64, frame).unwrap();
        }
    });
    let summary = assert_no_alloc(&format!("{label_prefix}: round close"), || {
        server.process_round().unwrap()
    });
    assert_eq!(summary.served, frames.len());
}

/// Streaming serving: ingest with a stamp, force a watermark micro-close,
/// then close the round — all allocation-free once warm.
fn streaming_path(model: &SplitBeamModel) {
    let frame = wire_frame(model, 200);
    let mut server = barrier_server(model, TailWeights::F32, 1);
    server.set_streaming(true);
    // The default deadline policy (eq. 7d) gives each frame a 10 ms service
    // budget from its sounding birth; 20 ms rounds keep virtual time
    // monotone across the watermark advances.
    let round_ns: u64 = 20_000_000;
    let budget_ns: u64 = 10_000_000;
    let run = |server: &mut ApServer, round: u64| {
        let base = round * round_ns;
        let stamp = FrameStamp {
            arrival_ns: base,
            ..FrameStamp::default()
        };
        server.ingest_wire_at(0, &frame, stamp).unwrap();
        // A watermark the frame's deadline can no longer outrun forces the
        // micro-batch close here rather than at the round barrier.
        server.advance_watermark(base + budget_ns, budget_ns / 10, None);
        let summary = server.process_round_streaming(None).unwrap();
        assert_eq!(summary.served, 1);
        assert_eq!(
            server.last_micro_closes(),
            1,
            "watermark did not micro-close"
        );
    };
    for round in 0..WARM_ROUNDS {
        run(&mut server, round);
    }
    assert_no_alloc("streaming: ingest + watermark close + round close", || {
        run(&mut server, WARM_ROUNDS);
    });
}

/// The fused batched tail driven directly: a reused [`TailScratch`] absorbs
/// every intermediate, so repeat reconstructions are allocation-free.
fn fused_tail_path(model: &SplitBeamModel) {
    let mut rng = ChaCha8Rng::seed_from_u64(300);
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    let payloads: Vec<_> = (0..3)
        .map(|_| {
            let csi: Vec<f32> = channel
                .sample(&mut rng)
                .csi_real_vector(0)
                .into_iter()
                .map(|v| v as f32)
                .collect();
            model.compress_quantized(&csi, BITS).unwrap()
        })
        .collect();
    let refs: Vec<&_> = payloads.iter().collect();
    let mut scratch = TailScratch::new();
    for _ in 0..WARM_ROUNDS {
        model
            .reconstruct_quantized_batch_into(&refs, &mut scratch)
            .unwrap();
    }
    assert_no_alloc("fused tail: batched reconstruct into warm scratch", || {
        let out = model
            .reconstruct_quantized_batch_into(&refs, &mut scratch)
            .unwrap();
        assert_eq!(out.rows(), payloads.len());
    });
}

#[test]
fn hot_paths_do_not_allocate_after_warmup() {
    assert_counting();
    let model = small_model(1);
    // Force kernel selection/autotune (which allocates probe buffers) before
    // any sentinel scope opens.
    fused_tail_path(&model);
    barrier_path(&model, TailWeights::F32, "barrier f32");
    barrier_path(&model, TailWeights::Int8, "barrier int8");
    streaming_path(&model);
}
