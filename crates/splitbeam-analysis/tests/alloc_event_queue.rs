//! Allocation sentinel over the event engine's steady state.
//!
//! The timer-wheel scheduler claims zero steady-state heap traffic once its
//! slot vectors and ready heap are warm: a sliding window of schedules and
//! pops (the fleet's per-round pattern) must recycle slot capacity across
//! wheel laps instead of growing it. The binary-heap backend makes the same
//! claim once its arena is at peak size. This binary registers the counting
//! allocator, warms both backends over the exact horizon pattern the
//! assertion replays, then re-runs it under [`assert_no_alloc`].
//!
//! One `#[test]` only: the counters are process-global and the libtest
//! harness spawns an allocating thread per test. Run with
//! `RAYON_NUM_THREADS=1`.

use splitbeam_analysis::alloc_sentinel::{assert_counting, assert_no_alloc, CountingAlloc};
use splitbeam_hwsim::EventQueue;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Pending events held in the window; sized so the wheel spans several
/// levels (delays up to WINDOW * STRIDE_NS cover multiple slot widths).
const WINDOW: usize = 512;
/// Virtual time between successive schedules; coarse enough to spread the
/// window across wheel levels rather than one slot.
const STRIDE_NS: u64 = 40_000;
const WARM_STEPS: usize = 6 * WINDOW;
const HOT_STEPS: usize = 2 * WINDOW;

/// One deterministic sliding-window pass: keep `WINDOW` events pending,
/// popping the earliest as each new event lands — the fleet's per-round
/// schedule→drain shape compressed into a steady stream. Delays are a
/// deterministic spread over [STRIDE_NS, WINDOW*STRIDE_NS], so every wheel
/// level the warmup touched is revisited by the asserted run.
fn slide(queue: &mut EventQueue<u64>, start_step: usize, steps: usize) -> u64 {
    let mut acc = 0u64;
    for step in start_step..start_step + steps {
        let now = step as u64 * STRIDE_NS;
        let spread = (step * 131) % WINDOW + 1;
        let fire = now + spread as u64 * STRIDE_NS;
        queue.schedule(fire, (step % 7) as u64, step as u64);
        if queue.len() > WINDOW {
            let (key, payload) = queue.pop().expect("window is non-empty");
            acc = acc.wrapping_add(key.time_ns ^ payload);
        }
    }
    acc
}

/// Drains the queue without asserting, returning the fold (keeps the
/// optimizer honest between phases).
fn drain(queue: &mut EventQueue<u64>) -> u64 {
    let mut acc = 0u64;
    while let Some((key, payload)) = queue.pop() {
        acc = acc.wrapping_add(key.time_ns ^ payload);
    }
    acc
}

#[test]
fn event_queue_steady_state_is_allocation_free() {
    assert_counting();

    let mut sink = 0u64;
    for (label, mut queue) in [
        (
            "wheel steady-state schedule/pop",
            EventQueue::<u64>::wheel(),
        ),
        ("heap steady-state schedule/pop", EventQueue::<u64>::heap()),
    ] {
        queue.reserve(WINDOW + 1);
        // Warm: several laps of the sliding window so every slot vector and
        // the ready heap reach their steady capacity.
        sink = sink.wrapping_add(slide(&mut queue, 0, WARM_STEPS));
        // Hot: the identical pattern, continued, must not touch the heap.
        sink = sink.wrapping_add(assert_no_alloc(label, || {
            slide(&mut queue, WARM_STEPS, HOT_STEPS)
        }));
        sink = sink.wrapping_add(drain(&mut queue));
    }
    assert_ne!(sink, 0, "the folds must observe real pops");
}
