//! Fixture tests for the repo-invariant lint engine. Each rule gets a
//! passing and a failing source, fed through [`lint_sources`] — the same
//! engine the `lint` binary runs over the repo — plus allowlist
//! suppression, staleness, and round-trip coverage.

use splitbeam_analysis::lint::{
    format_allowlist, lint_sources, parse_allowlist, Allowlist, LintReport, RULE_DENY_UNSAFE_OP,
    RULE_ENV_ACCESS, RULE_INGEST_UNWRAP, RULE_SAFETY_COMMENT, RULE_SERVE_UNORDERED_MAP,
    RULE_WALL_CLOCK,
};

fn lint_one(path: &str, text: &str) -> LintReport {
    lint_sources(
        &[(path.to_string(), text.to_string())],
        &Allowlist::default(),
    )
}

fn rules_of(report: &LintReport) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn undocumented_unsafe_block_is_flagged() {
    let bad = r#"
#![deny(unsafe_op_in_unsafe_fn)]
pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}
"#;
    let report = lint_one("crates/demo/src/lib.rs", bad);
    assert_eq!(rules_of(&report), vec![RULE_SAFETY_COMMENT]);
    assert_eq!(report.violations[0].line, 4);

    let good = r#"
#![deny(unsafe_op_in_unsafe_fn)]
pub fn read(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
"#;
    assert!(lint_one("crates/demo/src/lib.rs", good).clean());
}

#[test]
fn safety_comment_must_be_within_lookback() {
    let too_far = r#"
#![deny(unsafe_op_in_unsafe_fn)]
// SAFETY: this justification is stranded six lines above the site.
//
//
//
//
pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}
"#;
    let report = lint_one("crates/demo/src/lib.rs", too_far);
    assert_eq!(rules_of(&report), vec![RULE_SAFETY_COMMENT]);
}

#[test]
fn unsafe_fn_declarations_are_not_flagged_but_impls_are() {
    // An `unsafe fn` documents its contract in `# Safety` rustdoc; no
    // SAFETY comment is demanded at the declaration.
    let decl = r#"
#![deny(unsafe_op_in_unsafe_fn)]
/// # Safety
/// `p` must be valid.
pub unsafe fn read(p: *const u32) -> u32 {
    // SAFETY: contract forwarded from the caller.
    unsafe { *p }
}
"#;
    assert!(lint_one("crates/demo/src/lib.rs", decl).clean());

    let bare_impl = "#![deny(unsafe_op_in_unsafe_fn)]\npub struct S;\nunsafe impl Send for S {}\n";
    let report = lint_one("crates/demo/src/lib.rs", bare_impl);
    assert_eq!(rules_of(&report), vec![RULE_SAFETY_COMMENT]);
}

#[test]
fn unsafe_in_tests_and_comments_is_ignored() {
    let text = r#"
// This comment mentions unsafe { } and needs no justification.
pub const DOC: &str = "unsafe { also just data }";
#[cfg(test)]
mod tests {
    #[test]
    fn probe() {
        let x = 7u32;
        let _ = unsafe { *(&x as *const u32) };
    }
}
"#;
    assert!(lint_one("crates/demo/src/lib.rs", text).clean());
}

#[test]
fn unsafe_crate_without_deny_attr_is_flagged_at_its_root() {
    let root = (
        "crates/demo/src/lib.rs".to_string(),
        "pub mod inner;\n".to_string(),
    );
    let inner = (
        "crates/demo/src/inner.rs".to_string(),
        "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n"
            .to_string(),
    );
    let report = lint_sources(&[root.clone(), inner.clone()], &Allowlist::default());
    assert_eq!(rules_of(&report), vec![RULE_DENY_UNSAFE_OP]);
    assert_eq!(report.violations[0].path, "crates/demo/src/lib.rs");

    let fixed_root = (
        "crates/demo/src/lib.rs".to_string(),
        "#![deny(unsafe_op_in_unsafe_fn)]\npub mod inner;\n".to_string(),
    );
    let report = lint_sources(&[fixed_root, inner], &Allowlist::default());
    assert!(report.clean(), "unexpected: {:?}", report.violations);
}

#[test]
fn wall_clock_is_banned_only_in_virtual_time_crates() {
    let text = "use std::time::Instant;\npub fn now() -> Instant { Instant::now() }\n";
    let report = lint_one("crates/splitbeam-serve/src/timing.rs", text);
    assert!(rules_of(&report).iter().all(|r| *r == RULE_WALL_CLOCK));
    assert!(!report.violations.is_empty());

    // Outside the virtual-time crates the same code is fine.
    assert!(lint_one("crates/mimo-math/src/kernel/tune.rs", text).clean());

    // Mentions in comments/strings and test modules don't count, and
    // identifiers merely *containing* the token don't either.
    let benign = r#"
// Instant is banned here; this comment is not code.
pub const LABEL: &str = "SystemTime";
pub struct InstantaneousRate(pub f64);
#[cfg(test)]
mod tests {
    use std::time::Instant;
    #[test]
    fn probe() {
        let _ = Instant::now();
    }
}
"#;
    assert!(lint_one("crates/splitbeam-hwsim/src/event.rs", benign).clean());
}

#[test]
fn raw_splitbeam_env_reads_are_flagged_outside_the_env_module() {
    let text =
        "pub fn kernel() -> Option<String> {\n    std::env::var(\"SPLITBEAM_KERNEL\").ok()\n}\n";
    let report = lint_one("crates/splitbeam/src/model.rs", text);
    assert_eq!(rules_of(&report), vec![RULE_ENV_ACCESS]);

    // The blessed module may read raw.
    assert!(lint_one("crates/mimo-math/src/env.rs", text).clean());

    // Non-SPLITBEAM variables are out of scope for this rule.
    let other = "pub fn home() -> Option<String> {\n    std::env::var(\"HOME\").ok()\n}\n";
    assert!(lint_one("crates/splitbeam/src/model.rs", other).clean());

    // rustfmt may wrap the variable name onto the following line.
    let wrapped =
        "pub fn kernel() -> Option<String> {\n    std::env::var(\n        \"SPLITBEAM_KERNEL\",\n    ).ok()\n}\n";
    let report = lint_one("crates/splitbeam/src/model.rs", wrapped);
    assert_eq!(rules_of(&report), vec![RULE_ENV_ACCESS]);
}

#[test]
fn unwrap_on_the_ingest_path_is_flagged() {
    let text = "pub fn decode(b: &[u8]) -> u8 {\n    b.first().copied().unwrap()\n}\n";
    let report = lint_one("crates/splitbeam-serve/src/session.rs", text);
    assert_eq!(rules_of(&report), vec![RULE_INGEST_UNWRAP]);

    let expecting =
        "pub fn decode(b: &[u8]) -> u8 {\n    b.first().copied().expect(\"frame\")\n}\n";
    let report = lint_one("crates/splitbeam-serve/src/shard.rs", expecting);
    assert_eq!(rules_of(&report), vec![RULE_INGEST_UNWRAP]);

    // Off the ingest path the same code is allowed.
    assert!(lint_one("crates/splitbeam-serve/src/driver.rs", text).clean());

    // Test modules inside ingest files may unwrap freely.
    let in_tests = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn probe() {\n        let v: Option<u8> = Some(1);\n        v.unwrap();\n    }\n}\n";
    assert!(lint_one("crates/splitbeam-serve/src/server.rs", in_tests).clean());
}

#[test]
fn allowlist_suppresses_matching_violations_and_reports_stale_entries() {
    let text = "pub fn decode(b: &[u8]) -> u8 {\n    b.first().copied().unwrap()\n}\n";
    let sources = [(
        "crates/splitbeam-serve/src/session.rs".to_string(),
        text.to_string(),
    )];

    let allow = parse_allowlist(
        "ingest-unwrap|crates/splitbeam-serve/src/session.rs|b.first()|slice is length-checked by the caller\n",
    )
    .unwrap();
    let report = lint_sources(&sources, &allow);
    assert!(
        report.clean(),
        "entry should suppress: {:?}",
        report.violations
    );

    // A needle that matches nothing leaves the violation AND goes stale.
    let allow = parse_allowlist(
        "ingest-unwrap|crates/splitbeam-serve/src/session.rs|no_such_call|reason long enough here\n",
    )
    .unwrap();
    let report = lint_sources(&sources, &allow);
    assert_eq!(rules_of(&report), vec![RULE_INGEST_UNWRAP]);
    assert_eq!(report.stale_allowlist.len(), 1);
    assert!(!report.clean());

    // `*` wildcards the needle but stays pinned to rule + path.
    let allow = parse_allowlist(
        "ingest-unwrap|crates/splitbeam-serve/src/session.rs|*|vetted: the caller guarantees one byte\n",
    )
    .unwrap();
    assert!(lint_sources(&sources, &allow).clean());
}

#[test]
fn allowlist_parser_rejects_malformed_and_thin_entries() {
    assert!(parse_allowlist("only|three|fields\n").is_err());
    assert!(
        parse_allowlist("rule|path|needle|short\n").is_err(),
        "a sub-10-char reason must be rejected"
    );
    assert!(parse_allowlist("|path|needle|reason is long enough\n").is_err());

    // Comments and blank lines are fine.
    let allow =
        parse_allowlist("# header\n\nwall-clock|a/src/b.rs|Instant|vetted wall-clock probe\n")
            .unwrap();
    assert_eq!(allow.entries.len(), 1);
}

#[test]
fn allowlist_round_trips_through_format_and_parse() {
    let original = parse_allowlist(
        "wall-clock|crates/x/src/a.rs|Instant::now|calibration probe, not sim time\n\
         safety-comment|crates/y/src/b.rs|*|legacy block awaiting the audit\n",
    )
    .unwrap();
    let reparsed = parse_allowlist(&format_allowlist(&original)).unwrap();
    assert_eq!(original.entries, reparsed.entries);
}

#[test]
fn test_directories_are_exempt_wholesale() {
    let text = "use std::time::Instant;\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert!(lint_one("crates/splitbeam-serve/tests/ring_stress.rs", text).clean());
    assert!(lint_one("tests/serving_layer.rs", text).clean());
}

#[test]
fn hash_collections_are_banned_in_the_serving_crate() {
    let map = "use std::collections::HashMap;\npub struct S {\n    by_id: HashMap<u64, u32>,\n}\n";
    let report = lint_one("crates/splitbeam-serve/src/server.rs", map);
    assert_eq!(
        rules_of(&report),
        vec![RULE_SERVE_UNORDERED_MAP, RULE_SERVE_UNORDERED_MAP]
    );
    assert_eq!(report.violations[0].line, 1);

    let set = "pub fn dedup(ids: &[u64]) -> usize {\n    let s: std::collections::HashSet<u64> = ids.iter().copied().collect();\n    s.len()\n}\n";
    let report = lint_one("crates/splitbeam-serve/src/fleet.rs", set);
    assert_eq!(rules_of(&report), vec![RULE_SERVE_UNORDERED_MAP]);

    // BTreeMap is the blessed keyed store.
    let good =
        "use std::collections::BTreeMap;\npub struct S {\n    by_id: BTreeMap<u64, u32>,\n}\n";
    assert!(lint_one("crates/splitbeam-serve/src/server.rs", good).clean());
}

#[test]
fn hash_collections_outside_the_serving_crate_are_fine() {
    let text = "use std::collections::HashMap;\npub fn f() -> HashMap<u64, u64> {\n    HashMap::new()\n}\n";
    assert!(lint_one("crates/bench/src/bin/fleet_report.rs", text).clean());
    assert!(lint_one("crates/splitbeam-analysis/src/lint.rs", text).clean());
}

#[test]
fn hash_words_in_comments_strings_and_tests_are_ignored() {
    let prose = "// A HashMap would be wrong here; see the slab.\npub fn f() -> &'static str {\n    \"no HashSet either\"\n}\n";
    assert!(lint_one("crates/splitbeam-serve/src/slab.rs", prose).clean());

    let in_tests = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn probe() {\n        let _ = HashMap::<u64, u64>::new();\n    }\n}\n";
    assert!(lint_one("crates/splitbeam-serve/src/slab.rs", in_tests).clean());

    // Identifier substrings must not trip the word-boundary match.
    let ident = "pub fn f(rehashmapping: u64) -> u64 {\n    rehashmapping\n}\n";
    assert!(lint_one("crates/splitbeam-serve/src/server.rs", ident).clean());
}

#[test]
fn unordered_map_violations_are_allowlistable() {
    let text = "use std::collections::HashMap;\npub fn f() {}\n";
    let allow = parse_allowlist(
        "serve-unordered-map|crates/splitbeam-serve/src/server.rs|HashMap|vetted: local scratch map, never iterated into output\n",
    )
    .unwrap();
    let report = lint_sources(
        &[(
            "crates/splitbeam-serve/src/server.rs".to_string(),
            text.to_string(),
        )],
        &allow,
    );
    assert!(report.clean());
}
