//! Meta-test for the allocation sentinel itself: proves the counting
//! allocator is actually wired up and that `assert_no_alloc` both passes
//! clean scopes and fails allocating ones. Lives in its own binary because
//! the counters are process-global and sentinel binaries keep one `#[test]`.

use std::hint::black_box;
use std::panic::{catch_unwind, AssertUnwindSafe};

use splitbeam_analysis::alloc_sentinel::{assert_counting, assert_no_alloc, stats, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn sentinel_counts_and_catches_allocations() {
    assert_counting();

    // A clean scope passes and returns its value; frees alone are allowed.
    let preallocated: Vec<u64> = Vec::with_capacity(16);
    let sum = assert_no_alloc("arithmetic only", || {
        let mut acc = 0u64;
        for i in 0..black_box(1000u64) {
            acc = acc.wrapping_add(i * i);
        }
        drop(preallocated);
        acc
    });
    assert_eq!(sum, (0..1000u64).map(|i| i * i).fold(0, u64::wrapping_add));

    // An allocating scope must panic with the labeled diagnostic.
    let result = catch_unwind(AssertUnwindSafe(|| {
        assert_no_alloc("deliberately allocating", || {
            black_box(vec![0u8; 4096]);
        })
    }));
    let payload = result.expect_err("an allocating scope must fail the sentinel");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| {
            payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .unwrap()
        });
    assert!(
        message.contains("deliberately allocating"),
        "diagnostic should carry the scope label: {message}"
    );

    // Reallocation (a growing Vec) is also a violation, not just fresh allocs.
    let mut grower: Vec<u8> = Vec::with_capacity(1);
    grower.push(1);
    let result = catch_unwind(AssertUnwindSafe(|| {
        assert_no_alloc("deliberately reallocating", || {
            for i in 0..64u8 {
                grower.push(i);
            }
        })
    }));
    assert!(
        result.is_err(),
        "a reallocating scope must fail the sentinel"
    );

    // Counters are monotone and visible through `stats`.
    let before = stats();
    black_box(Box::new(7u32));
    let after = stats();
    assert!(after.allocs > before.allocs && after.bytes > before.bytes);
}
