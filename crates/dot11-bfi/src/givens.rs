//! Givens-rotation decomposition of the beamforming matrix (Algorithm 1).
//!
//! The 802.11 standard feeds back the beamforming matrix `V` (`Nt x Nss`,
//! orthonormal columns) as a set of angles: the column phases are first removed
//! (the `D̃` matrix, which does not need to be fed back because beamforming
//! performance is invariant to it), then a sequence of `D_t` phase matrices and
//! real Givens rotations `G_{l,t}` reduces the matrix to the generalized
//! identity. The station transmits only the φ (phase) and ψ (rotation) angles;
//! the access point rebuilds `Ṽ` by applying the rotations in reverse.

use crate::BfiError;
use mimo_math::{CMatrix, Complex64};
use serde::{Deserialize, Serialize};

/// The Givens-angle representation of one subcarrier's beamforming matrix.
///
/// Angles are stored in the order mandated by the standard (and produced by
/// Algorithm 1): for every column `t`, first the φ angles of rows `t..Nt-1`,
/// then the ψ angles of rows `t+1..Nt`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GivensAngles {
    /// Number of transmit antennas (rows of `V`).
    pub nt: usize,
    /// Number of spatial streams (columns of `V`).
    pub nss: usize,
    /// φ angles in `[0, 2π)`, ordered per column.
    pub phi: Vec<f64>,
    /// ψ angles in `[0, π/2]`, ordered per column.
    pub psi: Vec<f64>,
}

/// Number of φ (equivalently ψ) angle *pairs* per subcarrier for an
/// `nt x nss` beamforming matrix: `sum_{t=1}^{min(nss, nt-1)} (nt - t)` each.
pub fn angle_pairs(nt: usize, nss: usize) -> usize {
    let t_max = nss.min(nt.saturating_sub(1));
    (1..=t_max).map(|t| nt - t).sum()
}

/// Total number of angles (φ + ψ) per subcarrier — the `A` of the paper's
/// airtime formula.
pub fn total_angles(nt: usize, nss: usize) -> usize {
    2 * angle_pairs(nt, nss)
}

impl GivensAngles {
    /// Decomposes an orthonormal `nt x nss` beamforming matrix into Givens
    /// angles (Algorithm 1 of the paper).
    ///
    /// Allocates the working copy and the output internally; the per-subcarrier
    /// hot loop should reuse buffers through [`GivensAngles::decompose_into`].
    ///
    /// # Errors
    /// Returns [`BfiError::InvalidShape`] if `v` has more columns than rows or
    /// is degenerate (a single antenna cannot be decomposed).
    pub fn decompose(v: &CMatrix) -> Result<Self, BfiError> {
        let mut out = GivensAngles {
            nt: 0,
            nss: 0,
            phi: Vec::new(),
            psi: Vec::new(),
        };
        let mut omega = CMatrix::zeros(1, 1);
        Self::decompose_into(v, &mut omega, &mut out)?;
        Ok(out)
    }

    /// Decomposes `v` into `out`, reusing `omega` as the working copy and the
    /// angle vectors already held by `out`.
    ///
    /// After warm-up the call performs no heap allocation; the produced angles
    /// are bit-identical to [`GivensAngles::decompose`]. The phase angles of a
    /// column are applied row by row as they are extracted — each row rotation
    /// only touches its own row, so the interleaving leaves every extracted
    /// angle exactly as in the two-pass formulation.
    ///
    /// # Errors
    /// Returns [`BfiError::InvalidShape`] if `v` has more columns than rows or
    /// is degenerate (a single antenna cannot be decomposed).
    pub fn decompose_into(
        v: &CMatrix,
        omega: &mut CMatrix,
        out: &mut GivensAngles,
    ) -> Result<(), BfiError> {
        let (nt, nss) = v.shape();
        if nss > nt {
            return Err(BfiError::InvalidShape(format!(
                "V must be tall or square, got {nt}x{nss}"
            )));
        }
        if nt == 0 || nss == 0 {
            return Err(BfiError::InvalidShape("empty matrix".into()));
        }

        // Step 1: remove the per-column phase of the last row so that row Nt is
        // non-negative real: Omega = V * D̃^H with
        // D̃ = diag(exp(j * angle(V[Nt-1, k]))).
        omega.reshape_zeroed(nt, nss);
        for c in 0..nss {
            let phase_conj = Complex64::cis(v[(nt - 1, c)].arg()).conj();
            for r in 0..nt {
                omega[(r, c)] = v[(r, c)] * phase_conj;
            }
        }

        let t_max = nss.min(nt - 1);
        out.nt = nt;
        out.nss = nss;
        out.phi.clear();
        out.psi.clear();

        for t in 0..t_max {
            // Phase angles of column t, rows t..nt-2 (the last row is already
            // real); apply D_t^H to each row as its angle is extracted.
            for l in t..(nt - 1) {
                let angle = omega[(l, t)].arg().rem_euclid(2.0 * std::f64::consts::PI);
                out.phi.push(angle);
                let rotator = Complex64::cis(-angle);
                for c in 0..nss {
                    omega[(l, c)] *= rotator;
                }
            }

            // Givens rotations zeroing rows t+1..nt-1 of column t.
            for l in (t + 1)..nt {
                let a = omega[(t, t)].re;
                let b = omega[(l, t)].re;
                let denom = (a * a + b * b).sqrt();
                let angle = if denom < 1e-300 {
                    0.0
                } else {
                    (a / denom).clamp(-1.0, 1.0).acos()
                };
                out.psi.push(angle);
                let (cos_psi, sin_psi) = (angle.cos(), angle.sin());
                // Apply G_{l,t} (a real rotation acting on rows t and l).
                for c in 0..nss {
                    let top = omega[(t, c)];
                    let bottom = omega[(l, c)];
                    omega[(t, c)] = top.scale(cos_psi) + bottom.scale(sin_psi);
                    omega[(l, c)] = bottom.scale(cos_psi) - top.scale(sin_psi);
                }
            }
        }

        Ok(())
    }

    /// Rebuilds the beamforming matrix `Ṽ` from the angles (the inverse of
    /// [`GivensAngles::decompose`], Eq. 5 of the paper).
    ///
    /// The reconstruction equals the original `V` up to the per-column phase
    /// `D̃` that the standard deliberately does not feed back; beamforming
    /// performance is identical for `V` and `Ṽ`.
    pub fn reconstruct(&self) -> CMatrix {
        let nt = self.nt;
        let nss = self.nss;
        let t_max = nss.min(nt - 1);

        let mut result = CMatrix::generalized_identity(nt, nss);
        // Build the product right-to-left: for t = t_max..1, prepend
        // (G^T_{nt,t} ... G^T_{t+1,t}) then D_t.
        let mut phi_cursor = self.phi.len();
        let mut psi_cursor = self.psi.len();
        for t in (0..t_max).rev() {
            let n_phi = nt - 1 - t;
            let n_psi = nt - 1 - t;
            let phis = &self.phi[phi_cursor - n_phi..phi_cursor];
            let psis = &self.psi[psi_cursor - n_psi..psi_cursor];
            phi_cursor -= n_phi;
            psi_cursor -= n_psi;

            // Apply the transposed Givens rotations in reverse order of the
            // decomposition: result <- G^T_{l,t} * result for l = nt..t+2, then
            // finally the phases.
            for (idx, &angle) in psis.iter().enumerate().rev() {
                let l = t + 1 + idx;
                let (cos_psi, sin_psi) = (angle.cos(), angle.sin());
                // G^T swaps the sign of the sin terms relative to G.
                for c in 0..nss {
                    let top = result[(t, c)];
                    let bottom = result[(l, c)];
                    result[(t, c)] = top.scale(cos_psi) - bottom.scale(sin_psi);
                    result[(l, c)] = top.scale(sin_psi) + bottom.scale(cos_psi);
                }
            }
            for (offset, &angle) in phis.iter().enumerate() {
                let row = t + offset;
                let rotator = Complex64::cis(angle);
                for c in 0..nss {
                    result[(row, c)] *= rotator;
                }
            }
        }
        result
    }

    /// Total number of angles carried by this decomposition.
    pub fn num_angles(&self) -> usize {
        self.phi.len() + self.psi.len()
    }
}

/// Removes the feedback-irrelevant per-column phase from `v` so it can be
/// compared entry-wise with a reconstruction produced by
/// [`GivensAngles::reconstruct`]: each column is rotated so its last entry is
/// non-negative real.
pub fn canonicalize_column_phases(v: &CMatrix) -> CMatrix {
    let (nt, nss) = v.shape();
    CMatrix::from_fn(nt, nss, |r, c| {
        let phase = Complex64::cis(v[(nt - 1, c)].arg());
        v[(r, c)] * phase.conj()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_math::qr::random_unitary;
    use mimo_math::svd::Svd;
    use proptest::prelude::*;
    use rand::Rng as _;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_bf_matrix(rng: &mut impl rand::Rng, nt: usize, nss: usize) -> CMatrix {
        let unitary = random_unitary(nt, || {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        unitary.first_columns(nss)
    }

    #[test]
    fn angle_counts_match_standard_table() {
        // Known angle counts from the 802.11 standard (Nt x Nc -> number of angles):
        assert_eq!(total_angles(2, 1), 2);
        assert_eq!(total_angles(2, 2), 2);
        assert_eq!(total_angles(3, 1), 4);
        assert_eq!(total_angles(3, 2), 6);
        assert_eq!(total_angles(3, 3), 6);
        assert_eq!(total_angles(4, 1), 6);
        assert_eq!(total_angles(4, 2), 10);
        assert_eq!(total_angles(4, 4), 12);
        assert_eq!(total_angles(8, 8), 56);
    }

    #[test]
    fn decompose_reconstruct_roundtrip_square() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for nt in 2..=4 {
            let v = random_bf_matrix(&mut rng, nt, nt);
            let angles = GivensAngles::decompose(&v).unwrap();
            let rebuilt = angles.reconstruct();
            let canonical = canonicalize_column_phases(&v);
            let err = canonical.sub(&rebuilt).max_abs();
            assert!(err < 1e-9, "nt={nt} reconstruction error {err}");
        }
    }

    #[test]
    fn decompose_reconstruct_roundtrip_tall() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for (nt, nss) in [
            (2usize, 1usize),
            (3, 1),
            (3, 2),
            (4, 1),
            (4, 2),
            (4, 3),
            (8, 4),
        ] {
            let v = random_bf_matrix(&mut rng, nt, nss);
            let angles = GivensAngles::decompose(&v).unwrap();
            assert_eq!(angles.phi.len(), angle_pairs(nt, nss));
            assert_eq!(angles.psi.len(), angle_pairs(nt, nss));
            let rebuilt = angles.reconstruct();
            let canonical = canonicalize_column_phases(&v);
            let err = canonical.sub(&rebuilt).max_abs();
            assert!(err < 1e-9, "{nt}x{nss} reconstruction error {err}");
        }
    }

    #[test]
    fn reconstruction_preserves_orthonormality() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = random_bf_matrix(&mut rng, 4, 2);
        let rebuilt = GivensAngles::decompose(&v).unwrap().reconstruct();
        assert!(rebuilt.is_unitary_columns(1e-9));
    }

    #[test]
    fn works_on_svd_beamforming_matrices() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let h = CMatrix::from_fn(3, 3, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let v = Svd::compute(&h).beamforming_matrix(1);
        let angles = GivensAngles::decompose(&v).unwrap();
        let rebuilt = angles.reconstruct();
        let canonical = canonicalize_column_phases(&v);
        assert!(canonical.sub(&rebuilt).max_abs() < 1e-9);
    }

    #[test]
    fn beamforming_equivalence_of_reconstruction() {
        // |h^H v| must equal |h^H ṽ| for any channel row h: the per-column phase
        // removed by the decomposition does not affect beamforming gain.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let h = CMatrix::from_fn(2, 3, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let v = Svd::compute(&h).beamforming_matrix(1);
        let rebuilt = GivensAngles::decompose(&v).unwrap().reconstruct();
        let gain_v = h.matmul(&v).frobenius_norm();
        let gain_rebuilt = h.matmul(&rebuilt).frobenius_norm();
        assert!((gain_v - gain_rebuilt).abs() < 1e-9);
    }

    #[test]
    fn psi_angles_in_first_quadrant() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let v = random_bf_matrix(&mut rng, 4, 2);
        let angles = GivensAngles::decompose(&v).unwrap();
        for &psi in &angles.psi {
            assert!((0.0..=std::f64::consts::FRAC_PI_2 + 1e-12).contains(&psi));
        }
        for &phi in &angles.phi {
            assert!((0.0..2.0 * std::f64::consts::PI + 1e-12).contains(&phi));
        }
    }

    #[test]
    fn wide_matrix_is_rejected() {
        let v = CMatrix::zeros(1, 2);
        assert!(matches!(
            GivensAngles::decompose(&v),
            Err(BfiError::InvalidShape(_))
        ));
    }

    #[test]
    fn single_antenna_identity() {
        // Nt = 1, Nss = 1: no angles at all, reconstruction is the 1x1 identity.
        let v = CMatrix::from_fn(1, 1, |_, _| Complex64::cis(0.7));
        let angles = GivensAngles::decompose(&v).unwrap();
        assert_eq!(angles.num_angles(), 0);
        let rebuilt = angles.reconstruct();
        assert!((rebuilt[(0, 0)] - Complex64::ONE).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_roundtrip_random_unitaries(nt in 2usize..5, seed in 0u64..500) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let nss = 1 + (seed as usize % nt);
            let v = random_bf_matrix(&mut rng, nt, nss);
            let angles = GivensAngles::decompose(&v).unwrap();
            let rebuilt = angles.reconstruct();
            let canonical = canonicalize_column_phases(&v);
            prop_assert!(canonical.sub(&rebuilt).max_abs() < 1e-8);
        }

        #[test]
        fn prop_angle_count_formula(nt in 2usize..9, nss_seed in 1usize..9) {
            let nss = nss_seed.min(nt);
            let mut rng = ChaCha8Rng::seed_from_u64((nt * 13 + nss) as u64);
            let v = random_bf_matrix(&mut rng, nt, nss);
            let angles = GivensAngles::decompose(&v).unwrap();
            prop_assert_eq!(angles.num_angles(), total_angles(nt, nss));
        }
    }
}
