//! Compressed beamforming report sizes and bit packing.
//!
//! The paper's airtime analysis (Section IV-E2) uses the standard's compressed
//! beamforming report size `BMR = 8 * Nt + Na * S * (bφ + bψ) / 2` bits and the
//! compression ratio `CR = BMR / (S * Nt * Nr * b)` with `b = 16` bits per raw
//! complex channel entry (Eq. 9). This module provides those formulas plus an
//! actual bit-level packing of the quantized angles, so the feedback payload can
//! be handed to the airtime model byte-for-byte.

use crate::bits::{BitReader, BitWriter};
use crate::givens::{total_angles, GivensAngles};
use crate::quantize::{
    dequantize_phi, dequantize_psi, quantize_phi, quantize_psi, AngleResolution,
};
use crate::BfiError;
use serde::{Deserialize, Serialize};

/// Bits used to represent one raw complex channel entry (8 bits per real and
/// imaginary component), the `b` of Eq. 9.
pub const RAW_BITS_PER_COMPLEX: usize = 16;

/// Per-antenna SNR field carried in the report header (8 bits per antenna).
pub const SNR_FIELD_BITS_PER_ANTENNA: usize = 8;

/// Size in bits of the compressed beamforming report for one station:
/// `8 * Nt + Na * S * (bφ + bψ) / 2`.
pub fn compressed_report_bits(
    nt: usize,
    nss: usize,
    subcarriers: usize,
    resolution: AngleResolution,
) -> usize {
    let na = total_angles(nt, nss);
    SNR_FIELD_BITS_PER_ANTENNA * nt + (na * subcarriers) * resolution.bits_per_angle_avg() as usize
}

/// Size in bits of the uncompressed CSI (`S * Nt * Nr * 16`), the denominator of Eq. 9.
pub fn raw_csi_bits(nt: usize, nr: usize, subcarriers: usize) -> usize {
    subcarriers * nt * nr * RAW_BITS_PER_COMPLEX
}

/// The 802.11 compression ratio of Eq. 9.
pub fn compression_ratio(
    nt: usize,
    nr: usize,
    nss: usize,
    subcarriers: usize,
    resolution: AngleResolution,
) -> f64 {
    compressed_report_bits(nt, nss, subcarriers, resolution) as f64
        / raw_csi_bits(nt, nr, subcarriers) as f64
}

/// Report size in bits under the *paper's* accounting convention: the station
/// feeds back the full-rank beamforming matrix (`Nss = Nt`) and every angle is
/// counted at the maximum 16-bit resolution, matching the introduction's
/// "56 angles x 16 bits/angle" example and the `K ~ 1/2` (2x2) / `K ~ 2/3`
/// (3x3) ratios quoted in Fig. 9.
pub fn paper_report_bits(nt: usize, subcarriers: usize) -> usize {
    SNR_FIELD_BITS_PER_ANTENNA * nt + total_angles(nt, nt) * subcarriers * 16
}

/// Compression ratio of Eq. 9 under the paper's accounting convention
/// ([`paper_report_bits`] over the raw CSI size).
pub fn paper_compression_ratio(nt: usize, nr: usize, subcarriers: usize) -> f64 {
    paper_report_bits(nt, subcarriers) as f64 / raw_csi_bits(nt, nr, subcarriers) as f64
}

/// A packed compressed beamforming report: the quantized Givens angles of every
/// subcarrier plus the metadata needed to unpack them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedBeamformingReport {
    /// Number of transmit antennas.
    pub nt: usize,
    /// Number of spatial streams (columns).
    pub nss: usize,
    /// Number of subcarriers covered.
    pub subcarriers: usize,
    /// Angle quantization resolution.
    pub resolution: AngleResolution,
    /// The packed angle field (φ/ψ indices bit-packed per subcarrier).
    pub payload: Vec<u8>,
}

impl CompressedBeamformingReport {
    /// Packs per-subcarrier Givens angles into a report.
    ///
    /// # Errors
    /// Returns [`BfiError::InvalidShape`] if `angles` is empty or the entries
    /// disagree in shape.
    pub fn pack(angles: &[GivensAngles], resolution: AngleResolution) -> Result<Self, BfiError> {
        let first = angles
            .first()
            .ok_or_else(|| BfiError::InvalidShape("no subcarriers".into()))?;
        let (nt, nss) = (first.nt, first.nss);
        let pairs = crate::givens::angle_pairs(nt, nss);
        let mut writer = BitWriter::with_capacity_bits(
            angles.len() * pairs * (resolution.phi_bits() + resolution.psi_bits()) as usize,
        );
        for (s, a) in angles.iter().enumerate() {
            if a.nt != nt || a.nss != nss {
                return Err(BfiError::InvalidShape(format!(
                    "subcarrier {s} has shape {}x{}, expected {nt}x{nss}",
                    a.nt, a.nss
                )));
            }
            for &phi in &a.phi {
                writer.push(quantize_phi(phi, resolution) as u32, resolution.phi_bits());
            }
            for &psi in &a.psi {
                writer.push(quantize_psi(psi, resolution) as u32, resolution.psi_bits());
            }
        }
        Ok(Self {
            nt,
            nss,
            subcarriers: angles.len(),
            resolution,
            payload: writer.finish(),
        })
    }

    /// Builds a report from already-quantized angle codes: `2 * pairs` codes
    /// per subcarrier, all φ codes first, then all ψ codes (the same order
    /// [`CompressedBeamformingReport::pack`] writes).
    ///
    /// This is the feedback engine's fast path — quantization happens inside
    /// the (possibly parallel) per-subcarrier workers and only the bit packing
    /// stays serial. The payload is byte-identical to packing the
    /// corresponding [`GivensAngles`].
    pub(crate) fn from_codes(
        nt: usize,
        nss: usize,
        subcarriers: usize,
        resolution: AngleResolution,
        codes: &[u16],
    ) -> Self {
        let pairs = crate::givens::angle_pairs(nt, nss);
        let payload = if pairs == 0 {
            Vec::new()
        } else {
            debug_assert_eq!(codes.len(), subcarriers * 2 * pairs);
            let mut writer = BitWriter::with_capacity_bits(
                subcarriers * pairs * (resolution.phi_bits() + resolution.psi_bits()) as usize,
            );
            for per_sc in codes.chunks_exact(2 * pairs) {
                for &code in &per_sc[..pairs] {
                    writer.push(u32::from(code), resolution.phi_bits());
                }
                for &code in &per_sc[pairs..] {
                    writer.push(u32::from(code), resolution.psi_bits());
                }
            }
            writer.finish()
        };
        Self {
            nt,
            nss,
            subcarriers,
            resolution,
            payload,
        }
    }

    /// Unpacks the report back into (dequantized) per-subcarrier Givens angles.
    ///
    /// # Errors
    /// Returns [`BfiError::MalformedReport`] if the payload is too short for the
    /// declared dimensions.
    pub fn unpack(&self) -> Result<Vec<GivensAngles>, BfiError> {
        let pairs = crate::givens::angle_pairs(self.nt, self.nss);
        let mut reader = BitReader::new(&self.payload);
        let mut out = Vec::with_capacity(self.subcarriers);
        for s in 0..self.subcarriers {
            let mut phi = Vec::with_capacity(pairs);
            let mut psi = Vec::with_capacity(pairs);
            for _ in 0..pairs {
                let idx = reader.pull(self.resolution.phi_bits()).ok_or_else(|| {
                    BfiError::MalformedReport(format!("payload exhausted at subcarrier {s}"))
                })?;
                phi.push(dequantize_phi(idx as u16, self.resolution));
            }
            for _ in 0..pairs {
                let idx = reader.pull(self.resolution.psi_bits()).ok_or_else(|| {
                    BfiError::MalformedReport(format!("payload exhausted at subcarrier {s}"))
                })?;
                psi.push(dequantize_psi(idx as u16, self.resolution));
            }
            out.push(GivensAngles {
                nt: self.nt,
                nss: self.nss,
                phi,
                psi,
            });
        }
        Ok(out)
    }

    /// Size of the report in bits, including the per-antenna SNR header
    /// (matching [`compressed_report_bits`]).
    pub fn size_bits(&self) -> usize {
        SNR_FIELD_BITS_PER_ANTENNA * self.nt + self.payload.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::givens::canonicalize_column_phases;
    use mimo_math::qr::random_unitary;
    use mimo_math::Complex64;
    use rand::Rng as _;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn report_size_formula_matches_paper_example() {
        // Intro example: 8x8 at 160 MHz, 486 subcarriers, 56 angles, 16 bits
        // per angle pair average at maximum resolution -> about 54.43 kB.
        // With our formula (using the angle average of (9 + 7)/2 = 8 bits):
        let bits = compressed_report_bits(8, 8, 486, AngleResolution::High);
        // 8*8 + 56 * 486 * 8 = 217,792 bits. The paper quotes 16 bits/angle
        // (counting the φ/ψ *pair*), i.e. twice the per-angle average; both
        // conventions agree on the angle payload: 56 * 486 * 8 * 2 bits when
        // counting pairs as one "angle".
        assert_eq!(bits, 64 + 56 * 486 * 8);
    }

    #[test]
    fn compression_ratio_close_to_half_for_2x2() {
        // The paper notes K ~ 1/2 for 2x2 and ~2/3 for 3x3 under 802.11
        // (its accounting: full-rank feedback, 16 bits per angle).
        let cr_2x2 = paper_compression_ratio(2, 2, 56);
        assert!(
            (cr_2x2 - 0.5).abs() < 0.05,
            "2x2 compression ratio {cr_2x2} should be near 1/2"
        );
        let cr_3x3 = paper_compression_ratio(3, 3, 56);
        assert!(
            (cr_3x3 - 2.0 / 3.0).abs() < 0.05,
            "3x3 compression ratio {cr_3x3} should be near 2/3"
        );
        // The standard-accurate single-stream accounting compresses harder.
        let cr_single = compression_ratio(2, 2, 1, 56, AngleResolution::High);
        assert!(cr_single < cr_2x2);
    }

    fn random_angles(seed: u64, nt: usize, nss: usize, count: usize) -> Vec<GivensAngles> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let u = random_unitary(nt, || {
                    Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
                });
                GivensAngles::decompose(&u.first_columns(nss)).unwrap()
            })
            .collect()
    }

    #[test]
    fn pack_unpack_preserves_angles_within_quantization_error() {
        let angles = random_angles(7, 3, 1, 20);
        let report = CompressedBeamformingReport::pack(&angles, AngleResolution::High).unwrap();
        let unpacked = report.unpack().unwrap();
        assert_eq!(unpacked.len(), 20);
        for (orig, rec) in angles.iter().zip(unpacked.iter()) {
            for (&a, &b) in orig.phi.iter().zip(rec.phi.iter()) {
                let diff = (a - b).abs();
                let wrapped = diff.min(2.0 * std::f64::consts::PI - diff);
                assert!(wrapped <= crate::quantize::phi_max_error(AngleResolution::High) + 1e-9);
            }
            for (&a, &b) in orig.psi.iter().zip(rec.psi.iter()) {
                assert!(
                    (a - b).abs() <= crate::quantize::psi_max_error(AngleResolution::High) + 1e-9
                );
            }
        }
    }

    #[test]
    fn quantized_reconstruction_is_close_to_original() {
        let angles = random_angles(9, 4, 2, 5);
        let report = CompressedBeamformingReport::pack(&angles, AngleResolution::High).unwrap();
        let unpacked = report.unpack().unwrap();
        for (orig, rec) in angles.iter().zip(unpacked.iter()) {
            let v_orig = canonicalize_column_phases(&orig.reconstruct());
            let v_rec = rec.reconstruct();
            assert!(
                v_orig.sub(&v_rec).max_abs() < 0.05,
                "quantized reconstruction deviates too much"
            );
        }
    }

    #[test]
    fn report_size_matches_formula() {
        let angles = random_angles(11, 3, 1, 56);
        let report = CompressedBeamformingReport::pack(&angles, AngleResolution::Standard).unwrap();
        let formula = compressed_report_bits(3, 1, 56, AngleResolution::Standard);
        // The packed payload is byte-padded, so allow up to 7 bits of slack plus
        // the SNR header accounted in both.
        assert!(report.size_bits() >= formula);
        assert!(report.size_bits() < formula + 16);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let mut angles = random_angles(13, 3, 1, 3);
        angles.push(random_angles(14, 2, 1, 1).pop().unwrap());
        assert!(matches!(
            CompressedBeamformingReport::pack(&angles, AngleResolution::High),
            Err(BfiError::InvalidShape(_))
        ));
        assert!(matches!(
            CompressedBeamformingReport::pack(&[], AngleResolution::High),
            Err(BfiError::InvalidShape(_))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let angles = random_angles(15, 3, 1, 4);
        let mut report = CompressedBeamformingReport::pack(&angles, AngleResolution::High).unwrap();
        report.payload.truncate(report.payload.len() / 2);
        assert!(matches!(report.unpack(), Err(BfiError::MalformedReport(_))));
    }
}
