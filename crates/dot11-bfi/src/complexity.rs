//! Computational-complexity models of the 802.11 feedback pipeline.
//!
//! The paper (Section IV-E1) quotes the station-side cost of the standard
//! feedback as the sum of
//!
//! * the SVD of the channel on every subcarrier, `O((4 Nt Nr² + 22 Nt³) S)`
//!   floating point operations (Golub & Van Loan), and
//! * the Givens-rotation decomposition, `O(Nt³ Nr³ S)`.
//!
//! These closed-form FLOP counts are what Figures 6, 10, 11 and 12 plot for the
//! 802.11 and LB-SciFi baselines; SplitBeam's counterpart lives in the
//! `splitbeam` crate.

use serde::{Deserialize, Serialize};

/// FLOPs of the per-subcarrier SVD used to obtain the beamforming matrix,
/// multiplied by the number of subcarriers: `(4 Nt Nr² + 22 Nt³) * S`.
pub fn svd_flops(nt: usize, nr: usize, subcarriers: usize) -> u64 {
    let nt = nt as u64;
    let nr = nr as u64;
    (4 * nt * nr * nr + 22 * nt * nt * nt) * subcarriers as u64
}

/// FLOPs of the Givens-rotation angle decomposition: `Nt³ Nr³ * S`.
pub fn givens_flops(nt: usize, nr: usize, subcarriers: usize) -> u64 {
    let nt = nt as u64;
    let nr = nr as u64;
    nt * nt * nt * nr * nr * nr * subcarriers as u64
}

/// Total station-side FLOPs of the standard 802.11 feedback computation.
pub fn dot11_sta_flops(nt: usize, nr: usize, subcarriers: usize) -> u64 {
    svd_flops(nt, nr, subcarriers) + givens_flops(nt, nr, subcarriers)
}

/// Breakdown of the station-side computation for reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dot11Complexity {
    /// FLOPs spent in the SVD.
    pub svd_flops: u64,
    /// FLOPs spent in the Givens decomposition.
    pub givens_flops: u64,
}

impl Dot11Complexity {
    /// Computes the breakdown for a given configuration.
    pub fn compute(nt: usize, nr: usize, subcarriers: usize) -> Self {
        Self {
            svd_flops: svd_flops(nt, nr, subcarriers),
            givens_flops: givens_flops(nt, nr, subcarriers),
        }
    }

    /// Total FLOPs.
    pub fn total(&self) -> u64 {
        self.svd_flops + self.givens_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_paper_expressions() {
        // 3x3, 242 subcarriers
        assert_eq!(svd_flops(3, 3, 242), (4 * 3 * 9 + 22 * 27) * 242);
        assert_eq!(givens_flops(3, 3, 242), 27 * 27 * 242);
    }

    #[test]
    fn complexity_grows_with_dimensions() {
        assert!(dot11_sta_flops(4, 4, 242) > dot11_sta_flops(2, 2, 242));
        assert!(dot11_sta_flops(2, 2, 484) > dot11_sta_flops(2, 2, 56));
    }

    #[test]
    fn breakdown_totals() {
        let c = Dot11Complexity::compute(4, 4, 114);
        assert_eq!(c.total(), c.svd_flops + c.givens_flops);
        assert_eq!(c.total(), dot11_sta_flops(4, 4, 114));
    }

    #[test]
    fn givens_dominates_for_large_arrays() {
        // For 8x8 the Nt^3 Nr^3 term dwarfs the SVD term.
        let c = Dot11Complexity::compute(8, 8, 484);
        assert!(c.givens_flops > c.svd_flops);
    }

    #[test]
    fn linear_in_subcarriers() {
        assert_eq!(dot11_sta_flops(3, 3, 200), 2 * dot11_sta_flops(3, 3, 100));
    }
}
