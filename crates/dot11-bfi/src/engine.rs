//! The workspace-reusing, parallel station-side feedback engine.
//!
//! [`FeedbackEngine`] runs the per-subcarrier SVD → Givens → quantize → pack
//! pipeline with two structural optimizations over the naive loop
//! (`crate::reference::compute_feedback_naive`):
//!
//! 1. **Workspace reuse** — each worker owns one
//!    [`mimo_math::Workspace`], one beamforming-matrix buffer and one Givens
//!    working copy; after the first subcarrier of a chunk, the
//!    SVD-and-decompose step performs no heap allocation beyond the angle
//!    vectors that form the result.
//! 2. **Subcarrier fan-out** — with the `parallel` feature (on by default) the
//!    subcarrier axis is split into one contiguous chunk per available core
//!    and processed on scoped threads. Chunks are concatenated in input order
//!    and every scalar operation is identical to the serial path, so the
//!    parallel result is **bit-exact** with the serial one (asserted by the
//!    crate's tests). On a single-core host the fan-out degenerates to the
//!    serial loop with no thread spawns.
//!
//! The packing stage stays serial: it is a byte-append loop measured in
//! microseconds, and packing in subcarrier order is what makes the payload
//! independent of the degree of parallelism.

use crate::feedback::CompressedBeamformingReport;
use crate::givens::{angle_pairs, GivensAngles};
use crate::quantize::{quantize_phi, quantize_psi, AngleResolution};
use crate::BfiError;
use mimo_math::svd::Svd;
use mimo_math::{CMatrix, Workspace};

/// Minimum number of subcarriers per parallel chunk; below this the
/// per-thread workspace warm-up outweighs the fan-out.
const MIN_CHUNK: usize = 16;

/// Reusable station-side feedback engine.
///
/// ```
/// use dot11_bfi::engine::FeedbackEngine;
/// use dot11_bfi::quantize::AngleResolution;
/// use mimo_math::{CMatrix, Complex64};
///
/// let csi: Vec<CMatrix> = (0..32)
///     .map(|s| {
///         CMatrix::from_fn(2, 2, |r, c| {
///             Complex64::new((s + r) as f64 * 0.3 + 0.1, (s * c) as f64 * 0.2 - 0.4)
///         })
///     })
///     .collect();
/// let engine = FeedbackEngine::new(1, AngleResolution::High);
/// let report = engine.compute_feedback(&csi).unwrap();
/// assert_eq!(report.subcarriers, 32);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FeedbackEngine {
    nss: usize,
    resolution: AngleResolution,
}

/// Per-worker scratch: everything a chunk needs to process subcarriers without
/// allocating (beyond the per-subcarrier results themselves).
struct WorkerScratch {
    ws: Workspace,
    v: CMatrix,
    omega: CMatrix,
    angles: GivensAngles,
}

impl WorkerScratch {
    fn new() -> Self {
        Self {
            ws: Workspace::new(),
            v: CMatrix::zeros(1, 1),
            omega: CMatrix::zeros(1, 1),
            angles: GivensAngles {
                nt: 0,
                nss: 0,
                phi: Vec::new(),
                psi: Vec::new(),
            },
        }
    }
}

impl FeedbackEngine {
    /// Creates an engine reporting `nss` spatial streams at `resolution`.
    ///
    /// # Panics
    /// Panics if `nss == 0`.
    pub fn new(nss: usize, resolution: AngleResolution) -> Self {
        assert!(nss > 0, "at least one spatial stream required");
        Self { nss, resolution }
    }

    /// Number of spatial streams this engine reports.
    pub fn nss(&self) -> usize {
        self.nss
    }

    /// Angle quantization resolution of the packed reports.
    pub fn resolution(&self) -> AngleResolution {
        self.resolution
    }

    /// Computes the ideal (unquantized) beamforming matrices of every
    /// subcarrier, fanning chunks out across cores.
    pub fn beamforming_matrices(&self, csi: &[CMatrix]) -> Vec<CMatrix> {
        self.run_chunked(csi, |scratch, h| {
            let mut v = CMatrix::zeros(1, 1);
            Svd::right_vectors_into(h, self.nss, &mut v, &mut scratch.ws);
            v
        })
    }

    /// Computes the per-subcarrier Givens angles, fanning chunks out across cores.
    ///
    /// # Errors
    /// Returns [`BfiError::InvalidShape`] when the CSI is empty or a derived
    /// beamforming matrix cannot be decomposed.
    pub fn compute_angles(&self, csi: &[CMatrix]) -> Result<Vec<GivensAngles>, BfiError> {
        if csi.is_empty() {
            return Err(BfiError::InvalidShape("no subcarriers in CSI".into()));
        }
        let per_sc: Vec<Result<GivensAngles, BfiError>> = self.run_chunked(csi, |scratch, h| {
            Svd::right_vectors_into(h, self.nss, &mut scratch.v, &mut scratch.ws);
            let mut out = GivensAngles {
                nt: 0,
                nss: 0,
                phi: Vec::new(),
                psi: Vec::new(),
            };
            GivensAngles::decompose_into(&scratch.v, &mut scratch.omega, &mut out)?;
            Ok(out)
        });
        per_sc.into_iter().collect()
    }

    /// Runs the full station-side pipeline: SVD, Givens decomposition,
    /// quantization and packing.
    ///
    /// The per-subcarrier stage (SVD → Givens → quantize) runs in the chunked
    /// workers and produces flat angle codes — no per-subcarrier allocation at
    /// all; only the byte-level bit packing stays serial. The payload is
    /// byte-identical to packing the corresponding [`GivensAngles`] the slow
    /// way.
    ///
    /// # Errors
    /// Returns [`BfiError::InvalidShape`] when the CSI is empty, a derived
    /// beamforming matrix cannot be decomposed, or subcarriers disagree on
    /// their shape.
    pub fn compute_feedback(
        &self,
        csi: &[CMatrix],
    ) -> Result<CompressedBeamformingReport, BfiError> {
        if csi.is_empty() {
            return Err(BfiError::InvalidShape("no subcarriers in CSI".into()));
        }
        let nt = csi[0].cols();
        let per_chunk: Vec<Result<Vec<u16>, BfiError>> =
            self.run_chunks(csi, |start, chunk| self.codes_for_chunk(nt, start, chunk));
        let mut codes = Vec::with_capacity(csi.len() * 2 * angle_pairs(nt, self.nss));
        for piece in per_chunk {
            codes.extend(piece?);
        }
        Ok(CompressedBeamformingReport::from_codes(
            nt,
            self.nss,
            csi.len(),
            self.resolution,
            &codes,
        ))
    }

    /// The strictly serial pipeline, one workspace for all subcarriers.
    ///
    /// Used by the bit-exactness tests as the comparison point for the
    /// parallel fan-out, and by callers that must not spawn threads.
    ///
    /// # Errors
    /// Same contract as [`FeedbackEngine::compute_feedback`].
    pub fn compute_feedback_serial(
        &self,
        csi: &[CMatrix],
    ) -> Result<CompressedBeamformingReport, BfiError> {
        if csi.is_empty() {
            return Err(BfiError::InvalidShape("no subcarriers in CSI".into()));
        }
        let nt = csi[0].cols();
        let codes = self.codes_for_chunk(nt, 0, csi)?;
        Ok(CompressedBeamformingReport::from_codes(
            nt,
            self.nss,
            csi.len(),
            self.resolution,
            &codes,
        ))
    }

    /// One worker's share of the feedback pipeline: SVD right vectors, Givens
    /// decomposition and quantization for a contiguous run of subcarriers,
    /// emitting `2 * pairs` codes per subcarrier (φ codes then ψ codes).
    fn codes_for_chunk(
        &self,
        nt: usize,
        start: usize,
        chunk: &[CMatrix],
    ) -> Result<Vec<u16>, BfiError> {
        let mut scratch = WorkerScratch::new();
        let mut codes = Vec::with_capacity(chunk.len() * 2 * angle_pairs(nt, self.nss));
        for (offset, h) in chunk.iter().enumerate() {
            Svd::right_vectors_into(h, self.nss, &mut scratch.v, &mut scratch.ws);
            GivensAngles::decompose_into(&scratch.v, &mut scratch.omega, &mut scratch.angles)?;
            let angles = &scratch.angles;
            if angles.nt != nt || angles.nss != self.nss {
                return Err(BfiError::InvalidShape(format!(
                    "subcarrier {} has shape {}x{}, expected {nt}x{}",
                    start + offset,
                    angles.nt,
                    angles.nss,
                    self.nss
                )));
            }
            codes.extend(angles.phi.iter().map(|&a| quantize_phi(a, self.resolution)));
            codes.extend(angles.psi.iter().map(|&a| quantize_psi(a, self.resolution)));
        }
        Ok(codes)
    }

    /// Maps `f` over contiguous subcarrier chunks (fanning out across cores
    /// with the `parallel` feature), preserving chunk order. `f` receives the
    /// chunk's starting subcarrier index.
    fn run_chunks<T, F>(&self, csi: &[CMatrix], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &[CMatrix]) -> T + Sync,
    {
        let chunk_len = chunk_len(csi.len()).max(1);
        // A single chunk (small input or single core) needs no fan-out at all.
        if csi.len() <= chunk_len {
            return vec![f(0, csi)];
        }

        #[cfg(feature = "parallel")]
        {
            use rayon::prelude::*;
            let chunks: Vec<(usize, &[CMatrix])> = csi
                .chunks(chunk_len)
                .enumerate()
                .map(|(i, chunk)| (i * chunk_len, chunk))
                .collect();
            chunks
                .par_iter()
                .map(|&(start, chunk)| f(start, chunk))
                .collect()
        }
        #[cfg(not(feature = "parallel"))]
        // Without the parallel feature `chunk_len` covers the whole input
        // (see `chunk_len`), so the single-chunk return above always fires.
        unreachable!("single-chunk fast path covers the serial build")
    }

    /// Maps `f` over every subcarrier, chunked by core count, preserving input
    /// order. Each chunk gets its own [`WorkerScratch`].
    fn run_chunked<T, F>(&self, csi: &[CMatrix], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut WorkerScratch, &CMatrix) -> T + Sync,
    {
        let pieces: Vec<Vec<T>> = self.run_chunks(csi, |_start, chunk| {
            let mut scratch = WorkerScratch::new();
            chunk.iter().map(|h| f(&mut scratch, h)).collect()
        });
        pieces.into_iter().flatten().collect()
    }
}

/// Chunk length balancing fan-out against per-chunk workspace warm-up.
fn chunk_len(total: usize) -> usize {
    #[cfg(feature = "parallel")]
    let threads = rayon::current_num_threads();
    #[cfg(not(feature = "parallel"))]
    let threads = 1;
    total.div_ceil(threads.max(1)).max(MIN_CHUNK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use mimo_math::Complex64;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_csi(seed: u64, n: usize, subcarriers: usize) -> Vec<CMatrix> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..subcarriers)
            .map(|_| {
                CMatrix::from_fn(n, n, |_, _| {
                    Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
                })
            })
            .collect()
    }

    #[test]
    fn parallel_feedback_is_bit_exact_with_serial() {
        for (seed, n, subcarriers) in [(1, 2, 56), (2, 3, 114), (3, 4, 61)] {
            let csi = random_csi(seed, n, subcarriers);
            let engine = FeedbackEngine::new(1, AngleResolution::High);
            let parallel = engine.compute_feedback(&csi).unwrap();
            let serial = engine.compute_feedback_serial(&csi).unwrap();
            assert_eq!(parallel, serial, "n={n} subcarriers={subcarriers}");
        }
    }

    #[test]
    fn engine_feedback_matches_naive_reference_bit_exactly() {
        for (seed, n, nss) in [(5, 2, 1), (6, 3, 2), (7, 4, 4)] {
            let csi = random_csi(seed, n, 40);
            let engine = FeedbackEngine::new(nss, AngleResolution::Standard);
            let fast = engine.compute_feedback(&csi).unwrap();
            let naive =
                reference::compute_feedback_naive(&csi, nss, AngleResolution::Standard).unwrap();
            assert_eq!(fast, naive, "n={n} nss={nss}");
        }
    }

    #[test]
    fn engine_beamforming_matrices_match_naive() {
        let csi = random_csi(11, 3, 30);
        let engine = FeedbackEngine::new(2, AngleResolution::High);
        let fast = engine.beamforming_matrices(&csi);
        let naive = reference::beamforming_matrices_naive(&csi, 2);
        assert_eq!(fast, naive);
    }

    #[test]
    fn engine_angles_match_naive_decompose() {
        let csi = random_csi(13, 4, 25);
        let engine = FeedbackEngine::new(2, AngleResolution::High);
        let fast = engine.compute_angles(&csi).unwrap();
        for (h, angles) in csi.iter().zip(fast.iter()) {
            let v = mimo_math::reference::svd_naive(h).beamforming_matrix(2);
            let naive = reference::decompose_naive(&v).unwrap();
            assert_eq!(*angles, naive);
        }
    }

    #[test]
    fn empty_csi_rejected() {
        let engine = FeedbackEngine::new(1, AngleResolution::High);
        assert!(matches!(
            engine.compute_feedback(&[]),
            Err(BfiError::InvalidShape(_))
        ));
        assert!(matches!(
            engine.compute_feedback_serial(&[]),
            Err(BfiError::InvalidShape(_))
        ));
    }

    #[test]
    fn single_subcarrier_works() {
        let csi = random_csi(17, 2, 1);
        let engine = FeedbackEngine::new(1, AngleResolution::Coarse);
        let report = engine.compute_feedback(&csi).unwrap();
        assert_eq!(report.subcarriers, 1);
    }

    #[test]
    #[should_panic]
    fn zero_streams_panics() {
        let _ = FeedbackEngine::new(0, AngleResolution::High);
    }
}
