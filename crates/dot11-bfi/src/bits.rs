//! MSB-first bit-level packing primitives.
//!
//! These back the compressed-beamforming-report packing in [`crate::feedback`]
//! and are exported so other wire formats (e.g. SplitBeam's bottleneck payload
//! codec) can share the exact same bit layout: values are written most
//! significant bit first, and the final partial byte is zero-padded on the
//! right.

/// Minimal MSB-first bit writer.
///
/// Values are appended in byte-sized chunks rather than bit by bit; the
/// resulting stream is identical to a bit-at-a-time writer.
pub struct BitWriter {
    buf: Vec<u8>,
    current: u8,
    filled: u32,
}

impl BitWriter {
    /// Creates a writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            current: 0,
            filled: 0,
        }
    }

    /// Appends the `bits` least significant bits of `value`, MSB first.
    ///
    /// # Panics
    /// When `bits > 32` — the request is malformed in every build, and a
    /// silent shift-overflow in release would corrupt the wire stream.
    pub fn push(&mut self, value: u32, bits: u32) {
        assert!(bits <= 32, "BitWriter::push of {bits} bits (max 32)");
        let mut remaining = bits;
        while remaining > 0 {
            let take = (8 - self.filled).min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u32 << take) - 1)) as u8;
            // take == 8 only happens on an empty byte (filled == 0).
            self.current = if take == 8 {
                chunk
            } else {
                (self.current << take) | chunk
            };
            self.filled += take;
            remaining -= take;
            if self.filled == 8 {
                self.buf.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    /// Flushes the trailing partial byte (zero-padded) and returns the stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.current <<= 8 - self.filled;
            self.buf.push(self.current);
        }
        self.buf
    }
}

/// Minimal MSB-first bit reader.
pub struct BitReader<'a> {
    data: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`, starting at the first bit.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, bit_pos: 0 }
    }

    /// Reads the next `bits` bits as an unsigned value, or `None` when the
    /// stream is exhausted.
    ///
    /// Bits are consumed in byte-sized chunks (at most `ceil(bits / 8) + 1`
    /// iterations), not one at a time — this is on the AP's per-frame decode
    /// hot path.
    ///
    /// # Panics
    /// When `bits > 32` — enforced in release builds too, since a
    /// shift-overflow here would silently mis-decode frames on the AP's
    /// ingest path.
    pub fn pull(&mut self, bits: u32) -> Option<u32> {
        assert!(bits <= 32, "BitReader::pull of {bits} bits (max 32)");
        if self.bit_pos + bits as usize > self.data.len() * 8 {
            return None;
        }
        let mut value = 0u32;
        let mut remaining = bits;
        while remaining > 0 {
            let byte = self.data[self.bit_pos / 8];
            let avail = 8 - (self.bit_pos % 8) as u32;
            let take = avail.min(remaining);
            let chunk = (u32::from(byte) >> (avail - take)) & ((1u32 << take) - 1);
            value = (value << take) | chunk;
            self.bit_pos += take as usize;
            remaining -= take;
        }
        Some(value)
    }

    /// Bulk form of [`BitReader::pull`] for runs of equal-width codes: reads
    /// `count` values of `bits` bits each and appends them to `out`, or
    /// returns `None` (consuming nothing) when the stream holds fewer than
    /// `bits * count` remaining bits.
    ///
    /// Decodes through a 64-bit accumulator refilled a byte at a time — one
    /// shift-and-mask per code instead of [`BitReader::pull`]'s per-call
    /// bounds check and chunk loop. This is the AP's per-frame payload
    /// decode: hundreds of codes per frame, every frame, so the per-code
    /// constant dominates ingest cost. Produces exactly the values the
    /// equivalent `pull` sequence would.
    ///
    /// # Panics
    /// When `bits` lies outside `1..=16` — wider codes don't fit the `u16`
    /// output, and zero-width codes are malformed in every caller.
    pub fn pull_u16s_into(&mut self, bits: u32, count: usize, out: &mut Vec<u16>) -> Option<()> {
        assert!(
            (1..=16).contains(&bits),
            "BitReader::pull_u16s_into of {bits}-bit codes (supported: 1..=16)"
        );
        let total = bits as usize * count;
        if self.bit_pos + total > self.data.len() * 8 {
            return None;
        }
        out.reserve(count);
        let mut byte_idx = self.bit_pos / 8;
        let mut acc: u64 = 0;
        let mut nacc: u32 = 0;
        let offset = (self.bit_pos % 8) as u32;
        if offset != 0 {
            // Seed with the unread low bits of the current partial byte.
            acc = u64::from(self.data[byte_idx]) & ((1u64 << (8 - offset)) - 1);
            nacc = 8 - offset;
            byte_idx += 1;
        }
        let mask = (1u32 << bits) - 1;
        for _ in 0..count {
            // nacc stays below bits + 8 <= 24, so the accumulator never
            // sheds live bits, and the length check above keeps every
            // refill in bounds.
            while nacc < bits {
                acc = (acc << 8) | u64::from(self.data[byte_idx]);
                byte_idx += 1;
                nacc += 8;
            }
            nacc -= bits;
            out.push(((acc >> nacc) as u32 & mask) as u16);
        }
        self.bit_pos += total;
        Some(())
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.bit_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BitWriter::with_capacity_bits(12);
        w.push(0b101, 3);
        w.push(0b11110000, 8);
        w.push(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.pull(3), Some(0b101));
        assert_eq!(r.pull(8), Some(0b11110000));
        assert_eq!(r.pull(1), Some(1));
        assert_eq!(r.bits_read(), 12);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.pull(8), Some(0xFF));
        assert_eq!(r.pull(1), None);
    }

    #[test]
    fn partial_byte_is_right_zero_padded() {
        let mut w = BitWriter::with_capacity_bits(3);
        w.push(0b111, 3);
        assert_eq!(w.finish(), vec![0b1110_0000]);
    }

    #[test]
    fn bulk_pull_matches_single_pulls() {
        // Every width, from both aligned and mid-byte starting positions.
        let data: Vec<u8> = (0..64)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(11))
            .collect();
        for bits in 1..=16u32 {
            for lead in [0u32, 3, 8, 13] {
                let count = (data.len() * 8 - lead as usize) / bits as usize;
                let mut reference = BitReader::new(&data);
                reference.pull(lead).unwrap();
                let expect: Vec<u16> = (0..count)
                    .map(|_| reference.pull(bits).unwrap() as u16)
                    .collect();
                let mut bulk = BitReader::new(&data);
                bulk.pull(lead).unwrap();
                let mut got = Vec::new();
                bulk.pull_u16s_into(bits, count, &mut got).unwrap();
                assert_eq!(got, expect, "bits {bits} lead {lead}");
                assert_eq!(bulk.bits_read(), lead as usize + count * bits as usize);
            }
        }
    }

    #[test]
    fn bulk_pull_rejects_exhaustion_without_consuming() {
        let mut r = BitReader::new(&[0xAB, 0xCD]);
        let mut out = vec![7u16];
        assert_eq!(r.pull_u16s_into(5, 4, &mut out), None);
        assert_eq!(out, vec![7], "failed bulk pull must not append");
        assert_eq!(r.bits_read(), 0, "failed bulk pull must not consume");
        assert_eq!(r.pull_u16s_into(5, 3, &mut out), Some(()));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn wide_values_cross_byte_boundaries() {
        let mut w = BitWriter::with_capacity_bits(64);
        w.push(0xDEAD_BEEF, 32);
        w.push(0x1234, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.pull(32), Some(0xDEAD_BEEF));
        assert_eq!(r.pull(16), Some(0x1234));
    }
}
