//! MSB-first bit-level packing primitives.
//!
//! These back the compressed-beamforming-report packing in [`crate::feedback`]
//! and are exported so other wire formats (e.g. SplitBeam's bottleneck payload
//! codec) can share the exact same bit layout: values are written most
//! significant bit first, and the final partial byte is zero-padded on the
//! right.

/// Minimal MSB-first bit writer.
///
/// Values are appended in byte-sized chunks rather than bit by bit; the
/// resulting stream is identical to a bit-at-a-time writer.
pub struct BitWriter {
    buf: Vec<u8>,
    current: u8,
    filled: u32,
}

impl BitWriter {
    /// Creates a writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            current: 0,
            filled: 0,
        }
    }

    /// Appends the `bits` least significant bits of `value`, MSB first.
    ///
    /// # Panics
    /// When `bits > 32` — the request is malformed in every build, and a
    /// silent shift-overflow in release would corrupt the wire stream.
    pub fn push(&mut self, value: u32, bits: u32) {
        assert!(bits <= 32, "BitWriter::push of {bits} bits (max 32)");
        let mut remaining = bits;
        while remaining > 0 {
            let take = (8 - self.filled).min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u32 << take) - 1)) as u8;
            // take == 8 only happens on an empty byte (filled == 0).
            self.current = if take == 8 {
                chunk
            } else {
                (self.current << take) | chunk
            };
            self.filled += take;
            remaining -= take;
            if self.filled == 8 {
                self.buf.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    /// Flushes the trailing partial byte (zero-padded) and returns the stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.current <<= 8 - self.filled;
            self.buf.push(self.current);
        }
        self.buf
    }
}

/// Minimal MSB-first bit reader.
pub struct BitReader<'a> {
    data: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`, starting at the first bit.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, bit_pos: 0 }
    }

    /// Reads the next `bits` bits as an unsigned value, or `None` when the
    /// stream is exhausted.
    ///
    /// Bits are consumed in byte-sized chunks (at most `ceil(bits / 8) + 1`
    /// iterations), not one at a time — this is on the AP's per-frame decode
    /// hot path.
    ///
    /// # Panics
    /// When `bits > 32` — enforced in release builds too, since a
    /// shift-overflow here would silently mis-decode frames on the AP's
    /// ingest path.
    pub fn pull(&mut self, bits: u32) -> Option<u32> {
        assert!(bits <= 32, "BitReader::pull of {bits} bits (max 32)");
        if self.bit_pos + bits as usize > self.data.len() * 8 {
            return None;
        }
        let mut value = 0u32;
        let mut remaining = bits;
        while remaining > 0 {
            let byte = self.data[self.bit_pos / 8];
            let avail = 8 - (self.bit_pos % 8) as u32;
            let take = avail.min(remaining);
            let chunk = (u32::from(byte) >> (avail - take)) & ((1u32 << take) - 1);
            value = (value << take) | chunk;
            self.bit_pos += take as usize;
            remaining -= take;
        }
        Some(value)
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.bit_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BitWriter::with_capacity_bits(12);
        w.push(0b101, 3);
        w.push(0b11110000, 8);
        w.push(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.pull(3), Some(0b101));
        assert_eq!(r.pull(8), Some(0b11110000));
        assert_eq!(r.pull(1), Some(1));
        assert_eq!(r.bits_read(), 12);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.pull(8), Some(0xFF));
        assert_eq!(r.pull(1), None);
    }

    #[test]
    fn partial_byte_is_right_zero_padded() {
        let mut w = BitWriter::with_capacity_bits(3);
        w.push(0b111, 3);
        assert_eq!(w.finish(), vec![0b1110_0000]);
    }

    #[test]
    fn wide_values_cross_byte_boundaries() {
        let mut w = BitWriter::with_capacity_bits(64);
        w.push(0xDEAD_BEEF, 32);
        w.push(0x1234, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.pull(32), Some(0xDEAD_BEEF));
        assert_eq!(r.pull(16), Some(0x1234));
    }
}
