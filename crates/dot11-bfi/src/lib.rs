//! The IEEE 802.11 beamforming-feedback baseline.
//!
//! This crate implements the standard compressed beamforming feedback pipeline
//! that SplitBeam is compared against (Section III of the paper):
//!
//! * [`givens`] — Algorithm 1: decomposition of the beamforming matrix `V`
//!   into Givens-rotation angles (ψ, φ) and the inverse reconstruction,
//! * [`quantize`] — standard angle quantization with `bφ ∈ {5, 7, 9}` bits and
//!   `bψ = bφ − 2` bits,
//! * [`bits`] — the shared MSB-first bit writer/reader primitives behind every
//!   wire format in the workspace,
//! * [`feedback`] — compressed-beamforming-frame bit packing, feedback sizes
//!   and the compression-ratio formula (Eq. 9),
//! * [`pipeline`] — the complete beamformee (STA) and beamformer (AP) sides:
//!   SVD → Givens → quantize → pack at the station, unpack → dequantize →
//!   reconstruct at the access point,
//! * [`engine`] — the workspace-reusing [`FeedbackEngine`] backing the
//!   beamformee: per-thread scratch buffers and (with the default `parallel`
//!   feature) a bit-exact fan-out of the subcarrier axis across cores,
//! * [`complexity`] — the FLOP models quoted by the paper for SVD
//!   (`O((4 Nt Nr² + 22 Nt³) S)`) and Givens decomposition (`O(Nt³ Nr³ S)`).
//!
//! # Example: full 802.11 feedback round trip
//!
//! ```
//! use dot11_bfi::pipeline::{Dot11Beamformee, Dot11Beamformer};
//! use dot11_bfi::quantize::AngleResolution;
//! use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
//! use wifi_phy::ofdm::Bandwidth;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
//! let snapshot = model.sample(&mut rng);
//!
//! let sta = Dot11Beamformee::new(1, AngleResolution::High);
//! let report = sta.compute_feedback(snapshot.csi(0)).unwrap();
//! let ap = Dot11Beamformer::new();
//! let reconstructed = ap.reconstruct(&report).unwrap();
//! assert_eq!(reconstructed.len(), 56);
//! assert_eq!(reconstructed[0].shape(), (2, 1));
//! ```

pub mod bits;
pub mod complexity;
pub mod engine;
pub mod feedback;
pub mod givens;
pub mod pipeline;
pub mod quantize;
#[cfg(any(test, feature = "reference"))]
pub mod reference;

pub use engine::FeedbackEngine;
pub use feedback::CompressedBeamformingReport;
pub use givens::GivensAngles;
pub use pipeline::{Dot11Beamformee, Dot11Beamformer};
pub use quantize::AngleResolution;

/// Errors produced by the 802.11 feedback pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BfiError {
    /// The beamforming matrix has an unsupported shape (e.g. more columns than rows).
    InvalidShape(String),
    /// A compressed report could not be parsed back into angles.
    MalformedReport(String),
}

impl std::fmt::Display for BfiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BfiError::InvalidShape(msg) => write!(f, "invalid beamforming matrix shape: {msg}"),
            BfiError::MalformedReport(msg) => write!(f, "malformed compressed report: {msg}"),
        }
    }
}

impl std::error::Error for BfiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(format!("{}", BfiError::InvalidShape("1x4".into())).contains("1x4"));
        assert!(format!("{}", BfiError::MalformedReport("truncated".into())).contains("truncated"));
    }
}
