//! Naive reference implementation of the station-side feedback pipeline.
//!
//! This is the original per-subcarrier loop — naive SVD, two-pass Givens
//! decomposition with per-column scratch `Vec`s, no workspace reuse, strictly
//! serial — kept as the ground truth for equivalence tests and as the baseline
//! the `perf_report` binary measures speedups against.
//!
//! Compiled only under `cfg(test)` or the `reference` feature.

use crate::feedback::CompressedBeamformingReport;
use crate::givens::{angle_pairs, GivensAngles};
use crate::quantize::AngleResolution;
use crate::BfiError;
use mimo_math::complex::Complex64;
use mimo_math::reference::svd_naive;
use mimo_math::CMatrix;

/// The original two-pass Givens decomposition (fresh `Vec`s per column).
pub fn decompose_naive(v: &CMatrix) -> Result<GivensAngles, BfiError> {
    let (nt, nss) = v.shape();
    if nss > nt {
        return Err(BfiError::InvalidShape(format!(
            "V must be tall or square, got {nt}x{nss}"
        )));
    }
    if nt == 0 || nss == 0 {
        return Err(BfiError::InvalidShape("empty matrix".into()));
    }

    // Step 1: remove the per-column phase of the last row so that row Nt is
    // non-negative real. D̃ = diag(exp(j * angle(V[Nt-1, k]))).
    let dtilde: Vec<Complex64> = (0..nss)
        .map(|k| Complex64::cis(v[(nt - 1, k)].arg()))
        .collect();
    // Omega = V * D̃^H  (right-multiplying by the conjugate removes the phases).
    let mut omega = CMatrix::from_fn(nt, nss, |r, c| v[(r, c)] * dtilde[c].conj());

    let t_max = nss.min(nt - 1);
    let mut phi = Vec::with_capacity(angle_pairs(nt, nss));
    let mut psi = Vec::with_capacity(angle_pairs(nt, nss));

    for t in 0..t_max {
        // Phase angles of column t, rows t..nt-2 (the last row is already real).
        let mut column_phis = Vec::with_capacity(nt - 1 - t);
        for l in t..(nt - 1) {
            let angle = omega[(l, t)].arg().rem_euclid(2.0 * std::f64::consts::PI);
            column_phis.push(angle);
        }
        phi.extend(column_phis.iter().copied());

        // Apply D_t^H: multiply rows t..nt-2 by exp(-j phi).
        for (offset, &angle) in column_phis.iter().enumerate() {
            let row = t + offset;
            let rotator = Complex64::cis(-angle);
            for c in 0..nss {
                omega[(row, c)] *= rotator;
            }
        }

        // Givens rotations zeroing rows t+1..nt-1 of column t.
        for l in (t + 1)..nt {
            let a = omega[(t, t)].re;
            let b = omega[(l, t)].re;
            let denom = (a * a + b * b).sqrt();
            let angle = if denom < 1e-300 {
                0.0
            } else {
                (a / denom).clamp(-1.0, 1.0).acos()
            };
            psi.push(angle);
            let (cos_psi, sin_psi) = (angle.cos(), angle.sin());
            // Apply G_{l,t} (a real rotation acting on rows t and l).
            for c in 0..nss {
                let top = omega[(t, c)];
                let bottom = omega[(l, c)];
                omega[(t, c)] = top.scale(cos_psi) + bottom.scale(sin_psi);
                omega[(l, c)] = bottom.scale(cos_psi) - top.scale(sin_psi);
            }
        }
    }

    Ok(GivensAngles { nt, nss, phi, psi })
}

/// The original per-subcarrier beamforming-matrix computation: one naive SVD
/// (allocating throughout its sweeps) per subcarrier.
pub fn beamforming_matrices_naive(csi: &[CMatrix], nss: usize) -> Vec<CMatrix> {
    csi.iter()
        .map(|h| svd_naive(h).beamforming_matrix(nss))
        .collect()
}

/// The original station-side pipeline: serial SVD → Givens → quantize → pack
/// with no buffer reuse anywhere.
///
/// # Errors
/// Returns [`BfiError::InvalidShape`] when the CSI is empty or a beamforming
/// matrix cannot be decomposed.
pub fn compute_feedback_naive(
    csi: &[CMatrix],
    nss: usize,
    resolution: AngleResolution,
) -> Result<CompressedBeamformingReport, BfiError> {
    if csi.is_empty() {
        return Err(BfiError::InvalidShape("no subcarriers in CSI".into()));
    }
    let angles: Result<Vec<GivensAngles>, BfiError> = csi
        .iter()
        .map(|h| {
            let v = svd_naive(h).beamforming_matrix(nss);
            decompose_naive(&v)
        })
        .collect();
    CompressedBeamformingReport::pack(&angles?, resolution)
}
