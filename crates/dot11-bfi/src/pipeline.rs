//! The complete 802.11 beamformee / beamformer pipeline.
//!
//! * The **beamformee** (station) side takes the estimated CSI of every
//!   subcarrier and produces a [`CompressedBeamformingReport`]:
//!   SVD → take the first `Nss` right singular vectors → Givens decomposition →
//!   angle quantization → bit packing. This is exactly the computation whose
//!   cost SplitBeam removes from the station.
//! * The **beamformer** (AP) side unpacks the report, dequantizes the angles
//!   and reconstructs the per-subcarrier beamforming matrices `Ṽ`, which feed
//!   the zero-forcing precoder.

use crate::engine::FeedbackEngine;
use crate::feedback::CompressedBeamformingReport;
use crate::givens::GivensAngles;
use crate::quantize::AngleResolution;
use crate::BfiError;
use mimo_math::CMatrix;
use serde::{Deserialize, Serialize};

/// The station side of the 802.11 feedback pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dot11Beamformee {
    /// Number of spatial streams the station feeds back.
    pub nss: usize,
    /// Angle quantization resolution.
    pub resolution: AngleResolution,
}

impl Dot11Beamformee {
    /// Creates a beamformee reporting `nss` streams at the given resolution.
    ///
    /// # Panics
    /// Panics if `nss == 0`.
    pub fn new(nss: usize, resolution: AngleResolution) -> Self {
        assert!(nss > 0, "at least one spatial stream required");
        Self { nss, resolution }
    }

    /// The [`FeedbackEngine`] carrying this beamformee's configuration.
    pub fn engine(&self) -> FeedbackEngine {
        FeedbackEngine::new(self.nss, self.resolution)
    }

    /// Computes the ideal (unquantized) beamforming matrices from per-subcarrier CSI.
    ///
    /// Delegates to the workspace-reusing [`FeedbackEngine`], which fans the
    /// subcarrier axis out across cores when the `parallel` feature (default)
    /// is enabled; results are bit-exact with the serial path.
    pub fn beamforming_matrices(&self, csi: &[CMatrix]) -> Vec<CMatrix> {
        self.engine().beamforming_matrices(csi)
    }

    /// Runs the full station-side pipeline: SVD, Givens decomposition,
    /// quantization and packing, via the workspace-reusing [`FeedbackEngine`].
    ///
    /// # Errors
    /// Returns [`BfiError::InvalidShape`] when the CSI is empty or the derived
    /// beamforming matrices cannot be decomposed.
    pub fn compute_feedback(
        &self,
        csi: &[CMatrix],
    ) -> Result<CompressedBeamformingReport, BfiError> {
        self.engine().compute_feedback(csi)
    }
}

/// The access-point side of the 802.11 feedback pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dot11Beamformer;

impl Dot11Beamformer {
    /// Creates a beamformer.
    pub fn new() -> Self {
        Self
    }

    /// Reconstructs the per-subcarrier beamforming matrices from a compressed report.
    ///
    /// # Errors
    /// Returns [`BfiError::MalformedReport`] when the report payload is inconsistent.
    pub fn reconstruct(
        &self,
        report: &CompressedBeamformingReport,
    ) -> Result<Vec<CMatrix>, BfiError> {
        Ok(report
            .unpack()?
            .iter()
            .map(GivensAngles::reconstruct)
            .collect())
    }
}

/// Convenience function: runs the full 802.11 feedback round trip (station and
/// AP side) and returns the beamforming matrices the AP would use.
///
/// # Errors
/// Propagates any [`BfiError`] from the two pipeline halves.
pub fn dot11_feedback_roundtrip(
    csi: &[CMatrix],
    nss: usize,
    resolution: AngleResolution,
) -> Result<Vec<CMatrix>, BfiError> {
    let sta = Dot11Beamformee::new(nss, resolution);
    let report = sta.compute_feedback(csi)?;
    Dot11Beamformer::new().reconstruct(&report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::givens::canonicalize_column_phases;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::Bandwidth;

    fn sample_csi(seed: u64, n: usize) -> Vec<CMatrix> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, n, n, 1);
        model.sample(&mut rng).csi(0).to_vec()
    }

    #[test]
    fn roundtrip_produces_orthonormal_matrices() {
        let csi = sample_csi(1, 3);
        let rebuilt = dot11_feedback_roundtrip(&csi, 1, AngleResolution::High).unwrap();
        assert_eq!(rebuilt.len(), csi.len());
        for v in &rebuilt {
            assert_eq!(v.shape(), (3, 1));
            assert!(v.is_unitary_columns(1e-9));
        }
    }

    #[test]
    fn roundtrip_close_to_ideal_beamforming() {
        let csi = sample_csi(2, 2);
        let sta = Dot11Beamformee::new(1, AngleResolution::High);
        let ideal = sta.beamforming_matrices(&csi);
        let rebuilt = dot11_feedback_roundtrip(&csi, 1, AngleResolution::High).unwrap();
        for (v, v_hat) in ideal.iter().zip(rebuilt.iter()) {
            let canonical = canonicalize_column_phases(v);
            let err = canonical.sub(v_hat).max_abs();
            assert!(
                err < 0.05,
                "high-resolution roundtrip error {err} too large"
            );
        }
    }

    #[test]
    fn coarse_quantization_is_worse_than_high() {
        let csi = sample_csi(3, 3);
        let sta = Dot11Beamformee::new(1, AngleResolution::High);
        let ideal = sta.beamforming_matrices(&csi);
        let high = dot11_feedback_roundtrip(&csi, 1, AngleResolution::High).unwrap();
        let coarse = dot11_feedback_roundtrip(&csi, 1, AngleResolution::Coarse).unwrap();
        let err = |rebuilt: &[CMatrix]| -> f64 {
            ideal
                .iter()
                .zip(rebuilt.iter())
                .map(|(v, v_hat)| canonicalize_column_phases(v).sub(v_hat).frobenius_norm())
                .sum::<f64>()
        };
        assert!(err(&coarse) > err(&high));
    }

    #[test]
    fn report_size_smaller_than_raw_csi() {
        let csi = sample_csi(4, 3);
        let sta = Dot11Beamformee::new(1, AngleResolution::High);
        let report = sta.compute_feedback(&csi).unwrap();
        let raw = crate::feedback::raw_csi_bits(3, 3, csi.len());
        assert!(report.size_bits() < raw);
    }

    #[test]
    fn empty_csi_rejected() {
        let sta = Dot11Beamformee::new(1, AngleResolution::High);
        assert!(matches!(
            sta.compute_feedback(&[]),
            Err(BfiError::InvalidShape(_))
        ));
    }

    #[test]
    #[should_panic]
    fn zero_streams_panics() {
        let _ = Dot11Beamformee::new(0, AngleResolution::High);
    }
}
