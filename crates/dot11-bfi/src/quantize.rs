//! Quantization of the Givens angles.
//!
//! The standard quantizes φ with `bφ` bits over `[0, 2π)` and ψ with
//! `bψ = bφ − 2` bits over `[0, π/2]`, using the mid-rise grids
//! `φ = kπ/2^(bφ−1) + π/2^bφ` and `ψ = kπ/2^(bψ+1) + π/2^(bψ+2)`.
//! The paper uses `bφ ∈ {7, 9}` for MU-MIMO feedback (plus the coarser SU
//! setting `bφ = 5`), and 16 bits per complex channel entry as the uncompressed
//! reference.

use serde::{Deserialize, Serialize};

/// Angle quantization resolution (the `(bψ, bφ)` pairs allowed by the standard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AngleResolution {
    /// `bφ = 5`, `bψ = 3` — coarse single-user feedback.
    Coarse,
    /// `bφ = 7`, `bψ = 5` — the default MU-MIMO resolution.
    Standard,
    /// `bφ = 9`, `bψ = 7` — the maximum-resolution MU-MIMO feedback used in
    /// the paper's overhead example.
    High,
}

impl AngleResolution {
    /// Number of bits used for each φ angle.
    pub fn phi_bits(self) -> u32 {
        match self {
            AngleResolution::Coarse => 5,
            AngleResolution::Standard => 7,
            AngleResolution::High => 9,
        }
    }

    /// Number of bits used for each ψ angle (`bφ − 2`).
    pub fn psi_bits(self) -> u32 {
        self.phi_bits() - 2
    }

    /// Average number of bits per angle (the `(bφ + bψ)/2` of the airtime formula).
    pub fn bits_per_angle_avg(self) -> f64 {
        (self.phi_bits() + self.psi_bits()) as f64 / 2.0
    }
}

/// Quantizes a φ angle (radians, any value) to its code index.
pub fn quantize_phi(angle: f64, resolution: AngleResolution) -> u16 {
    let bits = resolution.phi_bits();
    let levels = 1u32 << bits;
    let wrapped = angle.rem_euclid(2.0 * std::f64::consts::PI);
    let step = std::f64::consts::PI / (1u64 << (bits - 1)) as f64;
    let offset = std::f64::consts::PI / (1u64 << bits) as f64;
    let idx = ((wrapped - offset) / step).round();
    (idx.rem_euclid(levels as f64)) as u16
}

/// Reconstructs the φ angle from its code index.
pub fn dequantize_phi(index: u16, resolution: AngleResolution) -> f64 {
    let bits = resolution.phi_bits();
    let step = std::f64::consts::PI / (1u64 << (bits - 1)) as f64;
    let offset = std::f64::consts::PI / (1u64 << bits) as f64;
    index as f64 * step + offset
}

/// Quantizes a ψ angle (radians, in `[0, π/2]`) to its code index.
pub fn quantize_psi(angle: f64, resolution: AngleResolution) -> u16 {
    let bits = resolution.psi_bits();
    let levels = 1u32 << bits;
    let step = std::f64::consts::PI / (1u64 << (bits + 1)) as f64;
    let offset = std::f64::consts::PI / (1u64 << (bits + 2)) as f64;
    let clamped = angle.clamp(0.0, std::f64::consts::FRAC_PI_2);
    let idx = ((clamped - offset) / step).round();
    idx.clamp(0.0, (levels - 1) as f64) as u16
}

/// Reconstructs the ψ angle from its code index.
pub fn dequantize_psi(index: u16, resolution: AngleResolution) -> f64 {
    let bits = resolution.psi_bits();
    let step = std::f64::consts::PI / (1u64 << (bits + 1)) as f64;
    let offset = std::f64::consts::PI / (1u64 << (bits + 2)) as f64;
    index as f64 * step + offset
}

/// Maximum quantization error of the φ grid (half a step).
pub fn phi_max_error(resolution: AngleResolution) -> f64 {
    std::f64::consts::PI / (1u64 << resolution.phi_bits()) as f64
}

/// Maximum quantization error of the ψ grid (half a step).
pub fn psi_max_error(resolution: AngleResolution) -> f64 {
    std::f64::consts::PI / (1u64 << (resolution.psi_bits() + 2)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL: [AngleResolution; 3] = [
        AngleResolution::Coarse,
        AngleResolution::Standard,
        AngleResolution::High,
    ];

    #[test]
    fn bit_widths_match_standard() {
        assert_eq!(AngleResolution::Coarse.phi_bits(), 5);
        assert_eq!(AngleResolution::Standard.phi_bits(), 7);
        assert_eq!(AngleResolution::High.phi_bits(), 9);
        for r in ALL {
            assert_eq!(r.psi_bits(), r.phi_bits() - 2);
        }
        assert!((AngleResolution::High.bits_per_angle_avg() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn phi_roundtrip_error_bounded() {
        for r in ALL {
            let max_err = phi_max_error(r);
            for k in 0..200 {
                let angle = k as f64 * 2.0 * std::f64::consts::PI / 200.0;
                let rebuilt = dequantize_phi(quantize_phi(angle, r), r);
                let diff = (angle - rebuilt).abs();
                let wrapped = diff.min(2.0 * std::f64::consts::PI - diff);
                assert!(
                    wrapped <= max_err + 1e-12,
                    "{r:?}: angle {angle} error {wrapped} > {max_err}"
                );
            }
        }
    }

    #[test]
    fn psi_roundtrip_error_bounded() {
        for r in ALL {
            let max_err = psi_max_error(r);
            for k in 0..200 {
                let angle = k as f64 * std::f64::consts::FRAC_PI_2 / 200.0;
                let rebuilt = dequantize_psi(quantize_psi(angle, r), r);
                assert!(
                    (angle - rebuilt).abs() <= max_err + 1e-12,
                    "{r:?}: angle {angle} error {} > {max_err}",
                    (angle - rebuilt).abs()
                );
            }
        }
    }

    #[test]
    fn higher_resolution_is_more_accurate() {
        assert!(phi_max_error(AngleResolution::High) < phi_max_error(AngleResolution::Standard));
        assert!(phi_max_error(AngleResolution::Standard) < phi_max_error(AngleResolution::Coarse));
        assert!(psi_max_error(AngleResolution::High) < psi_max_error(AngleResolution::Coarse));
    }

    #[test]
    fn indices_fit_in_bit_width() {
        for r in ALL {
            for k in 0..500 {
                let angle = k as f64 * 0.02;
                assert!((quantize_phi(angle, r) as u32) < (1 << r.phi_bits()));
                assert!((quantize_psi(angle, r) as u32) < (1 << r.psi_bits()));
            }
        }
    }

    #[test]
    fn negative_phi_wraps() {
        let r = AngleResolution::Standard;
        let idx = quantize_phi(-0.3, r);
        let rebuilt = dequantize_phi(idx, r);
        let expected = (-0.3f64).rem_euclid(2.0 * std::f64::consts::PI);
        let diff = (rebuilt - expected).abs();
        let wrapped = diff.min(2.0 * std::f64::consts::PI - diff);
        assert!(wrapped <= phi_max_error(r) + 1e-12);
    }

    proptest! {
        #[test]
        fn prop_phi_quantization_bounded(angle in 0.0f64..(2.0 * std::f64::consts::PI)) {
            for r in ALL {
                let rebuilt = dequantize_phi(quantize_phi(angle, r), r);
                let diff = (angle - rebuilt).abs();
                let wrapped = diff.min(2.0 * std::f64::consts::PI - diff);
                prop_assert!(wrapped <= phi_max_error(r) + 1e-9);
            }
        }

        #[test]
        fn prop_psi_quantization_bounded(angle in 0.0f64..std::f64::consts::FRAC_PI_2) {
            for r in ALL {
                let rebuilt = dequantize_psi(quantize_psi(angle, r), r);
                prop_assert!((angle - rebuilt).abs() <= psi_max_error(r) + 1e-9);
            }
        }
    }
}
