//! Self-tests for the model-checking runtime, on toy scenarios with known
//! answers. Build with `RUSTFLAGS="--cfg splitbeam_model"`; without the cfg
//! this file compiles to nothing.
#![cfg(splitbeam_model)]

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use loom::cell::UnsafeCell;
use loom::model::{explore, Config, Scenario};
use loom::sync::atomic::AtomicUsize;

fn cfg() -> Config {
    Config {
        max_executions: 1_000_000,
        max_steps: 500,
    }
}

/// Release-store / acquire-load handoff of a plain cell: no race, and the
/// reader (which spins until the flag flips) always observes the write.
#[test]
fn release_acquire_handoff_is_clean() {
    struct Shared {
        data: UnsafeCell<usize>,
        flag: AtomicUsize,
    }
    // SAFETY: all cross-thread access to `data` is mediated by the model
    // checker, which is exactly what this test exercises.
    unsafe impl Sync for Shared {}

    let report = explore(&cfg(), || {
        let shared = Arc::new(Shared {
            data: UnsafeCell::new(0),
            flag: AtomicUsize::new(0),
        });
        let seen = Arc::new(Mutex::new(0usize));
        let writer = {
            let shared = Arc::clone(&shared);
            Box::new(move || {
                shared.data.with_mut(|p| {
                    // SAFETY: the flag protocol gives the writer exclusive
                    // access before the release store.
                    unsafe { *p = 42 }
                });
                shared.flag.store(1, Ordering::Release);
            }) as Box<dyn FnOnce() + Send>
        };
        let reader = {
            let shared = Arc::clone(&shared);
            let seen = Arc::clone(&seen);
            Box::new(move || {
                while shared.flag.load(Ordering::Acquire) == 0 {
                    loom::thread::yield_now();
                }
                // SAFETY: acquire-load of flag==1 synchronizes with the
                // writer's release store, ordering the write before us.
                let v = shared.data.with(|p| unsafe { *p });
                *seen.lock().unwrap() = v;
            }) as Box<dyn FnOnce() + Send>
        };
        let check = {
            let seen = Arc::clone(&seen);
            Box::new(move || {
                assert_eq!(
                    *seen.lock().unwrap(),
                    42,
                    "reader missed the published value"
                );
            }) as Box<dyn FnOnce()>
        };
        Scenario {
            threads: vec![writer, reader],
            check,
        }
    });
    assert!(
        report.failure.is_none(),
        "unexpected failure: {}",
        report.failure.unwrap()
    );
    assert!(
        report.complete,
        "exploration did not exhaust the schedule tree"
    );
    assert!(
        report.executions >= 2,
        "expected at least two interleavings"
    );
}

/// Same handoff but the flag store is Relaxed: the model must flag the cell
/// read as a data race even though interleavings are explored
/// sequentially-consistently.
#[test]
fn relaxed_publish_is_reported_as_race() {
    struct Shared {
        data: UnsafeCell<usize>,
        flag: AtomicUsize,
    }
    // SAFETY: accesses are mediated by the model checker; the race this
    // scenario plants is detected before any real unsynchronized access.
    unsafe impl Sync for Shared {}

    let report = explore(&cfg(), || {
        let shared = Arc::new(Shared {
            data: UnsafeCell::new(0),
            flag: AtomicUsize::new(0),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            Box::new(move || {
                shared.data.with_mut(|p| {
                    // SAFETY: exclusive by protocol intent; the deliberately
                    // broken publish below is what the test checks for.
                    unsafe { *p = 42 }
                });
                shared.flag.store(1, Ordering::Relaxed); // deliberately wrong
            }) as Box<dyn FnOnce() + Send>
        };
        let reader = {
            let shared = Arc::clone(&shared);
            Box::new(move || {
                while shared.flag.load(Ordering::Acquire) == 0 {
                    loom::thread::yield_now();
                }
                // SAFETY: intentionally unsound — flag was stored relaxed,
                // so no happens-before edge exists; the checker must abort
                // before this read executes.
                shared.data.with(|p| unsafe { *p });
            }) as Box<dyn FnOnce() + Send>
        };
        Scenario {
            threads: vec![writer, reader],
            check: Box::new(|| {}),
        }
    });
    let failure = report
        .failure
        .expect("relaxed publish must be reported as a data race");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure kind: {failure}"
    );
}

/// Two unsynchronized increments of a shared counter (load/add/store with
/// relaxed atomics): exhaustive exploration must find the lost-update
/// interleaving where the final value is 1.
#[test]
fn exhaustive_search_finds_lost_update() {
    let report = explore(&cfg(), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let mk = |c: Arc<AtomicUsize>| {
            Box::new(move || {
                let v = c.load(Ordering::Relaxed);
                c.store(v + 1, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send>
        };
        let check = {
            let counter = Arc::clone(&counter);
            Box::new(move || {
                // The buggy final value 1 must be *reached* by some schedule.
                assert_eq!(counter.load(Ordering::Relaxed), 2);
            }) as Box<dyn FnOnce()>
        };
        Scenario {
            threads: vec![mk(Arc::clone(&counter)), mk(counter)],
            check,
        }
    });
    let failure = report
        .failure
        .expect("the lost-update schedule must be found");
    assert!(
        failure.message.contains("check failed"),
        "expected a check failure, got: {failure}"
    );
}

/// Sleep sets must not prune the *absence* of a bug into a false positive:
/// a correct CAS-based counter passes exhaustively.
#[test]
fn cas_counter_is_exact_under_exhaustive_search() {
    let report = explore(&cfg(), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let mk = |c: Arc<AtomicUsize>| {
            // No yield in this retry loop: a failed CAS can succeed on
            // retry without any other thread storing, so spin-parking
            // (which waits for a store) would be a false deadlock.
            Box::new(move || loop {
                let v = c.load(Ordering::Relaxed);
                if c.compare_exchange(v, v + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    break;
                }
            }) as Box<dyn FnOnce() + Send>
        };
        let check = {
            let counter = Arc::clone(&counter);
            Box::new(move || {
                assert_eq!(counter.load(Ordering::Relaxed), 3);
            }) as Box<dyn FnOnce()>
        };
        Scenario {
            threads: vec![
                mk(Arc::clone(&counter)),
                mk(Arc::clone(&counter)),
                mk(counter),
            ],
            check,
        }
    });
    assert!(
        report.failure.is_none(),
        "unexpected failure: {}",
        report.failure.unwrap()
    );
    assert!(report.complete);
}

/// Threads spinning on a flag nobody will ever set: reported as a deadlock
/// (lost wakeup), not explored forever.
#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    let report = explore(&cfg(), || {
        let flag = Arc::new(AtomicUsize::new(0));
        let mk = |f: Arc<AtomicUsize>| {
            Box::new(move || {
                while f.load(Ordering::Acquire) == 0 {
                    loom::thread::yield_now();
                }
            }) as Box<dyn FnOnce() + Send>
        };
        Scenario {
            threads: vec![mk(Arc::clone(&flag)), mk(flag)],
            check: Box::new(|| {}),
        }
    });
    let failure = report.failure.expect("spin with no waker must deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure kind: {failure}"
    );
}
