//! Deterministic exhaustive scheduler behind the model-build facade.
//!
//! Architecture, in one breath: scenario threads run on a persistent pool of
//! OS workers, but only ever one at a time — every facade operation
//! *announces* itself and blocks until the scheduler *grants* it. Once every
//! live thread is parked at an announce point, the last thread to arrive
//! makes the scheduling decision itself (no dedicated scheduler thread, and
//! granting yourself costs no context switch). Decisions are recorded on a
//! persistent DFS path; after each execution the controller backtracks the
//! deepest node with an untried alternative and replays the prefix. Sleep
//! sets prune interleavings that only commute independent operations.
//!
//! Memory semantics: interleavings are explored sequentially-consistently,
//! while release/acquire edges are tracked with vector clocks — a `Release`
//! store publishes the writer's clock at the location, an `Acquire` load
//! joins it, `Relaxed` does neither. `UnsafeCell` accesses are not branch
//! points (their verdict depends only on the atomic-op order) but are
//! checked against that happens-before relation; an unordered pair is
//! reported as a data race. This is what catches a deliberately weakened
//! ordering even though the exploration itself never reorders memory.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// Location id used for operations that touch no location (yield, fence).
const NO_LOC: usize = usize::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Kind {
    Load,
    Store,
    Rmw,
    Yield,
    Fence,
}

/// A scheduling-relevant operation: the location is a per-execution dense id
/// assigned in deterministic (decision-point, thread-id) order so that
/// descriptors recorded by different executions of the same DFS prefix are
/// comparable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct OpDesc {
    id: usize,
    kind: Kind,
}

fn is_sched_only(kind: Kind) -> bool {
    matches!(kind, Kind::Yield | Kind::Fence)
}

fn is_write(d: OpDesc) -> bool {
    matches!(d.kind, Kind::Store | Kind::Rmw)
}

/// Independence relation for sleep sets. Writes are dependent on anything at
/// the same location and on yields (a write can wake a spinning thread);
/// loads commute with loads; yields and fences commute with everything that
/// does not write.
fn independent(a: OpDesc, b: OpDesc) -> bool {
    match (is_sched_only(a.kind), is_sched_only(b.kind)) {
        (true, true) => true,
        (true, false) => !is_write(b),
        (false, true) => !is_write(a),
        (false, false) => a.id != b.id || (!is_write(a) && !is_write(b)),
    }
}

#[derive(Clone, Copy)]
struct Pending {
    addr: usize,
    kind: Kind,
    /// `store_epoch` at announce time; a `Yield` is enabled only once the
    /// epoch has advanced (some thread wrote something).
    epoch: u64,
    id: Option<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing user code between announce points (or not yet started).
    Busy,
    /// Parked at an announce point, waiting for a grant.
    Announced,
    Done,
}

struct ModelThread {
    status: Status,
    pending: Option<Pending>,
    grant: bool,
    clock: Vec<u64>,
}

/// One decision point on the persistent DFS path.
struct Node {
    chosen: usize,
    op: OpDesc,
    enabled: Vec<(usize, OpDesc)>,
    sleep: Vec<(usize, OpDesc)>,
    tried: Vec<(usize, OpDesc)>,
}

#[derive(Default)]
struct AtomicState {
    /// Vector clock published by the latest release-or-stronger store (kept
    /// alive through RMWs, mirroring C11 release sequences).
    msg: Option<Vec<u64>>,
}

struct CellState {
    last_write: Option<(usize, u64)>,
    reads: Vec<(usize, u64)>,
}

struct WorkerSlot {
    body: Option<Box<dyn FnOnce() + Send>>,
}

struct Exec {
    active: bool,
    aborted: bool,
    pruned: bool,
    failure: Option<Failure>,
    threads: Vec<ModelThread>,
    live: usize,
    running: Option<usize>,
    store_epoch: u64,
    depth: usize,
    loc_ids: HashMap<usize, usize>,
    next_loc: usize,
    atomics: HashMap<usize, AtomicState>,
    cells: HashMap<usize, CellState>,
    path: Vec<Node>,
    trace: Vec<(usize, Kind, usize)>,
    workers: Vec<WorkerSlot>,
    shutdown: bool,
}

impl Exec {
    fn new(n: usize) -> Self {
        let mut ex = Exec {
            active: false,
            aborted: false,
            pruned: false,
            failure: None,
            threads: Vec::new(),
            live: 0,
            running: None,
            store_epoch: 0,
            depth: 0,
            loc_ids: HashMap::new(),
            next_loc: 0,
            atomics: HashMap::new(),
            cells: HashMap::new(),
            path: Vec::new(),
            trace: Vec::new(),
            workers: (0..n).map(|_| WorkerSlot { body: None }).collect(),
            shutdown: false,
        };
        ex.reset(n);
        ex.live = 0;
        ex
    }

    /// Per-execution state back to the start line; the DFS `path`, worker
    /// slots, and shutdown flag survive across executions.
    fn reset(&mut self, n: usize) {
        self.active = false;
        self.aborted = false;
        self.pruned = false;
        self.failure = None;
        self.threads = (0..n)
            .map(|_| ModelThread {
                status: Status::Busy,
                pending: None,
                grant: false,
                clock: vec![0; n],
            })
            .collect();
        self.live = n;
        self.running = None;
        self.store_epoch = 0;
        self.depth = 0;
        self.loc_ids.clear();
        self.next_loc = 0;
        self.atomics.clear();
        self.cells.clear();
        self.trace.clear();
    }
}

struct Engine {
    state: Mutex<Exec>,
    cv: Condvar,
    max_steps: usize,
}

/// Panic payload used to unwind scenario threads out of user code when an
/// execution is torn down (race found, prune, budget); swallowed by the
/// worker loop and silenced by the panic hook.
struct ModelAbort;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Engine>, usize)>> =
        const { std::cell::RefCell::new(None) };
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Pruned/aborted executions unwind via panics thousands of times per
/// exploration; route them past the default printing hook exactly once per
/// process.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET_PANICS.with(|q| q.get()) {
                return;
            }
            previous(info);
        }));
    });
}

fn lock(engine: &Engine) -> MutexGuard<'_, Exec> {
    // Worker panics are part of normal operation here; poisoning carries no
    // information.
    engine.state.lock().unwrap_or_else(|p| p.into_inner())
}

fn panic_abort() -> ! {
    panic::panic_any(ModelAbort)
}

fn join_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn render_trace(trace: &[(usize, Kind, usize)]) -> Vec<String> {
    trace
        .iter()
        .map(|&(tid, kind, id)| {
            if id == NO_LOC {
                format!("t{tid} {kind:?}")
            } else {
                format!("t{tid} {kind:?}@L{id}")
            }
        })
        .collect()
}

fn record_failure(ex: &mut Exec, message: String) {
    if ex.failure.is_none() {
        ex.failure = Some(Failure {
            message,
            trace: render_trace(&ex.trace),
        });
    }
    ex.aborted = true;
}

/// The scheduling decision. Runs only when every live thread is parked at an
/// announce point; replays the persistent DFS path while it lasts, then
/// extends it with a fresh node (applying the sleep set inherited from the
/// parent). Grants exactly one thread or tears the execution down.
fn try_decide(engine: &Engine, ex: &mut Exec) {
    if !ex.active || ex.aborted || ex.running.is_some() || ex.live == 0 {
        return;
    }
    if ex.threads.iter().any(|t| t.status == Status::Busy) {
        return;
    }

    // Assign location ids in thread-id order at the decision point — the
    // announce *order* is racy between workers, the announced *set* is not,
    // so this keeps ids deterministic across replays.
    for i in 0..ex.threads.len() {
        if ex.threads[i].status != Status::Announced {
            continue;
        }
        let addr = ex.threads[i]
            .pending
            .as_ref()
            .map(|p| (p.addr, p.kind, p.id));
        if let Some((addr, kind, None)) = addr {
            let id = if is_sched_only(kind) {
                NO_LOC
            } else {
                match ex.loc_ids.get(&addr) {
                    Some(&id) => id,
                    None => {
                        let id = ex.next_loc;
                        ex.next_loc += 1;
                        ex.loc_ids.insert(addr, id);
                        id
                    }
                }
            };
            ex.threads[i]
                .pending
                .as_mut()
                .expect("pending just read")
                .id = Some(id);
        }
    }

    let mut enabled: Vec<(usize, OpDesc)> = Vec::new();
    for (i, t) in ex.threads.iter().enumerate() {
        if t.status != Status::Announced {
            continue;
        }
        let p = t.pending.expect("announced thread has a pending op");
        let runnable = match p.kind {
            Kind::Yield => ex.store_epoch > p.epoch,
            _ => true,
        };
        if runnable {
            enabled.push((
                i,
                OpDesc {
                    id: p.id.expect("ids assigned above"),
                    kind: p.kind,
                },
            ));
        }
    }

    if enabled.is_empty() {
        record_failure(
            ex,
            format!(
                "deadlock: all {} live thread(s) are spin-waiting and no further store can wake them",
                ex.live
            ),
        );
        return;
    }

    let (tid, op) = if ex.depth < ex.path.len() {
        let want = ex.path[ex.depth].chosen;
        match enabled.iter().copied().find(|&(t, _)| t == want) {
            Some(e) => e,
            None => {
                record_failure(
                    ex,
                    format!(
                        "model internal error: replay diverged at step {} (thread {} not enabled) — scenario is nondeterministic outside facade ops",
                        ex.depth, want
                    ),
                );
                return;
            }
        }
    } else {
        let sleep: Vec<(usize, OpDesc)> = match ex.path.last() {
            Some(parent) => parent
                .sleep
                .iter()
                .chain(parent.tried.iter())
                .filter(|&&(_, o)| independent(o, parent.op))
                .copied()
                .collect(),
            None => Vec::new(),
        };
        let candidates: Vec<(usize, OpDesc)> = enabled
            .iter()
            .filter(|(t, _)| !sleep.iter().any(|(u, _)| u == t))
            .copied()
            .collect();
        if candidates.is_empty() {
            // Every enabled move is covered by a sibling subtree.
            ex.pruned = true;
            ex.aborted = true;
            return;
        }
        let prefer = ex.path.last().map(|n| n.chosen);
        let pick = candidates
            .iter()
            .copied()
            .find(|&(t, _)| Some(t) == prefer)
            .unwrap_or(candidates[0]);
        ex.path.push(Node {
            chosen: pick.0,
            op: pick.1,
            enabled,
            sleep,
            tried: Vec::new(),
        });
        pick
    };

    if ex.depth >= engine.max_steps {
        record_failure(
            ex,
            format!(
                "schedule exceeded max_steps={} — likely livelock in the scenario",
                engine.max_steps
            ),
        );
        return;
    }

    ex.trace.push((tid, op.kind, op.id));
    ex.depth += 1;
    ex.running = Some(tid);
    ex.threads[tid].grant = true;
}

/// Announce `kind` at `addr`, wait to be granted, and return with the engine
/// lock held and this thread marked as the unique runner. Panics with
/// [`ModelAbort`] if the execution is torn down while waiting.
fn announce_and_wait<'a>(
    engine: &'a Engine,
    mut ex: MutexGuard<'a, Exec>,
    tid: usize,
    addr: usize,
    kind: Kind,
) -> MutexGuard<'a, Exec> {
    if ex.aborted {
        drop(ex);
        panic_abort();
    }
    ex.threads[tid].status = Status::Announced;
    ex.threads[tid].pending = Some(Pending {
        addr,
        kind,
        epoch: ex.store_epoch,
        id: None,
    });
    if ex.running == Some(tid) {
        ex.running = None;
    }
    try_decide(engine, &mut ex);
    engine.cv.notify_all();
    while !ex.threads[tid].grant {
        if ex.aborted {
            drop(ex);
            panic_abort();
        }
        ex = engine.cv.wait(ex).unwrap_or_else(|p| p.into_inner());
    }
    if ex.aborted {
        drop(ex);
        panic_abort();
    }
    ex.threads[tid].grant = false;
    ex.threads[tid].status = Status::Busy;
    ex.threads[tid].pending = None;
    ex.threads[tid].clock[tid] += 1;
    ex
}

/// Release/acquire bookkeeping handle passed to the facade's op closures.
pub(crate) struct Commit<'a> {
    ex: &'a mut Exec,
    tid: usize,
    addr: usize,
}

impl Commit<'_> {
    pub(crate) fn load_side(&mut self, acquire: bool) {
        if !acquire {
            return;
        }
        if let Some(st) = self.ex.atomics.get(&self.addr) {
            if let Some(msg) = &st.msg {
                join_into(&mut self.ex.threads[self.tid].clock, msg);
            }
        }
    }

    pub(crate) fn store_side(&mut self, release: bool) {
        self.ex.store_epoch += 1;
        let msg = release.then(|| self.ex.threads[self.tid].clock.clone());
        self.ex.atomics.entry(self.addr).or_default().msg = msg;
    }

    /// A relaxed RMW keeps an existing release message alive (C11 release
    /// sequences continue through RMWs); a releasing RMW joins its clock in.
    pub(crate) fn rmw_store_side(&mut self, release: bool) {
        self.ex.store_epoch += 1;
        if release {
            let clk = self.ex.threads[self.tid].clock.clone();
            let st = self.ex.atomics.entry(self.addr).or_default();
            st.msg = Some(match st.msg.take() {
                Some(mut m) => {
                    join_into(&mut m, &clk);
                    m
                }
                None => clk,
            });
        }
    }
}

/// Run one scheduled operation: announce, wait for the grant, then invoke
/// `f` (which performs the real memory operation and reports its ordering
/// semantics through [`Commit`]) under the engine lock. Returns `None` when
/// the calling thread is not a scenario thread inside an active execution —
/// the facade then falls back to plain `std` behavior.
pub(crate) fn with_op<R>(
    addr: usize,
    kind: Kind,
    f: impl FnOnce(&mut Commit<'_>) -> R,
) -> Option<R> {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    let (engine, tid) = ctx?;
    let ex = lock(&engine);
    if !ex.active {
        return None;
    }
    let mut ex = announce_and_wait(&engine, ex, tid, addr, kind);
    let mut commit = Commit {
        ex: &mut ex,
        tid,
        addr,
    };
    let result = f(&mut commit);
    drop(ex);
    Some(result)
}

/// `thread::yield_now` in a scenario thread: park until some other thread
/// performs an atomic write. Returns `false` outside an execution.
pub(crate) fn spin_yield() -> bool {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    let Some((engine, tid)) = ctx else {
        return false;
    };
    let ex = lock(&engine);
    if !ex.active {
        return false;
    }
    let ex = announce_and_wait(&engine, ex, tid, 0, Kind::Yield);
    drop(ex);
    true
}

pub(crate) fn fence(order: std::sync::atomic::Ordering) {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    let Some((engine, tid)) = ctx else {
        std::sync::atomic::fence(order);
        return;
    };
    let ex = lock(&engine);
    if !ex.active {
        drop(ex);
        std::sync::atomic::fence(order);
        return;
    }
    let ex = announce_and_wait(&engine, ex, tid, 0, Kind::Fence);
    drop(ex);
}

/// Happens-before check for an `UnsafeCell` access. Not a scheduling point:
/// the race verdict depends only on the order of the surrounding atomic
/// operations, so branching here would multiply the state space without
/// reaching new verdicts. Panics (aborting the execution) on a detected
/// race, *before* the caller touches the cell.
pub(crate) fn cell_access(addr: usize, write: bool) {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    let Some((engine, tid)) = ctx else {
        return;
    };
    let mut ex = lock(&engine);
    if !ex.active {
        return;
    }
    if ex.aborted {
        drop(ex);
        panic_abort();
    }
    ex.threads[tid].clock[tid] += 1;
    let race: Option<String> = {
        let Exec { threads, cells, .. } = &mut *ex;
        let clock = &threads[tid].clock;
        let st = cells.entry(addr).or_insert(CellState {
            last_write: None,
            reads: Vec::new(),
        });
        let mut race = None;
        if let Some((writer, at)) = st.last_write {
            if writer != tid && clock[writer] < at {
                race = Some(format!(
                    "data race: cell {} by t{tid} is unordered with a write by t{writer}",
                    if write { "write" } else { "read" },
                ));
            }
        }
        if write && race.is_none() {
            for &(reader, at) in &st.reads {
                if reader != tid && clock[reader] < at {
                    race = Some(format!(
                        "data race: cell write by t{tid} is unordered with a read by t{reader}",
                    ));
                    break;
                }
            }
        }
        if race.is_none() {
            if write {
                st.last_write = Some((tid, clock[tid]));
                st.reads.clear();
            } else {
                match st.reads.iter_mut().find(|(r, _)| *r == tid) {
                    Some(slot) => slot.1 = clock[tid],
                    None => st.reads.push((tid, clock[tid])),
                }
            }
        }
        race
    };
    if let Some(message) = race {
        record_failure(&mut ex, message);
        engine.cv.notify_all();
        drop(ex);
        panic_abort();
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_main(engine: Arc<Engine>, idx: usize) {
    loop {
        let body = {
            let mut ex = lock(&engine);
            loop {
                if ex.shutdown {
                    return;
                }
                if let Some(b) = ex.workers[idx].body.take() {
                    break b;
                }
                ex = engine.cv.wait(ex).unwrap_or_else(|p| p.into_inner());
            }
        };
        CURRENT.with(|c| *c.borrow_mut() = Some((engine.clone(), idx)));
        QUIET_PANICS.with(|q| q.set(true));
        let result = panic::catch_unwind(AssertUnwindSafe(body));
        QUIET_PANICS.with(|q| q.set(false));
        CURRENT.with(|c| *c.borrow_mut() = None);
        let mut ex = lock(&engine);
        if let Err(payload) = result {
            if !payload.is::<ModelAbort>() && !ex.aborted {
                let message = format!(
                    "model thread {idx} panicked: {}",
                    payload_message(payload.as_ref())
                );
                record_failure(&mut ex, message);
            }
        }
        ex.threads[idx].status = Status::Done;
        ex.threads[idx].pending = None;
        if ex.running == Some(idx) {
            ex.running = None;
        }
        ex.live -= 1;
        try_decide(&engine, &mut ex);
        engine.cv.notify_all();
    }
}

/// Advance the persistent DFS path to the next unexplored schedule; `false`
/// means the whole tree is exhausted.
fn backtrack(path: &mut Vec<Node>) -> bool {
    loop {
        let Some(node) = path.last_mut() else {
            return false;
        };
        node.tried.push((node.chosen, node.op));
        let next = node.enabled.iter().copied().find(|(t, _)| {
            !node.tried.iter().any(|(u, _)| u == t) && !node.sleep.iter().any(|(u, _)| u == t)
        });
        match next {
            Some((t, op)) => {
                node.chosen = t;
                node.op = op;
                return true;
            }
            None => {
                path.pop();
            }
        }
    }
}

/// Exploration limits. `max_steps` bounds a single execution (a tripped
/// bound is reported as a failure — with spin-parking it indicates a
/// genuine livelock); `max_executions` bounds the whole exploration (a
/// tripped bound leaves `Report::complete` false).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    pub max_executions: u64,
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_executions: 50_000_000,
            max_steps: 4_000,
        }
    }
}

/// One concurrent scenario: the thread bodies to interleave plus a final
/// check run single-threaded after every complete execution.
pub struct Scenario {
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    pub check: Box<dyn FnOnce()>,
}

#[derive(Debug)]
pub struct Failure {
    pub message: String,
    /// The schedule that produced the failure, oldest step first
    /// (`t<tid> <op>@L<loc>`).
    pub trace: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        writeln!(f, "schedule ({} steps):", self.trace.len())?;
        for step in &self.trace {
            writeln!(f, "  {step}")?;
        }
        Ok(())
    }
}

#[derive(Debug)]
pub struct Report {
    /// Executions attempted, including sleep-set-pruned partial ones.
    pub executions: u64,
    /// Total scheduling decisions across all executions.
    pub steps: u64,
    /// True when the DFS exhausted every non-equivalent interleaving.
    pub complete: bool,
    pub failure: Option<Failure>,
}

/// Exhaustively explore all interleavings of the scenario (modulo sleep-set
/// equivalence). The factory is invoked once per execution and must build
/// the same logical scenario every time — all nondeterminism must flow
/// through facade operations.
pub fn explore<F: FnMut() -> Scenario>(config: &Config, mut scenario: F) -> Report {
    install_quiet_hook();
    let first = scenario();
    let n = first.threads.len();
    assert!(n > 0, "scenario needs at least one thread");
    let engine = Arc::new(Engine {
        state: Mutex::new(Exec::new(n)),
        cv: Condvar::new(),
        max_steps: config.max_steps,
    });
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let engine = engine.clone();
            std::thread::Builder::new()
                .name(format!("loom-worker-{i}"))
                .spawn(move || worker_main(engine, i))
                .expect("spawn model worker")
        })
        .collect();

    let mut report = Report {
        executions: 0,
        steps: 0,
        complete: false,
        failure: None,
    };
    let mut next = Some(first);
    loop {
        if report.executions >= config.max_executions {
            break;
        }
        let Scenario { threads, check } = next.take().unwrap_or_else(&mut scenario);
        assert_eq!(
            threads.len(),
            n,
            "scenario must build the same number of threads every execution"
        );
        {
            let mut ex = lock(&engine);
            ex.reset(n);
            for (i, body) in threads.into_iter().enumerate() {
                ex.workers[i].body = Some(body);
            }
            ex.active = true;
            engine.cv.notify_all();
        }
        let (failure, pruned, depth) = {
            let mut ex = lock(&engine);
            while ex.live > 0 {
                ex = engine.cv.wait(ex).unwrap_or_else(|p| p.into_inner());
            }
            ex.active = false;
            (ex.failure.take(), ex.pruned, ex.depth)
        };
        report.executions += 1;
        report.steps += depth as u64;
        if let Some(f) = failure {
            report.failure = Some(f);
            break;
        }
        if !pruned {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(check)) {
                let ex = lock(&engine);
                report.failure = Some(Failure {
                    message: format!(
                        "post-execution check failed: {}",
                        payload_message(payload.as_ref())
                    ),
                    trace: render_trace(&ex.trace),
                });
                break;
            }
        }
        let more = {
            let mut ex = lock(&engine);
            backtrack(&mut ex.path)
        };
        if !more {
            report.complete = true;
            break;
        }
    }

    {
        let mut ex = lock(&engine);
        ex.shutdown = true;
        engine.cv.notify_all();
    }
    for h in handles {
        let _ = h.join();
    }
    report
}
