//! Offline loom-style concurrency facade.
//!
//! In normal builds every type in here is a zero-cost passthrough to `std`:
//! [`cell::UnsafeCell`] is a `#[repr(transparent)]` wrapper whose
//! `with`/`with_mut` closures inline to a raw pointer call, and
//! [`sync::atomic`] re-exports the real atomics. Code written against the
//! facade compiles to exactly what it compiled to before.
//!
//! Under `RUSTFLAGS="--cfg splitbeam_model"` the same API becomes an
//! **exhaustive deterministic model checker** (see [`model`]): every atomic
//! operation and every `thread::yield_now` is a scheduling point, a DFS with
//! sleep-set partial-order reduction enumerates all interleavings of a small
//! scenario, and vector-clock happens-before tracking flags unsynchronized
//! `UnsafeCell` access as a data race — which is how weakened
//! acquire/release orderings are caught even though interleavings themselves
//! are explored sequentially-consistently.
//!
//! Deliberate approximations (documented so test authors know the envelope):
//!
//! - `SeqCst` is modeled as `AcqRel`: programs that rely on the seq-cst
//!   *total order* (Dekker-style mutual exclusion) may report spurious races.
//!   The ring relies only on release/acquire pairs, which are modeled
//!   precisely.
//! - `compare_exchange_weak` never fails spuriously in the model (spurious
//!   failure only adds retry loops, which the spin handling already covers).
//! - `fence` is a scheduling point but contributes no synchronization edges;
//!   code whose correctness depends on fences needs a richer model.

#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(splitbeam_model)]
mod runtime;

/// Exhaustive exploration entry points; only exists under
/// `--cfg splitbeam_model`.
#[cfg(splitbeam_model)]
pub mod model {
    pub use crate::runtime::{explore, Config, Failure, Report, Scenario};
}

pub mod cell {
    /// Shareable mutable container with a closure-based access API.
    ///
    /// The closure style (rather than `get()`) exists so the model build can
    /// observe every access: in normal builds `with`/`with_mut` compile to
    /// the raw pointer call, in model builds each call is race-checked
    /// against all other threads' accesses via vector clocks.
    #[cfg(not(splitbeam_model))]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(splitbeam_model))]
    impl<T> UnsafeCell<T> {
        pub const fn new(value: T) -> Self {
            Self(std::cell::UnsafeCell::new(value))
        }

        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }

    /// Model-build variant: each access is first validated against the
    /// happens-before relation recorded by the scheduler; a racy access
    /// aborts the execution *before* the closure runs, so the model never
    /// performs the UB it is reporting.
    #[cfg(splitbeam_model)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(splitbeam_model)]
    impl<T> UnsafeCell<T> {
        pub const fn new(value: T) -> Self {
            Self(std::cell::UnsafeCell::new(value))
        }

        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            crate::runtime::cell_access(self.0.get() as usize, false);
            f(self.0.get())
        }

        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            crate::runtime::cell_access(self.0.get() as usize, true);
            f(self.0.get())
        }
    }
}

pub mod sync {
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        #[cfg(not(splitbeam_model))]
        pub use std::sync::atomic::{fence, AtomicUsize};

        /// Scheduling point only; the model does not add fence-induced
        /// synchronization edges (see crate docs).
        #[cfg(splitbeam_model)]
        pub fn fence(order: Ordering) {
            crate::runtime::fence(order);
        }

        #[cfg(splitbeam_model)]
        fn read_syncs(order: Ordering) -> bool {
            matches!(
                order,
                Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
            )
        }

        #[cfg(splitbeam_model)]
        fn write_syncs(order: Ordering) -> bool {
            matches!(
                order,
                Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
            )
        }

        /// Model-build atomic: every operation announces itself to the
        /// scheduler (a branch point for the DFS), then performs the real
        /// operation under the engine lock and applies the release/acquire
        /// clock semantics of its ordering. Outside an active exploration
        /// (construction in the scenario factory, teardown in `Drop`,
        /// normal `cargo test` of a model-built crate) operations fall
        /// through to plain `std` behavior.
        #[cfg(splitbeam_model)]
        #[derive(Debug)]
        pub struct AtomicUsize {
            inner: std::sync::atomic::AtomicUsize,
        }

        #[cfg(splitbeam_model)]
        impl AtomicUsize {
            pub const fn new(value: usize) -> Self {
                Self {
                    inner: std::sync::atomic::AtomicUsize::new(value),
                }
            }

            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            pub fn load(&self, order: Ordering) -> usize {
                crate::runtime::with_op(self.addr(), crate::runtime::Kind::Load, |c| {
                    let v = self.inner.load(Ordering::Relaxed);
                    c.load_side(read_syncs(order));
                    v
                })
                .unwrap_or_else(|| self.inner.load(order))
            }

            pub fn store(&self, value: usize, order: Ordering) {
                crate::runtime::with_op(self.addr(), crate::runtime::Kind::Store, |c| {
                    self.inner.store(value, Ordering::Relaxed);
                    c.store_side(write_syncs(order));
                })
                .unwrap_or_else(|| self.inner.store(value, order))
            }

            pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
                crate::runtime::with_op(self.addr(), crate::runtime::Kind::Rmw, |c| {
                    let v = self.inner.fetch_add(value, Ordering::Relaxed);
                    c.load_side(read_syncs(order));
                    c.rmw_store_side(write_syncs(order));
                    v
                })
                .unwrap_or_else(|| self.inner.fetch_add(value, order))
            }

            pub fn compare_exchange(
                &self,
                current: usize,
                new: usize,
                success: Ordering,
                failure: Ordering,
            ) -> Result<usize, usize> {
                crate::runtime::with_op(self.addr(), crate::runtime::Kind::Rmw, |c| {
                    match self.inner.compare_exchange(
                        current,
                        new,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(v) => {
                            c.load_side(read_syncs(success));
                            c.rmw_store_side(write_syncs(success));
                            Ok(v)
                        }
                        Err(v) => {
                            c.load_side(read_syncs(failure));
                            Err(v)
                        }
                    }
                })
                .unwrap_or_else(|| self.inner.compare_exchange(current, new, success, failure))
            }

            /// Modeled as the strong variant: no spurious failures (see
            /// crate docs).
            pub fn compare_exchange_weak(
                &self,
                current: usize,
                new: usize,
                success: Ordering,
                failure: Ordering,
            ) -> Result<usize, usize> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    }
}

pub mod thread {
    #[cfg(not(splitbeam_model))]
    pub use std::thread::yield_now;

    /// In the model, `yield_now` declares "I am spinning": the thread is
    /// parked until *some* other thread performs an atomic write. This keeps
    /// spin-retry loops from exploding the schedule space (a spin step never
    /// stutters) and turns a lost wakeup into a detected deadlock instead of
    /// a livelock.
    ///
    /// Contract: only call it when the retry can make progress *solely*
    /// after another thread's write (ring Full/Empty waits qualify; a
    /// failed-CAS retry loop does not — it can succeed unaided and would
    /// be reported as a spurious deadlock).
    #[cfg(splitbeam_model)]
    pub fn yield_now() {
        if !crate::runtime::spin_yield() {
            std::thread::yield_now();
        }
    }
}
