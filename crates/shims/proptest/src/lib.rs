//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this shim re-implements
//! the `proptest!` macro surface the workspace tests rely on: range strategies
//! over the numeric primitives, `proptest::collection::vec`, `ProptestConfig`,
//! and the `prop_assert!`/`prop_assert_eq!` macros. Sampling is deterministic
//! (seeded from the test name), so failures are reproducible; there is no
//! shrinking — a failing case panics with the sampled values visible in the
//! assertion message.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name so every test gets a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            return 0;
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Strategy abstraction: something that can produce values for a property test.
pub mod strategy {
    use super::TestRng;

    /// A source of test values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }
}

use strategy::Strategy;

macro_rules! int_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*
    };
}

float_strategy!(f32, f64);

/// Strategy combinators over collections, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`], mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Declares property tests, mirroring the `proptest!` macro.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a
/// plain `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Skips the current case when an assumption does not hold, mirroring
/// `prop_assume!`. Without shrinking there is nothing to unwind, so the case
/// simply advances the sample loop with `continue`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts equality, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges_sample_in_bounds");
        for _ in 0..200 {
            let x = (1usize..5).sample(&mut rng);
            assert!((1..5).contains(&x));
            let y = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&y));
            let z = (2u8..=4).sample(&mut rng);
            assert!((2..=4).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::deterministic("vec_strategy_respects_length");
        let strat = crate::collection::vec(-5.0f32..5.0, 1..32);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..32).contains(&v.len()));
            assert!(v.iter().all(|x| (-5.0..5.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expansion_works(a in 0usize..10, b in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
        }
    }
}
