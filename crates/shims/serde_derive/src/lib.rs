//! Derive macros for the offline serde shim.
//!
//! These derives emit marker-trait impls (`impl serde::Serialize for T {}` and
//! the `Deserialize` twin). They are deliberately tiny: the workspace's types
//! are all concrete (no generic parameters), so the parser only needs to find
//! the item name. Deriving on a generic item is a compile error rather than a
//! silently wrong impl.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive is attached to.
///
/// Returns `Err` with a human-readable message when the item shape is not
/// supported (generic items, unions, exotic token layouts).
fn item_name(input: &TokenStream) -> Result<String, String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                match word.as_str() {
                    "pub" => {
                        // Skip an optional visibility scope like `pub(crate)`.
                        if let Some(TokenTree::Group(_)) = tokens.peek() {
                            let _ = tokens.next();
                        }
                    }
                    "struct" | "enum" => {
                        let name = match tokens.next() {
                            Some(TokenTree::Ident(name)) => name.to_string(),
                            other => {
                                return Err(format!("expected item name, found {other:?}"));
                            }
                        };
                        if let Some(TokenTree::Punct(p)) = tokens.peek() {
                            if p.as_char() == '<' {
                                return Err(format!(
                                    "the offline serde shim cannot derive for generic item `{name}`"
                                ));
                            }
                        }
                        return Ok(name);
                    }
                    "union" => return Err("the offline serde shim cannot derive for unions".into()),
                    _ => {}
                }
            }
            _ => {}
        }
    }
    Err("no struct or enum found in derive input".into())
}

fn emit(input: TokenStream, make_impl: fn(&str) -> String) -> TokenStream {
    match item_name(&input) {
        Ok(name) => make_impl(&name).parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Implements the shim's `serde::Serialize` marker for a concrete struct/enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Implements the shim's `serde::Deserialize<'de>` marker for a concrete struct/enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
