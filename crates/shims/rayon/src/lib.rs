//! Offline stand-in for `rayon`.
//!
//! Provides the small parallel-iterator surface the workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` plus `join` — implemented
//! with `std::thread::scope` over contiguous chunks. Results are concatenated
//! in input order, so a parallel map is *order-identical* (and therefore
//! bit-identical) to its serial counterpart; with one available core the work
//! degenerates to a plain serial loop with no thread spawns.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use.
///
/// Honors `RAYON_NUM_THREADS` (like real rayon's default pool) so tests that
/// must stay single-threaded — e.g. allocation-sentinel scopes, where a
/// `thread::scope` spawn would itself allocate — can pin the shim serial.
/// The value is read once per process.
pub fn current_num_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs two closures, in parallel when more than one core is available.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        (handle.join().expect("rayon-shim join worker panicked"), rb)
    })
}

/// Borrowing conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, preserving input order.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting a `collect`.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: FromParallelVec<U>>(self) -> C {
        C::from_ordered_vec(self.run())
    }

    fn run(self) -> Vec<U> {
        let n = self.slice.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut pieces: Vec<Vec<U>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
                .collect();
            for handle in handles {
                pieces.push(handle.join().expect("rayon-shim map worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for piece in pieces {
            out.extend(piece);
        }
        out
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelVec<U> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallelVec<U> for Vec<U> {
    fn from_ordered_vec(v: Vec<U>) -> Self {
        v
    }
}

/// Mutably-borrowing conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type yielded by mutable reference.
    type Item: Send + 'a;

    /// Returns a parallel iterator over `&mut self`'s elements.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// A parallel iterator over mutable slice elements.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Maps every element through `f`, preserving input order.
    pub fn map<U, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        U: Send,
        F: Fn(&'a mut T) -> U + Sync,
    {
        ParMapMut {
            slice: self.slice,
            f,
        }
    }
}

/// The result of [`ParIterMut::map`], awaiting a `collect`.
pub struct ParMapMut<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T: Send, U: Send, F: Fn(&'a mut T) -> U + Sync> ParMapMut<'a, T, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: FromParallelVec<U>>(self) -> C {
        C::from_ordered_vec(self.run())
    }

    fn run(self) -> Vec<U> {
        let n = self.slice.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 {
            return self.slice.iter_mut().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut pieces: Vec<Vec<U>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks_mut(chunk)
                .map(|part| scope.spawn(move || part.iter_mut().map(f).collect::<Vec<U>>()))
                .collect();
            for handle in handles {
                pieces.push(handle.join().expect("rayon-shim map worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for piece in pieces {
            out.extend(piece);
        }
        out
    }
}

/// A fork-join scope handed to the closure of [`scope`], mirroring
/// `rayon::Scope`. Tasks spawned on it may borrow from the enclosing
/// environment (`'env`) and are guaranteed to finish before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` as a scoped task running on its own thread. The closure
    /// receives the scope again so it can spawn nested tasks, like rayon's.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

/// Structured fork-join region, mirroring `rayon::scope`: all tasks spawned
/// on the scope complete before the call returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|inner| f(&Scope { inner }))
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
    pub use crate::IntoParallelRefMutIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 21 * 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_slice_maps_to_empty_vec() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn mut_map_mutates_in_place_and_preserves_order() {
        let mut input: Vec<u64> = (0..300).collect();
        let out: Vec<u64> = input
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x * 10
            })
            .collect();
        assert_eq!(input, (1..=300).collect::<Vec<_>>());
        assert_eq!(out, (1..=300).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    // Nested spawn, as rayon allows.
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
            "done"
        });
        assert_eq!(result, "done");
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn empty_mut_slice_maps_to_empty_vec() {
        let mut input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter_mut().map(|&mut x| x).collect();
        assert!(out.is_empty());
    }
}
