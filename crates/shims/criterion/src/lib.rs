//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's `benches/` files
//! use (`benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) on top of a simple wall-clock
//! harness: a short warm-up, then timed batches until a sampling budget is
//! reached, reporting the per-iteration mean and best batch. There are no
//! statistical comparisons or HTML reports — the numbers print to stdout.

use std::time::{Duration, Instant};

/// Measures one benchmark body.
pub struct Bencher {
    iters_per_batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `body`, collecting batched samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm up and size batches so one batch is ~1 ms.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(body());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as u64 / warmup_iters.max(1);
        self.iters_per_batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let budget = Duration::from_millis(200);
        let run_start = Instant::now();
        while run_start.elapsed() < budget && self.samples.len() < 64 {
            let batch_start = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(body());
            }
            self.samples.push(batch_start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_nanos() as f64 / self.iters_per_batch as f64;
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let best = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        println!("{label:<48} mean {mean:>12.1} ns/iter   best {best:>12.1} ns/iter");
    }
}

/// Identifies one parameterized benchmark, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Benchmarks `body` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters_per_batch: 1,
            samples: Vec::new(),
        };
        body(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut body: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_batch: 1,
            samples: Vec::new(),
        };
        body(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Top-level harness, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("-- group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_batch: 1,
            samples: Vec::new(),
        };
        body(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor of `std::hint`).
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
