//! Offline stand-in for the `serde` facade.
//!
//! The build environment for this workspace has no access to crates.io, so the
//! workspace vendors the minimal serde surface it actually relies on: the
//! `Serialize` / `Deserialize` marker traits and derive macros that implement
//! them. No wire format ships with this shim — binaries that need to persist
//! data (e.g. the `perf_report` JSON emitter) hand-roll their output — but the
//! trait bounds and derives keep every type in the workspace serialization-ready
//! so the real serde can be dropped in without touching downstream code.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// Implemented structurally by `#[derive(Serialize)]`: the derive checks that
/// every field is itself `Serialize`, so swapping in the real serde later
/// cannot surface new bound failures.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Blanket check helper used by derives: asserts a field type is serializable.
#[doc(hidden)]
pub fn __assert_serialize<T: Serialize + ?Sized>() {}

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_primitives!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}

impl<T: Serialize + ?Sized> Serialize for &T {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
