//! Offline stand-in for `rand_chacha`.
//!
//! Provides `ChaCha8Rng` / `ChaCha20Rng` names backed by the deterministic
//! xoshiro256** core of the workspace's `rand` shim. The streams are seedable
//! and reproducible, which is the only property the reproduction relies on;
//! they are *not* bitwise-compatible with the real ChaCha keystream.

/// Stand-in for `rand_chacha::ChaCha8Rng`.
pub use rand::ChaCha8Core as ChaCha8Rng;

/// Stand-in for `rand_chacha::ChaCha20Rng`.
pub use rand::ChaCha20Core as ChaCha20Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn seedable_and_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(a.next_u64(), b.next_u64());
        let x: f64 = a.gen_range(-1.0..1.0);
        assert!((-1.0..1.0).contains(&x));
    }
}
