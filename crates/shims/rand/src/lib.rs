//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of `rand` the workspace uses — `Rng::gen`, `gen_range`, `gen_bool`,
//! `SeedableRng::seed_from_u64`, `StdRng`, and `seq::SliceRandom::shuffle` —
//! backed by a deterministic xoshiro256** generator seeded via SplitMix64.
//! Streams are reproducible across runs and platforms, which is all the
//! reproduction needs (seeds select *a* fixed pseudo-random channel, not a
//! bitwise-compatible `rand` stream).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (32 bytes for all generators in this shim).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a canonical uniform distribution.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$t as Random>::random(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit = <$t as Random>::random(rng);
                    lo + unit * (hi - lo)
                }
            }
        )*
    };
}

float_range!(f32, f64);

macro_rules! int_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = uniform_u64_below(rng, span);
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    // Full-width inclusive ranges never occur in this workspace,
                    // so the +1 cannot overflow u64 here.
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    let offset = uniform_u64_below(rng, span);
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*
    };
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection method
/// (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// SplitMix64 — used to expand `u64` seeds into full generator state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** core shared by [`StdRng`] and `rand_chacha`'s re-exported types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is the one degenerate fixed point; nudge it.
        if s.iter().all(|&w| w == 0) {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! named_rng {
    ($(#[$meta:meta])* $name:ident, $domain:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(mut seed: Self::Seed) -> Self {
                // Mix a per-type domain tag into the seed so differently named
                // generators with the same seed produce distinct streams.
                for (b, d) in seed.iter_mut().zip($domain.iter().cycle()) {
                    *b ^= *d;
                }
                Self(Xoshiro256::from_seed_bytes(seed))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

named_rng!(
    /// The default deterministic generator (stands in for `rand::rngs::StdRng`).
    StdRng,
    b"stdrng__"
);
named_rng!(
    /// Stand-in for `rand_chacha::ChaCha8Rng` (re-exported by the `rand_chacha` shim).
    ChaCha8Core,
    b"chacha8_"
);
named_rng!(
    /// Stand-in for `rand_chacha::ChaCha20Rng`.
    ChaCha20Core,
    b"chacha20"
);

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }

    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        crate::uniform_u64_below(rng, bound as u64) as usize
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Random, Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f32 = rng.gen_range(0.5f32..2.0);
            assert!((0.5..2.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn named_rngs_have_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = ChaCha8Core::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
