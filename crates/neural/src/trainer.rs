//! Mini-batch training loop with validation-best checkpointing.
//!
//! Mirrors the training procedure of Section IV-D: mini-batches of 16, 40
//! epochs, the step learning-rate schedule, and keeping the parameters that
//! achieve the best validation metric (the paper validates on BER; callers can
//! supply any scalar metric through [`Trainer::fit_with_metric`], defaulting to
//! the validation loss).

use crate::loss::Loss;
use crate::network::{Network, TrainScratch};
use crate::optimizer::{Optimizer, OptimizerKind, StepSchedule};
use crate::tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One supervised example: an input vector and its target vector.
pub type Example = (Vec<f32>, Vec<f32>);

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: StepSchedule,
    /// Whether to shuffle the training split every epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            batch_size: 16,
            schedule: StepSchedule::paper_default(),
            shuffle: true,
        }
    }
}

/// Loss trajectory of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation metric per epoch (validation loss unless a custom metric is supplied).
    pub validation_metric: Vec<f32>,
    /// Epoch index whose parameters were kept (best validation metric).
    pub best_epoch: usize,
}

impl TrainHistory {
    /// Training loss of the first epoch.
    pub fn initial_train_loss(&self) -> f32 {
        self.train_loss.first().copied().unwrap_or(f32::NAN)
    }

    /// Training loss of the last epoch.
    pub fn final_train_loss(&self) -> f32 {
        self.train_loss.last().copied().unwrap_or(f32::NAN)
    }

    /// Best validation metric observed.
    pub fn best_validation_metric(&self) -> f32 {
        self.validation_metric
            .get(self.best_epoch)
            .copied()
            .unwrap_or(f32::NAN)
    }
}

/// A reusable training harness.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    loss: Loss,
    optimizer_kind: OptimizerKind,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig, loss: Loss, optimizer_kind: OptimizerKind) -> Self {
        Self {
            config,
            loss,
            optimizer_kind,
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `network` on `train` while tracking the validation loss on
    /// `validation`; the network is left with the parameters of the best epoch.
    pub fn fit(
        &self,
        network: &mut Network,
        train: &[Example],
        validation: &[Example],
        rng: &mut impl Rng,
    ) -> TrainHistory {
        let loss = self.loss;
        self.fit_with_metric(network, train, validation, rng, |net, val| {
            if val.is_empty() {
                f32::INFINITY
            } else {
                let (x, t) = batch_matrices(val);
                match net.forward(&x) {
                    Ok(pred) => loss.evaluate(&pred, &t),
                    Err(_) => f32::INFINITY,
                }
            }
        })
    }

    /// Trains `network`, using `metric` (lower is better) evaluated on the
    /// validation split after every epoch to select the parameters to keep —
    /// the paper evaluates the achieved BER here.
    ///
    /// The loop holds one [`TrainScratch`] for the whole run: batch matrices,
    /// per-layer activations, gradient buffers and optimizer state are all
    /// reused across batches and epochs, so after the first batch a training
    /// step performs no heap allocation. The arithmetic is element-for-element
    /// identical to the original allocating loop (kept as
    /// `fit_with_metric_reference` for the equivalence test), so loss curves
    /// do not drift.
    pub fn fit_with_metric<M>(
        &self,
        network: &mut Network,
        train: &[Example],
        validation: &[Example],
        rng: &mut impl Rng,
        mut metric: M,
    ) -> TrainHistory
    where
        M: FnMut(&Network, &[Example]) -> f32,
    {
        assert!(!train.is_empty(), "training split must not be empty");
        let mut optimizer = Optimizer::new(self.optimizer_kind, network.layers().len());
        let mut indices: Vec<usize> = (0..train.len()).collect();

        let mut history = TrainHistory {
            train_loss: Vec::with_capacity(self.config.epochs),
            validation_metric: Vec::with_capacity(self.config.epochs),
            best_epoch: 0,
        };
        let mut best_metric = f32::INFINITY;
        let mut best_params: Option<Network> = None;

        let mut scratch = TrainScratch::new();
        let mut x = Matrix::zeros(1, 1);
        let mut t = Matrix::zeros(1, 1);
        let mut grad = Matrix::zeros(1, 1);

        for epoch in 0..self.config.epochs {
            if self.config.shuffle {
                indices.shuffle(rng);
            }
            let lr_factor = self.config.schedule.factor_at(epoch);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in indices.chunks(self.config.batch_size.max(1)) {
                fill_batch(train, chunk, &mut x, &mut t);
                network.forward_training_into(&x, &mut scratch);
                epoch_loss += self.loss.evaluate(scratch.prediction(), &t);
                batches += 1;
                self.loss.gradient_into(scratch.prediction(), &t, &mut grad);
                network.backward_into(&x, &grad, &mut scratch);
                optimizer.step(network, &scratch.grads, lr_factor);
            }
            history.train_loss.push(epoch_loss / batches.max(1) as f32);

            let val_metric = metric(network, validation);
            history.validation_metric.push(val_metric);
            if val_metric < best_metric {
                best_metric = val_metric;
                history.best_epoch = epoch;
                best_params = Some(network.clone());
            }
        }

        if let Some(best) = best_params {
            *network = best;
        }
        history
    }

    /// The original allocating training loop, kept verbatim as the behavioral
    /// reference for the buffer-reusing [`Trainer::fit_with_metric`].
    #[cfg(any(test, feature = "reference"))]
    pub fn fit_with_metric_reference<M>(
        &self,
        network: &mut Network,
        train: &[Example],
        validation: &[Example],
        rng: &mut impl Rng,
        mut metric: M,
    ) -> TrainHistory
    where
        M: FnMut(&Network, &[Example]) -> f32,
    {
        assert!(!train.is_empty(), "training split must not be empty");
        let mut optimizer = Optimizer::new(self.optimizer_kind, network.layers().len());
        let mut indices: Vec<usize> = (0..train.len()).collect();

        let mut history = TrainHistory {
            train_loss: Vec::with_capacity(self.config.epochs),
            validation_metric: Vec::with_capacity(self.config.epochs),
            best_epoch: 0,
        };
        let mut best_metric = f32::INFINITY;
        let mut best_params: Option<Network> = None;

        for epoch in 0..self.config.epochs {
            if self.config.shuffle {
                indices.shuffle(rng);
            }
            let lr_factor = self.config.schedule.factor_at(epoch);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in indices.chunks(self.config.batch_size.max(1)) {
                let examples: Vec<&Example> = chunk.iter().map(|&i| &train[i]).collect();
                let (x, t) = batch_matrices_ref(&examples);
                let (pred, caches) = network.forward_training(&x);
                epoch_loss += self.loss.evaluate(&pred, &t);
                batches += 1;
                let grad = self.loss.gradient(&pred, &t);
                let grads = network.backward(&caches, &grad);
                optimizer.step(network, &grads, lr_factor);
            }
            history.train_loss.push(epoch_loss / batches.max(1) as f32);

            let val_metric = metric(network, validation);
            history.validation_metric.push(val_metric);
            if val_metric < best_metric {
                best_metric = val_metric;
                history.best_epoch = epoch;
                best_params = Some(network.clone());
            }
        }

        if let Some(best) = best_params {
            *network = best;
        }
        history
    }
}

/// Fills the reusable batch matrices from the selected training examples.
fn fill_batch(train: &[Example], chunk: &[usize], x: &mut Matrix, t: &mut Matrix) {
    let batch = chunk.len();
    let in_dim = train[chunk[0]].0.len();
    let out_dim = train[chunk[0]].1.len();
    x.reshape_zeroed(batch, in_dim);
    t.reshape_zeroed(batch, out_dim);
    for (row, &idx) in chunk.iter().enumerate() {
        let (input, target) = &train[idx];
        x.as_mut_slice()[row * in_dim..(row + 1) * in_dim].copy_from_slice(input);
        t.as_mut_slice()[row * out_dim..(row + 1) * out_dim].copy_from_slice(target);
    }
}

/// Stacks examples into `(inputs, targets)` batch matrices.
fn batch_matrices(examples: &[Example]) -> (Matrix, Matrix) {
    let refs: Vec<&Example> = examples.iter().collect();
    batch_matrices_ref(&refs)
}

fn batch_matrices_ref(examples: &[&Example]) -> (Matrix, Matrix) {
    let batch = examples.len();
    let in_dim = examples[0].0.len();
    let out_dim = examples[0].1.len();
    let mut x = Matrix::zeros(batch, in_dim);
    let mut t = Matrix::zeros(batch, out_dim);
    for (row, (input, target)) in examples.iter().enumerate() {
        x.as_mut_slice()[row * in_dim..(row + 1) * in_dim].copy_from_slice(input);
        t.as_mut_slice()[row * out_dim..(row + 1) * out_dim].copy_from_slice(target);
    }
    (x, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::network::LayerSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn linear_dataset(n: usize) -> Vec<Example> {
        (0..n)
            .map(|i| {
                let x: Vec<f32> = (0..3)
                    .map(|j| (((i * 7 + j * 13) % 11) as f32 - 5.0) / 5.0)
                    .collect();
                let y = vec![x[0] + 0.5 * x[1] - x[2], -x[0] + x[2]];
                (x, y)
            })
            .collect()
    }

    fn default_network(seed: u64) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Network::new(
            &[
                LayerSpec::new(3, 16, Activation::Tanh),
                LayerSpec::new(16, 2, Activation::Identity),
            ],
            &mut rng,
        )
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = linear_dataset(128);
        let (train, val) = data.split_at(100);
        let mut net = default_network(2);
        let trainer = Trainer::new(
            TrainConfig {
                epochs: 30,
                batch_size: 16,
                ..TrainConfig::default()
            },
            Loss::Mse,
            OptimizerKind::Adam {
                learning_rate: 0.01,
            },
        );
        let history = trainer.fit(&mut net, train, val, &mut rng);
        assert_eq!(history.train_loss.len(), 30);
        assert!(history.final_train_loss() < history.initial_train_loss() * 0.2);
        assert!(history.best_validation_metric() < 0.1);
    }

    #[test]
    fn best_epoch_parameters_are_kept() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data = linear_dataset(64);
        let (train, val) = data.split_at(48);
        let mut net = default_network(4);
        let trainer = Trainer::new(
            TrainConfig {
                epochs: 10,
                batch_size: 8,
                ..TrainConfig::default()
            },
            Loss::Mse,
            OptimizerKind::Adam {
                learning_rate: 0.01,
            },
        );
        let history = trainer.fit(&mut net, train, val, &mut rng);
        // Validation loss of the returned network equals the recorded best metric.
        let (x, t) = super::batch_matrices(val);
        let actual = Loss::Mse.evaluate(&net.forward(&x).unwrap(), &t);
        assert!((actual - history.best_validation_metric()).abs() < 1e-5);
        assert!(history.best_epoch < 10);
    }

    #[test]
    fn custom_metric_drives_selection() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let data = linear_dataset(32);
        let mut net = default_network(6);
        let trainer = Trainer::new(
            TrainConfig {
                epochs: 5,
                batch_size: 8,
                ..TrainConfig::default()
            },
            Loss::Mse,
            OptimizerKind::Sgd {
                learning_rate: 0.05,
                momentum: 0.9,
            },
        );
        // A metric that prefers later epochs (monotonically decreasing).
        let mut calls = 0;
        let history = trainer.fit_with_metric(&mut net, &data, &data, &mut rng, |_, _| {
            calls += 1;
            10.0 - calls as f32
        });
        assert_eq!(history.best_epoch, 4);
    }

    #[test]
    #[should_panic]
    fn empty_training_split_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut net = default_network(8);
        let trainer = Trainer::new(
            TrainConfig::default(),
            Loss::Mse,
            OptimizerKind::Adam {
                learning_rate: 0.01,
            },
        );
        let _ = trainer.fit(&mut net, &[], &[], &mut rng);
    }

    #[test]
    fn buffer_reusing_loop_matches_reference_loss_curve() {
        // The before/after drift check: the buffer-reusing trainer must produce
        // the *same* loss trajectory and final parameters as the original
        // allocating loop, for both optimizers.
        let data = linear_dataset(96);
        let (train, val) = data.split_at(72);
        for kind in [
            OptimizerKind::Adam {
                learning_rate: 0.01,
            },
            OptimizerKind::Sgd {
                learning_rate: 0.05,
                momentum: 0.9,
            },
        ] {
            let trainer = Trainer::new(
                TrainConfig {
                    epochs: 12,
                    batch_size: 16,
                    ..TrainConfig::default()
                },
                Loss::NormalizedL1,
                kind,
            );
            let mut net_fast = default_network(40);
            let mut net_ref = net_fast.clone();
            let mut rng_fast = ChaCha8Rng::seed_from_u64(41);
            let mut rng_ref = ChaCha8Rng::seed_from_u64(41);
            let hist_fast = trainer.fit(&mut net_fast, train, val, &mut rng_fast);
            let hist_ref = trainer.fit_with_metric_reference(
                &mut net_ref,
                train,
                val,
                &mut rng_ref,
                |net, val| {
                    let (x, t) = batch_matrices(val);
                    match net.forward(&x) {
                        Ok(pred) => Loss::NormalizedL1.evaluate(&pred, &t),
                        Err(_) => f32::INFINITY,
                    }
                },
            );
            assert_eq!(
                hist_fast.train_loss, hist_ref.train_loss,
                "{kind:?} loss curve drifted"
            );
            assert_eq!(
                hist_fast.validation_metric, hist_ref.validation_metric,
                "{kind:?} validation curve drifted"
            );
            assert_eq!(hist_fast.best_epoch, hist_ref.best_epoch);
            assert_eq!(net_fast, net_ref, "{kind:?} final parameters drifted");
        }
    }

    #[test]
    fn paper_default_config() {
        let cfg = TrainConfig::default();
        assert_eq!(cfg.epochs, 40);
        assert_eq!(cfg.batch_size, 16);
        assert_eq!(cfg.schedule.milestones, vec![20, 30]);
    }
}
