//! Fully-connected layers and activations.

use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation function applied after a dense layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// No nonlinearity (used on output and bottleneck layers).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent — the default hidden activation of the SplitBeam models,
    /// chosen because CSI/beamforming values are zero-centered.
    Tanh,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
}

impl Activation {
    /// Evaluates the activation for one scalar (the fused-epilogue kernel form).
    #[inline]
    pub fn eval(self, v: f32) -> f32 {
        match self {
            Activation::Identity => v,
            Activation::Relu => v.max(0.0),
            Activation::Tanh => v.tanh(),
            Activation::LeakyRelu => {
                if v >= 0.0 {
                    v
                } else {
                    0.01 * v
                }
            }
        }
    }

    /// Evaluates the activation derivative for one *pre-activation* scalar.
    #[inline]
    pub fn derivative_eval(self, v: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if v > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = v.tanh();
                1.0 - t * t
            }
            Activation::LeakyRelu => {
                if v >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
        }
    }

    /// Applies the activation element-wise.
    pub fn apply(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Identity => x.clone(),
            _ => x.map(|v| self.eval(v)),
        }
    }

    /// Derivative of the activation evaluated from its *pre-activation* input.
    pub fn derivative(self, pre_activation: &Matrix) -> Matrix {
        pre_activation.map(|v| self.derivative_eval(v))
    }
}

/// A dense (fully-connected) layer `y = activation(x W + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix of shape `input_dim x output_dim`.
    pub weights: Matrix,
    /// Bias row vector of shape `1 x output_dim`.
    pub bias: Matrix,
    /// Activation applied after the affine transform.
    pub activation: Activation,
}

/// Cached values from a forward pass needed by the backward pass.
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// The layer input (batch x input_dim).
    pub input: Matrix,
    /// The pre-activation output (batch x output_dim).
    pub pre_activation: Matrix,
}

/// Gradients of a dense layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGradients {
    /// Gradient with respect to the weights.
    pub weights: Matrix,
    /// Gradient with respect to the bias.
    pub bias: Matrix,
}

impl Dense {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "layer dimensions must be non-zero"
        );
        Self {
            weights: Matrix::xavier_uniform(input_dim, output_dim, rng),
            bias: Matrix::zeros(1, output_dim),
            activation,
        }
    }

    /// Input dimension of the layer.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension of the layer.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.cols()
    }

    /// Number of multiply-accumulate operations for a single input vector.
    pub fn macs(&self) -> u64 {
        (self.weights.rows() * self.weights.cols()) as u64
    }

    /// Forward pass, returning the activated output and the cache for backprop.
    pub fn forward(&self, input: &Matrix) -> (Matrix, DenseCache) {
        let pre_activation = input.matmul(&self.weights).add_row_broadcast(&self.bias);
        let output = self.activation.apply(&pre_activation);
        (
            output,
            DenseCache {
                input: input.clone(),
                pre_activation,
            },
        )
    }

    /// Forward pass writing the pre-activation and the activated output into
    /// caller-owned buffers (the training hot path; no cloning of the input —
    /// the caller already holds the activation chain).
    pub fn forward_into(&self, input: &Matrix, pre_activation: &mut Matrix, output: &mut Matrix) {
        input.matmul_into(&self.weights, pre_activation);
        let width = self.bias.cols();
        for row in pre_activation.as_mut_slice().chunks_exact_mut(width) {
            for (o, &b) in row.iter_mut().zip(self.bias.as_slice().iter()) {
                *o += b;
            }
        }
        output.copy_from(pre_activation);
        for v in output.as_mut_slice() {
            *v = self.activation.eval(*v);
        }
    }

    /// Inference-only forward pass (no cache), using the fused
    /// matmul + bias + activation epilogue.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(input.rows(), self.weights.cols());
        input.matmul_bias_act_into(&self.weights, &self.bias, self.activation, &mut out);
        out
    }

    /// Inference-only forward pass into a caller-owned buffer.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        input.matmul_bias_act_into(&self.weights, &self.bias, self.activation, out);
    }

    /// Inference-only forward pass into a caller-owned buffer with an explicit
    /// kernel backend (the fused dequantize→tail path pins one backend for a
    /// whole batched reconstruction).
    pub fn infer_into_with(&self, input: &Matrix, out: &mut Matrix, kern: mimo_math::Kernel) {
        input.matmul_bias_act_into_with(&self.weights, &self.bias, self.activation, out, kern);
    }

    /// The original unfused forward chain (matmul, then bias broadcast, then
    /// activation — two intermediate allocations), kept as the behavioral
    /// reference for the fused epilogue.
    #[cfg(any(test, feature = "reference"))]
    pub fn infer_reference(&self, input: &Matrix) -> Matrix {
        self.activation
            .apply(&input.matmul(&self.weights).add_row_broadcast(&self.bias))
    }

    /// Backward pass: given the gradient of the loss with respect to this
    /// layer's output, returns the parameter gradients and the gradient with
    /// respect to the layer input.
    pub fn backward(&self, cache: &DenseCache, grad_output: &Matrix) -> (DenseGradients, Matrix) {
        let mut grads = DenseGradients {
            weights: Matrix::zeros(1, 1),
            bias: Matrix::zeros(1, 1),
        };
        let mut grad_pre = Matrix::zeros(1, 1);
        let mut grad_input = Matrix::zeros(1, 1);
        self.backward_into(
            &cache.input,
            &cache.pre_activation,
            grad_output,
            &mut grad_pre,
            &mut grads,
            Some(&mut grad_input),
        );
        (grads, grad_input)
    }

    /// Backward pass into caller-owned buffers; the engine of the training
    /// loop.
    ///
    /// Computes `grad_pre = grad_output ⊙ act'(pre_activation)` and from it the
    /// parameter gradients and (unless this is the first layer,
    /// `grad_input == None`) the gradient with respect to the layer input.
    /// The weight and input gradients use the transpose-free kernels
    /// ([`Matrix::matmul_at_b_into`], [`Matrix::matmul_a_bt_into`]) instead of
    /// materializing `input^T` / `W^T` per step; results are bit-identical to
    /// the allocating formulation.
    pub fn backward_into(
        &self,
        input: &Matrix,
        pre_activation: &Matrix,
        grad_output: &Matrix,
        grad_pre: &mut Matrix,
        grads: &mut DenseGradients,
        grad_input: Option<&mut Matrix>,
    ) {
        grad_pre.copy_from(grad_output);
        for (g, &p) in grad_pre
            .as_mut_slice()
            .iter_mut()
            .zip(pre_activation.as_slice().iter())
        {
            *g *= self.activation.derivative_eval(p);
        }
        input.matmul_at_b_into(grad_pre, &mut grads.weights);
        grads.bias.sum_rows_into(grad_pre);
        if let Some(grad_input) = grad_input {
            grad_pre.matmul_a_bt_into(&self.weights, grad_input);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn activation_values() {
        let x = Matrix::from_rows(1, 4, &[-2.0, -0.5, 0.0, 1.5]);
        assert_eq!(Activation::Relu.apply(&x).as_slice(), &[0.0, 0.0, 0.0, 1.5]);
        assert_eq!(Activation::Identity.apply(&x).as_slice(), x.as_slice());
        let leaky = Activation::LeakyRelu.apply(&x);
        assert!((leaky.get(0, 0) + 0.02).abs() < 1e-6);
        let tanh = Activation::Tanh.apply(&x);
        assert!(tanh.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
        let x = Matrix::zeros(5, 4);
        let (y, cache) = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
        assert_eq!(
            (cache.pre_activation.rows(), cache.pre_activation.cols()),
            (5, 3)
        );
        assert_eq!(layer.num_parameters(), 4 * 3 + 3);
        assert_eq!(layer.macs(), 12);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let layer = Dense::new(3, 2, Activation::Relu, &mut rng);
        let x = Matrix::from_rows(2, 3, &[0.1, -0.2, 0.3, 0.5, 0.4, -0.1]);
        let (y, _) = layer.forward(&x);
        assert_eq!(layer.infer(&x), y);
    }

    #[test]
    fn fused_infer_matches_reference_bit_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for activation in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::LeakyRelu,
        ] {
            let mut layer = Dense::new(5, 4, activation, &mut rng);
            // Non-zero bias to exercise the epilogue's add.
            for (i, b) in layer.bias.as_mut_slice().iter_mut().enumerate() {
                *b = (i as f32 - 1.5) * 0.3;
            }
            let x = Matrix::xavier_uniform(3, 5, &mut rng);
            assert_eq!(layer.infer(&x), layer.infer_reference(&x), "{activation:?}");
        }
    }

    #[test]
    fn backward_into_matches_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
        let x = Matrix::xavier_uniform(5, 4, &mut rng);
        let (y, cache) = layer.forward(&x);
        let (grads, grad_input) = layer.backward(&cache, &y);

        let mut grad_pre = Matrix::zeros(1, 1);
        let mut grads2 = DenseGradients {
            weights: Matrix::zeros(1, 1),
            bias: Matrix::zeros(1, 1),
        };
        let mut grad_input2 = Matrix::zeros(1, 1);
        layer.backward_into(
            &x,
            &cache.pre_activation,
            &y,
            &mut grad_pre,
            &mut grads2,
            Some(&mut grad_input2),
        );
        assert_eq!(grads, grads2);
        assert_eq!(grad_input, grad_input2);
    }

    /// Finite-difference check of the dense layer's backward pass.
    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(2, 3, &[0.2, -0.4, 0.6, -0.1, 0.3, 0.5]);
        let target = Matrix::from_rows(2, 2, &[0.5, -0.5, 0.25, 0.75]);

        // Loss = 0.5 * sum((y - target)^2); dL/dy = y - target.
        let loss = |layer: &Dense| -> f32 {
            let y = layer.infer(&x);
            y.sub(&target)
                .as_slice()
                .iter()
                .map(|v| 0.5 * v * v)
                .sum::<f32>()
        };

        let (y, cache) = layer.forward(&x);
        let grad_out = y.sub(&target);
        let (grads, _) = layer.backward(&cache, &grad_out);

        let eps = 1e-3f32;
        for idx in [0usize, 2, 5] {
            let orig = layer.weights.as_slice()[idx];
            layer.weights.as_mut_slice()[idx] = orig + eps;
            let plus = loss(&layer);
            layer.weights.as_mut_slice()[idx] = orig - eps;
            let minus = loss(&layer);
            layer.weights.as_mut_slice()[idx] = orig;
            let numerical = (plus - minus) / (2.0 * eps);
            let analytic = grads.weights.as_slice()[idx];
            assert!(
                (numerical - analytic).abs() < 1e-2,
                "weight {idx}: numerical {numerical} vs analytic {analytic}"
            );
        }
        // Bias gradient check.
        let orig = layer.bias.as_slice()[1];
        layer.bias.as_mut_slice()[1] = orig + eps;
        let plus = loss(&layer);
        layer.bias.as_mut_slice()[1] = orig - eps;
        let minus = loss(&layer);
        layer.bias.as_mut_slice()[1] = orig;
        let numerical = (plus - minus) / (2.0 * eps);
        assert!((numerical - grads.bias.as_slice()[1]).abs() < 1e-2);
    }

    #[test]
    fn grad_input_propagates_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let layer = Dense::new(6, 4, Activation::Relu, &mut rng);
        let x = Matrix::xavier_uniform(3, 6, &mut rng);
        let (y, cache) = layer.forward(&x);
        let (_, grad_input) = layer.backward(&cache, &y);
        assert_eq!((grad_input.rows(), grad_input.cols()), (3, 6));
    }
}
