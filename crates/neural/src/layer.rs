//! Fully-connected layers and activations.

use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation function applied after a dense layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// No nonlinearity (used on output and bottleneck layers).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent — the default hidden activation of the SplitBeam models,
    /// chosen because CSI/beamforming values are zero-centered.
    Tanh,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn apply(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Tanh => x.map(f32::tanh),
            Activation::LeakyRelu => x.map(|v| if v >= 0.0 { v } else { 0.01 * v }),
        }
    }

    /// Derivative of the activation evaluated from its *pre-activation* input.
    pub fn derivative(self, pre_activation: &Matrix) -> Matrix {
        match self {
            Activation::Identity => pre_activation.map(|_| 1.0),
            Activation::Relu => pre_activation.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Tanh => pre_activation.map(|v| {
                let t = v.tanh();
                1.0 - t * t
            }),
            Activation::LeakyRelu => pre_activation.map(|v| if v >= 0.0 { 1.0 } else { 0.01 }),
        }
    }
}

/// A dense (fully-connected) layer `y = activation(x W + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix of shape `input_dim x output_dim`.
    pub weights: Matrix,
    /// Bias row vector of shape `1 x output_dim`.
    pub bias: Matrix,
    /// Activation applied after the affine transform.
    pub activation: Activation,
}

/// Cached values from a forward pass needed by the backward pass.
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// The layer input (batch x input_dim).
    pub input: Matrix,
    /// The pre-activation output (batch x output_dim).
    pub pre_activation: Matrix,
}

/// Gradients of a dense layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGradients {
    /// Gradient with respect to the weights.
    pub weights: Matrix,
    /// Gradient with respect to the bias.
    pub bias: Matrix,
}

impl Dense {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, output_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "layer dimensions must be non-zero");
        Self {
            weights: Matrix::xavier_uniform(input_dim, output_dim, rng),
            bias: Matrix::zeros(1, output_dim),
            activation,
        }
    }

    /// Input dimension of the layer.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension of the layer.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.cols()
    }

    /// Number of multiply-accumulate operations for a single input vector.
    pub fn macs(&self) -> u64 {
        (self.weights.rows() * self.weights.cols()) as u64
    }

    /// Forward pass, returning the activated output and the cache for backprop.
    pub fn forward(&self, input: &Matrix) -> (Matrix, DenseCache) {
        let pre_activation = input.matmul(&self.weights).add_row_broadcast(&self.bias);
        let output = self.activation.apply(&pre_activation);
        (
            output,
            DenseCache {
                input: input.clone(),
                pre_activation,
            },
        )
    }

    /// Inference-only forward pass (no cache).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        self.activation
            .apply(&input.matmul(&self.weights).add_row_broadcast(&self.bias))
    }

    /// Backward pass: given the gradient of the loss with respect to this
    /// layer's output, returns the parameter gradients and the gradient with
    /// respect to the layer input.
    pub fn backward(&self, cache: &DenseCache, grad_output: &Matrix) -> (DenseGradients, Matrix) {
        let grad_pre = grad_output.hadamard(&self.activation.derivative(&cache.pre_activation));
        let grad_weights = cache.input.transpose().matmul(&grad_pre);
        let grad_bias = grad_pre.sum_rows();
        let grad_input = grad_pre.matmul(&self.weights.transpose());
        (
            DenseGradients {
                weights: grad_weights,
                bias: grad_bias,
            },
            grad_input,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn activation_values() {
        let x = Matrix::from_rows(1, 4, &[-2.0, -0.5, 0.0, 1.5]);
        assert_eq!(Activation::Relu.apply(&x).as_slice(), &[0.0, 0.0, 0.0, 1.5]);
        assert_eq!(Activation::Identity.apply(&x).as_slice(), x.as_slice());
        let leaky = Activation::LeakyRelu.apply(&x);
        assert!((leaky.get(0, 0) + 0.02).abs() < 1e-6);
        let tanh = Activation::Tanh.apply(&x);
        assert!(tanh.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
        let x = Matrix::zeros(5, 4);
        let (y, cache) = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
        assert_eq!((cache.pre_activation.rows(), cache.pre_activation.cols()), (5, 3));
        assert_eq!(layer.num_parameters(), 4 * 3 + 3);
        assert_eq!(layer.macs(), 12);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let layer = Dense::new(3, 2, Activation::Relu, &mut rng);
        let x = Matrix::from_rows(2, 3, &[0.1, -0.2, 0.3, 0.5, 0.4, -0.1]);
        let (y, _) = layer.forward(&x);
        assert_eq!(layer.infer(&x), y);
    }

    /// Finite-difference check of the dense layer's backward pass.
    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(2, 3, &[0.2, -0.4, 0.6, -0.1, 0.3, 0.5]);
        let target = Matrix::from_rows(2, 2, &[0.5, -0.5, 0.25, 0.75]);

        // Loss = 0.5 * sum((y - target)^2); dL/dy = y - target.
        let loss = |layer: &Dense| -> f32 {
            let y = layer.infer(&x);
            y.sub(&target)
                .as_slice()
                .iter()
                .map(|v| 0.5 * v * v)
                .sum::<f32>()
        };

        let (y, cache) = layer.forward(&x);
        let grad_out = y.sub(&target);
        let (grads, _) = layer.backward(&cache, &grad_out);

        let eps = 1e-3f32;
        for idx in [0usize, 2, 5] {
            let orig = layer.weights.as_slice()[idx];
            layer.weights.as_mut_slice()[idx] = orig + eps;
            let plus = loss(&layer);
            layer.weights.as_mut_slice()[idx] = orig - eps;
            let minus = loss(&layer);
            layer.weights.as_mut_slice()[idx] = orig;
            let numerical = (plus - minus) / (2.0 * eps);
            let analytic = grads.weights.as_slice()[idx];
            assert!(
                (numerical - analytic).abs() < 1e-2,
                "weight {idx}: numerical {numerical} vs analytic {analytic}"
            );
        }
        // Bias gradient check.
        let orig = layer.bias.as_slice()[1];
        layer.bias.as_mut_slice()[1] = orig + eps;
        let plus = loss(&layer);
        layer.bias.as_mut_slice()[1] = orig - eps;
        let minus = loss(&layer);
        layer.bias.as_mut_slice()[1] = orig;
        let numerical = (plus - minus) / (2.0 * eps);
        assert!((numerical - grads.bias.as_slice()[1]).abs() < 1e-2);
    }

    #[test]
    fn grad_input_propagates_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let layer = Dense::new(6, 4, Activation::Relu, &mut rng);
        let x = Matrix::xavier_uniform(3, 6, &mut rng);
        let (y, cache) = layer.forward(&x);
        let (_, grad_input) = layer.backward(&cache, &y);
        assert_eq!((grad_input.rows(), grad_input.cols()), (3, 6));
    }
}
