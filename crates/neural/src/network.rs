//! Sequential dense networks.

#[cfg(any(test, feature = "reference"))]
use crate::layer::DenseCache;
use crate::layer::{Activation, Dense, DenseGradients};
use crate::tensor::Matrix;
use crate::NeuralError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Specification of one dense layer used when building a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Input width of the layer.
    pub input_dim: usize,
    /// Output width of the layer.
    pub output_dim: usize,
    /// Activation applied by the layer.
    pub activation: Activation,
}

impl LayerSpec {
    /// Creates a layer specification.
    pub fn new(input_dim: usize, output_dim: usize, activation: Activation) -> Self {
        Self {
            input_dim,
            output_dim,
            activation,
        }
    }
}

/// A sequential stack of dense layers.
///
/// The SplitBeam head and tail models are both plain [`Network`]s; splitting a
/// trained model is done with [`Network::split_at`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Dense>,
}

impl Network {
    /// Builds a network from layer specifications with freshly initialized weights.
    ///
    /// # Panics
    /// Panics if `specs` is empty or consecutive layer dimensions do not chain.
    pub fn new(specs: &[LayerSpec], rng: &mut impl Rng) -> Self {
        assert!(!specs.is_empty(), "a network needs at least one layer");
        for pair in specs.windows(2) {
            assert_eq!(
                pair[0].output_dim, pair[1].input_dim,
                "layer dimensions must chain: {} -> {}",
                pair[0].output_dim, pair[1].input_dim
            );
        }
        let layers = specs
            .iter()
            .map(|s| Dense::new(s.input_dim, s.output_dim, s.activation, rng))
            .collect();
        Self { layers }
    }

    /// Builds a network directly from already-initialized layers.
    ///
    /// # Panics
    /// Panics if `layers` is empty or the dimensions do not chain.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_dim(),
                pair[1].input_dim(),
                "layer dimensions must chain"
            );
        }
        Self { layers }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by the optimizers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Input dimension of the network.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(Dense::input_dim).unwrap_or(0)
    }

    /// Output dimension of the network.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(Dense::output_dim).unwrap_or(0)
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(Dense::num_parameters).sum()
    }

    /// Total multiply-accumulate operations for one input vector.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(Dense::macs).sum()
    }

    /// Total floating point operations for one input vector (2 FLOPs per MAC
    /// plus one per activation output).
    pub fn flops(&self) -> u64 {
        2 * self.macs()
            + self
                .layers
                .iter()
                .map(|l| l.output_dim() as u64)
                .sum::<u64>()
    }

    /// Runs inference on a batch (`batch x input_dim`).
    ///
    /// The whole batch flows through each layer as one matmul; no copy of the
    /// input is taken (the first layer reads it directly).
    ///
    /// # Errors
    /// Returns [`NeuralError::DimensionMismatch`] if the input width is wrong.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, NeuralError> {
        if input.cols() != self.input_dim() {
            return Err(NeuralError::DimensionMismatch(format!(
                "input width {} does not match network input {}",
                input.cols(),
                self.input_dim()
            )));
        }
        let (first, rest) = self
            .layers
            .split_first()
            .expect("networks always have at least one layer");
        let mut x = first.infer(input);
        for layer in rest {
            x = layer.infer(&x);
        }
        Ok(x)
    }

    /// Convenience single-vector inference.
    ///
    /// # Errors
    /// Returns [`NeuralError::DimensionMismatch`] if the input width is wrong.
    pub fn predict(&self, input: &[f32]) -> Result<Vec<f32>, NeuralError> {
        let out = self.forward(&Matrix::row_vector(input))?;
        Ok(out.as_slice().to_vec())
    }

    /// Batched inference over independent input vectors: stacks them into one
    /// `batch x input_dim` matrix and runs a single forward pass, so each layer
    /// costs one matmul for the whole batch instead of one per vector.
    ///
    /// # Errors
    /// Returns [`NeuralError::DimensionMismatch`] if the batch is empty or any
    /// vector has the wrong width.
    pub fn predict_batch(&self, inputs: &[&[f32]]) -> Result<Matrix, NeuralError> {
        let in_dim = self.input_dim();
        if inputs.is_empty() {
            return Err(NeuralError::DimensionMismatch(
                "empty inference batch".into(),
            ));
        }
        if let Some(bad) = inputs.iter().find(|v| v.len() != in_dim) {
            return Err(NeuralError::DimensionMismatch(format!(
                "input width {} does not match network input {in_dim}",
                bad.len()
            )));
        }
        let mut x = Matrix::zeros(inputs.len(), in_dim);
        for (row, input) in inputs.iter().enumerate() {
            x.as_mut_slice()[row * in_dim..(row + 1) * in_dim].copy_from_slice(input);
        }
        self.forward(&x)
    }

    /// Forward pass keeping the per-layer caches needed by backpropagation.
    ///
    /// Allocating convenience used by tests and the reference training loop;
    /// the trainer itself uses [`Network::forward_training_into`].
    #[cfg(any(test, feature = "reference"))]
    pub(crate) fn forward_training(&self, input: &Matrix) -> (Matrix, Vec<DenseCache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&x);
            caches.push(cache);
            x = out;
        }
        (x, caches)
    }

    /// Backward pass: returns per-layer parameter gradients.
    ///
    /// Allocating convenience used by tests and the reference training loop;
    /// the trainer itself uses [`Network::backward_into`].
    #[cfg(any(test, feature = "reference"))]
    pub(crate) fn backward(
        &self,
        caches: &[DenseCache],
        grad_output: &Matrix,
    ) -> Vec<DenseGradients> {
        let mut grads = Vec::with_capacity(self.layers.len());
        let mut grad = grad_output.clone();
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let (layer_grads, grad_input) = layer.backward(cache, &grad);
            grads.push(layer_grads);
            grad = grad_input;
        }
        grads.reverse();
        grads
    }

    /// Forward pass for training into the reusable buffers of `scratch`.
    ///
    /// After the call `scratch.activations[i]` holds the output of layer `i`
    /// and `scratch.pre_activations[i]` its pre-activation; the final
    /// prediction is `scratch.prediction()`. No per-layer clone of the input
    /// is taken — layer `i` reads `scratch.activations[i - 1]` directly.
    pub(crate) fn forward_training_into(&self, input: &Matrix, scratch: &mut TrainScratch) {
        scratch.ensure_layers(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            // Split the buffers so layer i can read activation i-1 while
            // writing activation i.
            let (done, rest) = scratch.activations.split_at_mut(i);
            let x = if i == 0 { input } else { &done[i - 1] };
            layer.forward_into(x, &mut scratch.pre_activations[i], &mut rest[0]);
        }
    }

    /// Backward pass from the buffers filled by
    /// [`Network::forward_training_into`], writing per-layer gradients into
    /// `scratch.grads`. Gradient propagation ping-pongs between two reusable
    /// buffers; the input-gradient product is skipped for the first layer.
    pub(crate) fn backward_into(
        &self,
        input: &Matrix,
        grad_output: &Matrix,
        scratch: &mut TrainScratch,
    ) {
        let TrainScratch {
            pre_activations,
            activations,
            grad_ping,
            grad_pong,
            grad_pre,
            grads,
        } = scratch;
        debug_assert_eq!(
            activations.len(),
            self.layers.len(),
            "forward_training_into must run first"
        );
        // `incoming` holds the gradient flowing into the current layer,
        // `outgoing` receives the gradient for the next (earlier) layer; the
        // two buffers swap roles every step.
        let mut incoming: &mut Matrix = grad_ping;
        let mut outgoing: &mut Matrix = grad_pong;
        for (rev_idx, (i, layer)) in self.layers.iter().enumerate().rev().enumerate() {
            let layer_input = if i == 0 { input } else { &activations[i - 1] };
            let grad_out: &Matrix = if rev_idx == 0 { grad_output } else { incoming };
            let grad_in = if i == 0 { None } else { Some(&mut *outgoing) };
            layer.backward_into(
                layer_input,
                &pre_activations[i],
                grad_out,
                grad_pre,
                &mut grads[i],
                grad_in,
            );
            std::mem::swap(&mut incoming, &mut outgoing);
        }
    }

    /// Splits the network into a head (layers `0..at`) and a tail (layers `at..`).
    ///
    /// This is the "split computing" operation of the paper: the head runs on
    /// the station, the tail on the access point, and the head's output is the
    /// compressed feedback transmitted over the air.
    ///
    /// # Panics
    /// Panics if `at` is zero or not strictly inside the layer stack.
    pub fn split_at(&self, at: usize) -> (Network, Network) {
        assert!(
            at > 0 && at < self.layers.len(),
            "split point must be strictly inside the network"
        );
        (
            Network {
                layers: self.layers[..at].to_vec(),
            },
            Network {
                layers: self.layers[at..].to_vec(),
            },
        )
    }

    /// Per-layer output widths (useful for describing architectures like
    /// "448-56-448" in reports).
    pub fn architecture(&self) -> Vec<usize> {
        let mut dims = vec![self.input_dim()];
        dims.extend(self.layers.iter().map(Dense::output_dim));
        dims
    }
}

/// Reusable buffers for one training loop: per-layer activations and
/// pre-activations, gradient ping-pong buffers and per-layer parameter
/// gradients.
///
/// Holding one `TrainScratch` across batches and epochs eliminates the
/// per-batch clone/allocation churn of the original loop — after the first
/// batch of the largest batch size, a training step performs no heap
/// allocation.
#[derive(Debug)]
pub(crate) struct TrainScratch {
    pub(crate) pre_activations: Vec<Matrix>,
    pub(crate) activations: Vec<Matrix>,
    pub(crate) grad_ping: Matrix,
    pub(crate) grad_pong: Matrix,
    pub(crate) grad_pre: Matrix,
    pub(crate) grads: Vec<DenseGradients>,
}

impl TrainScratch {
    pub(crate) fn new() -> Self {
        Self {
            pre_activations: Vec::new(),
            activations: Vec::new(),
            grad_ping: Matrix::zeros(1, 1),
            grad_pong: Matrix::zeros(1, 1),
            grad_pre: Matrix::zeros(1, 1),
            grads: Vec::new(),
        }
    }

    fn ensure_layers(&mut self, n: usize) {
        while self.pre_activations.len() < n {
            self.pre_activations.push(Matrix::zeros(1, 1));
            self.activations.push(Matrix::zeros(1, 1));
            self.grads.push(DenseGradients {
                weights: Matrix::zeros(1, 1),
                bias: Matrix::zeros(1, 1),
            });
        }
        self.pre_activations.truncate(n);
        self.activations.truncate(n);
        self.grads.truncate(n);
    }

    /// The network output of the last [`Network::forward_training_into`] call.
    pub(crate) fn prediction(&self) -> &Matrix {
        self.activations
            .last()
            .expect("forward_training_into must run before reading the prediction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_network(seed: u64) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Network::new(
            &[
                LayerSpec::new(8, 4, Activation::Tanh),
                LayerSpec::new(4, 6, Activation::Relu),
                LayerSpec::new(6, 3, Activation::Identity),
            ],
            &mut rng,
        )
    }

    #[test]
    fn dimensions_and_counts() {
        let net = sample_network(1);
        assert_eq!(net.input_dim(), 8);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(
            net.num_parameters(),
            (8 * 4 + 4) + (4 * 6 + 6) + (6 * 3 + 3)
        );
        assert_eq!(net.macs(), 8 * 4 + 4 * 6 + 6 * 3);
        assert_eq!(net.flops(), 2 * net.macs() + (4 + 6 + 3));
        assert_eq!(net.architecture(), vec![8, 4, 6, 3]);
    }

    #[test]
    fn forward_and_predict_agree() {
        let net = sample_network(2);
        let input: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let via_forward = net.forward(&Matrix::row_vector(&input)).unwrap();
        let via_predict = net.predict(&input).unwrap();
        assert_eq!(via_forward.as_slice(), &via_predict[..]);
    }

    #[test]
    fn wrong_input_width_is_rejected() {
        let net = sample_network(3);
        assert!(matches!(
            net.predict(&[1.0, 2.0]),
            Err(NeuralError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn split_composes_to_original() {
        let net = sample_network(4);
        let (head, tail) = net.split_at(1);
        assert_eq!(head.output_dim(), tail.input_dim());
        let input: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) * 0.2).collect();
        let full = net.predict(&input).unwrap();
        let bottleneck = head.predict(&input).unwrap();
        let composed = tail.predict(&bottleneck).unwrap();
        for (a, b) in full.iter().zip(composed.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn split_at_zero_panics() {
        let _ = sample_network(5).split_at(0);
    }

    #[test]
    #[should_panic]
    fn mismatched_chain_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let _ = Network::new(
            &[
                LayerSpec::new(4, 5, Activation::Tanh),
                LayerSpec::new(6, 2, Activation::Identity),
            ],
            &mut rng,
        );
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let net = sample_network(7);
        let encoded = serde_json_like(&net);
        let decoded: Network = from_json_like(&encoded);
        let input: Vec<f32> = (0..8).map(|i| i as f32 * 0.05).collect();
        assert_eq!(
            net.predict(&input).unwrap(),
            decoded.predict(&input).unwrap()
        );
    }

    // The workspace intentionally has no serde_json dependency; round-trip the
    // network through bincode-like manual serialization using serde's derive
    // via the `postcard`-free fallback: here we simply clone and compare, and
    // separately check that serialization derives exist by serializing to a
    // `Vec<u8>` with a tiny hand-rolled serializer is overkill — instead use
    // `serde::Serialize` bound checks.
    fn serde_json_like(net: &Network) -> Network {
        fn assert_serializable<T: serde::Serialize + for<'de> serde::Deserialize<'de>>(_: &T) {}
        assert_serializable(net);
        net.clone()
    }

    fn from_json_like(net: &Network) -> Network {
        net.clone()
    }
}
