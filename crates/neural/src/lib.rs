//! A minimal dense neural-network engine for the SplitBeam reproduction.
//!
//! The paper's models are small fully-connected networks (Table II lists
//! architectures such as `448-56-448` in our real-interleaved convention), so a
//! purpose-built engine is both sufficient and keeps the whole reproduction in
//! safe Rust with no external ML runtime:
//!
//! * [`tensor`] — a dense `f32` matrix with the handful of BLAS-like kernels
//!   needed for forward/backward passes,
//! * [`layer`] — fully-connected layers with ReLU/Tanh/identity activations,
//! * [`network`] — a sequential container with forward, backward and
//!   MAC/FLOP accounting,
//! * [`loss`] — the paper's normalized-L1 objective (Eq. 8) plus MSE/L1,
//! * [`optimizer`] — SGD (with momentum) and Adam, plus the step learning-rate
//!   schedule of Section IV-D,
//! * [`trainer`] — a mini-batch training loop with validation-best
//!   checkpointing, mirroring the paper's training procedure.
//!
//! # Example: fit a tiny network on a toy mapping
//!
//! ```
//! use neural::network::{Network, LayerSpec};
//! use neural::layer::Activation;
//! use neural::loss::Loss;
//! use neural::optimizer::{Optimizer, OptimizerKind};
//! use neural::trainer::{TrainConfig, Trainer};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut net = Network::new(&[
//!     LayerSpec::new(4, 8, Activation::Tanh),
//!     LayerSpec::new(8, 2, Activation::Identity),
//! ], &mut rng);
//! // Learn y = (sum(x), -sum(x)).
//! let data: Vec<(Vec<f32>, Vec<f32>)> = (0..64).map(|i| {
//!     let x: Vec<f32> = (0..4).map(|j| ((i * 7 + j * 3) % 5) as f32 / 5.0).collect();
//!     let s: f32 = x.iter().sum();
//!     (x, vec![s, -s])
//! }).collect();
//! let config = TrainConfig { epochs: 40, batch_size: 8, ..TrainConfig::default() };
//! let trainer = Trainer::new(config, Loss::Mse, OptimizerKind::Adam { learning_rate: 0.01 });
//! let history = trainer.fit(&mut net, &data, &data, &mut rng);
//! assert!(history.final_train_loss() < history.initial_train_loss());
//! ```

pub mod layer;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod quant;
pub mod tensor;
pub mod trainer;

pub use layer::{Activation, Dense};
pub use loss::Loss;
pub use network::{LayerSpec, Network};
pub use optimizer::{Optimizer, OptimizerKind};
pub use quant::{QuantScratch, QuantizedDense};
pub use tensor::Matrix;
pub use trainer::{TrainConfig, TrainHistory, Trainer};

/// Errors produced by the neural-network engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeuralError {
    /// Input/output dimensions do not match the network architecture.
    DimensionMismatch(String),
    /// The training set was empty or otherwise unusable.
    EmptyDataset,
}

impl std::fmt::Display for NeuralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NeuralError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            NeuralError::EmptyDataset => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for NeuralError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(format!("{}", NeuralError::DimensionMismatch("4 vs 8".into())).contains("4 vs 8"));
        assert!(format!("{}", NeuralError::EmptyDataset).contains("empty"));
    }
}
