//! Optimizers and learning-rate schedules.
//!
//! The paper trains with SGD on the synthetic datasets and Adam on the measured
//! ones, with an initial learning rate of `1e-3` divided by 10 after the 20th
//! and 30th of 40 epochs. Both optimizers and the step schedule are implemented
//! here.

use crate::layer::DenseGradients;
use crate::network::Network;
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Optimizer selection plus hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Learning rate.
        learning_rate: f32,
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam with the standard `beta1 = 0.9`, `beta2 = 0.999`.
    Adam {
        /// Learning rate.
        learning_rate: f32,
    },
}

impl OptimizerKind {
    /// The configured base learning rate.
    pub fn learning_rate(&self) -> f32 {
        match self {
            OptimizerKind::Sgd { learning_rate, .. } => *learning_rate,
            OptimizerKind::Adam { learning_rate } => *learning_rate,
        }
    }
}

/// Step learning-rate schedule: the learning rate is multiplied by `gamma`
/// whenever the epoch index reaches one of the milestones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepSchedule {
    /// Epoch indices (0-based) at which the learning rate is decayed.
    pub milestones: Vec<usize>,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl StepSchedule {
    /// The paper's schedule: decay by 10x after the 20th and 30th epoch.
    pub fn paper_default() -> Self {
        Self {
            milestones: vec![20, 30],
            gamma: 0.1,
        }
    }

    /// No decay at all.
    pub fn constant() -> Self {
        Self {
            milestones: Vec::new(),
            gamma: 1.0,
        }
    }

    /// Learning-rate multiplier in effect at `epoch`.
    pub fn factor_at(&self, epoch: usize) -> f32 {
        let hits = self.milestones.iter().filter(|&&m| epoch >= m).count() as i32;
        self.gamma.powi(hits)
    }
}

/// Per-parameter optimizer state for one layer.
#[derive(Debug, Clone, Default)]
struct LayerState {
    momentum_w: Option<Matrix>,
    momentum_b: Option<Matrix>,
    adam_m_w: Option<Matrix>,
    adam_v_w: Option<Matrix>,
    adam_m_b: Option<Matrix>,
    adam_v_b: Option<Matrix>,
}

/// A stateful optimizer bound to a particular network architecture.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    state: Vec<LayerState>,
    step_count: u64,
}

impl Optimizer {
    /// Creates an optimizer for a network with `num_layers` layers.
    pub fn new(kind: OptimizerKind, num_layers: usize) -> Self {
        Self {
            kind,
            state: (0..num_layers).map(|_| LayerState::default()).collect(),
            step_count: 0,
        }
    }

    /// The optimizer kind and hyper-parameters.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Applies one gradient step to `network`, scaling the base learning rate by
    /// `lr_factor` (from the schedule).
    ///
    /// All optimizer state is updated in place and parameters are adjusted with
    /// fused `p -= update * lr` sweeps, so a step performs no heap allocation
    /// after the state matrices exist. The element-wise arithmetic matches the
    /// original allocating formulation, keeping training trajectories
    /// bit-identical.
    ///
    /// # Panics
    /// Panics if `grads.len()` differs from the number of network layers.
    pub fn step(&mut self, network: &mut Network, grads: &[DenseGradients], lr_factor: f32) {
        assert_eq!(
            grads.len(),
            network.layers().len(),
            "gradient count must match layer count"
        );
        self.step_count += 1;
        let lr = self.kind.learning_rate() * lr_factor;
        match self.kind {
            OptimizerKind::Sgd { momentum, .. } => {
                for ((layer, grad), state) in network
                    .layers_mut()
                    .iter_mut()
                    .zip(grads.iter())
                    .zip(self.state.iter_mut())
                {
                    if momentum > 0.0 {
                        // v <- v * momentum + g, in place; p <- p - v * lr.
                        let vel_w = state.momentum_w.get_or_insert_with(|| {
                            Matrix::zeros(grad.weights.rows(), grad.weights.cols())
                        });
                        for (v, &g) in vel_w.as_mut_slice().iter_mut().zip(grad.weights.as_slice())
                        {
                            *v = *v * momentum + g;
                        }
                        layer.weights.sub_scaled_assign(vel_w, lr);
                        let vel_b = state
                            .momentum_b
                            .get_or_insert_with(|| Matrix::zeros(1, grad.bias.cols()));
                        for (v, &g) in vel_b.as_mut_slice().iter_mut().zip(grad.bias.as_slice()) {
                            *v = *v * momentum + g;
                        }
                        layer.bias.sub_scaled_assign(vel_b, lr);
                    } else {
                        layer.weights.sub_scaled_assign(&grad.weights, lr);
                        layer.bias.sub_scaled_assign(&grad.bias, lr);
                    }
                }
            }
            OptimizerKind::Adam { .. } => {
                const BETA1: f32 = 0.9;
                const BETA2: f32 = 0.999;
                const EPS: f32 = 1e-8;
                let t = self.step_count as i32;
                let bias_correction1 = 1.0 - BETA1.powi(t);
                let bias_correction2 = 1.0 - BETA2.powi(t);
                for ((layer, grad), state) in network
                    .layers_mut()
                    .iter_mut()
                    .zip(grads.iter())
                    .zip(self.state.iter_mut())
                {
                    // m <- m*B1 + g*(1-B1); v <- v*B2 + g^2*(1-B2);
                    // p <- p - (m/bc1) / (sqrt(v/bc2) + eps) * lr, all in place.
                    let update = |m_state: &mut Option<Matrix>,
                                  v_state: &mut Option<Matrix>,
                                  grad: &Matrix,
                                  param: &mut Matrix| {
                        let m =
                            m_state.get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                        let v =
                            v_state.get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                        for ((m, v), (&g, p)) in m
                            .as_mut_slice()
                            .iter_mut()
                            .zip(v.as_mut_slice().iter_mut())
                            .zip(grad.as_slice().iter().zip(param.as_mut_slice().iter_mut()))
                        {
                            *m = *m * BETA1 + g * (1.0 - BETA1);
                            *v = *v * BETA2 + (g * g) * (1.0 - BETA2);
                            let m_hat = *m / bias_correction1;
                            let v_hat = *v / bias_correction2;
                            *p -= m_hat / (v_hat.sqrt() + EPS) * lr;
                        }
                    };
                    update(
                        &mut state.adam_m_w,
                        &mut state.adam_v_w,
                        &grad.weights,
                        &mut layer.weights,
                    );
                    update(
                        &mut state.adam_m_b,
                        &mut state.adam_v_b,
                        &grad.bias,
                        &mut layer.bias,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::loss::Loss;
    use crate::network::{LayerSpec, Network};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_problem() -> (Vec<f32>, Vec<f32>) {
        let x: Vec<f32> = (0..4).map(|i| i as f32 / 4.0).collect();
        let y = vec![x.iter().sum::<f32>(), x[0] - x[3]];
        (x, y)
    }

    fn train_loss(kind: OptimizerKind, steps: usize) -> (f32, f32) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Network::new(
            &[
                LayerSpec::new(4, 8, Activation::Tanh),
                LayerSpec::new(8, 2, Activation::Identity),
            ],
            &mut rng,
        );
        let (x, y) = toy_problem();
        let input = Matrix::row_vector(&x);
        let target = Matrix::row_vector(&y);
        let mut opt = Optimizer::new(kind, net.layers().len());
        let initial = Loss::Mse.evaluate(&net.forward(&input).unwrap(), &target);
        for _ in 0..steps {
            let (out, caches) = net.forward_training(&input);
            let grad = Loss::Mse.gradient(&out, &target);
            let grads = net.backward(&caches, &grad);
            opt.step(&mut net, &grads, 1.0);
        }
        let final_loss = Loss::Mse.evaluate(&net.forward(&input).unwrap(), &target);
        (initial, final_loss)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (initial, final_loss) = train_loss(
            OptimizerKind::Sgd {
                learning_rate: 0.1,
                momentum: 0.0,
            },
            200,
        );
        assert!(final_loss < initial * 0.1, "SGD: {initial} -> {final_loss}");
    }

    #[test]
    fn sgd_with_momentum_reduces_loss() {
        let (initial, final_loss) = train_loss(
            OptimizerKind::Sgd {
                learning_rate: 0.05,
                momentum: 0.9,
            },
            200,
        );
        assert!(
            final_loss < initial * 0.1,
            "SGD+m: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn adam_reduces_loss() {
        let (initial, final_loss) = train_loss(
            OptimizerKind::Adam {
                learning_rate: 0.01,
            },
            200,
        );
        assert!(
            final_loss < initial * 0.1,
            "Adam: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn step_schedule_factors() {
        let schedule = StepSchedule::paper_default();
        assert!((schedule.factor_at(0) - 1.0).abs() < 1e-9);
        assert!((schedule.factor_at(19) - 1.0).abs() < 1e-9);
        assert!((schedule.factor_at(20) - 0.1).abs() < 1e-7);
        assert!((schedule.factor_at(30) - 0.01).abs() < 1e-8);
        assert!((StepSchedule::constant().factor_at(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn learning_rate_accessor() {
        assert!(
            (OptimizerKind::Adam {
                learning_rate: 0.001
            }
            .learning_rate()
                - 0.001)
                .abs()
                < 1e-9
        );
        assert!(
            (OptimizerKind::Sgd {
                learning_rate: 0.5,
                momentum: 0.9
            }
            .learning_rate()
                - 0.5)
                .abs()
                < 1e-9
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_gradient_count_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = Network::new(&[LayerSpec::new(2, 2, Activation::Identity)], &mut rng);
        let mut opt = Optimizer::new(
            OptimizerKind::Adam {
                learning_rate: 0.01,
            },
            1,
        );
        opt.step(&mut net, &[], 1.0);
    }
}
