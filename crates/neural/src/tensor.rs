//! Dense `f32` matrices for the neural-network engine.
//!
//! [`Matrix`] is row-major. Alongside the allocating convenience methods it
//! provides the write-into kernels the training/inference hot paths are built
//! on: [`Matrix::matmul_into`], the fused affine-plus-activation epilogue
//! [`Matrix::matmul_bias_act_into`], and the transpose-free products
//! [`Matrix::matmul_at_b_into`] / [`Matrix::matmul_a_bt_into`] that replace
//! the full-matrix `transpose()` allocations of the backward pass. All of them
//! dispatch through [`mimo_math::kernel`]: under the scalar backend they
//! accumulate in the same element order as the naive kernels, so results are
//! bit-identical; the AVX2+FMA backend uses 8-wide fused-multiply-add
//! microkernels and agrees within FMA rounding.

use crate::layer::Activation;
use mimo_math::kernel::{self, Kernel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// ```
/// use neural::Matrix;
/// let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// let b = Matrix::from_rows(3, 1, &[1.0, 0.0, -1.0]);
/// let c = a.matmul(&b);
/// assert_eq!(c.as_slice(), &[-2.0, -2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a single-row matrix from a vector (used for network inputs).
    pub fn row_vector(data: &[f32]) -> Self {
        Self::from_rows(1, data.len(), data)
    }

    /// Xavier/Glorot-uniform initialization, the standard choice for tanh MLPs.
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(-limit..limit);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read-only view of the row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes this matrix to `rows x cols` with all entries zero, reusing the
    /// existing storage when it is large enough.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows x cols` for a caller that overwrites every element:
    /// existing storage is kept as-is (stale values and all) and only growth
    /// beyond the current length is zero-filled, skipping the full memset of
    /// [`Self::reshape_zeroed`]. Crate-private because exposing stale data
    /// would be a footgun; every caller must write all `rows * cols` entries
    /// before reading.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub(crate) fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `src` into this matrix, reshaping as needed and reusing storage.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Number of `rhs` rows processed per block of [`Matrix::matmul_into`]:
    /// a block of `16 x cols` f32 weights stays L1-resident and is reused
    /// across every row of the batch.
    const MATMUL_K_BLOCK: usize = 16;

    /// Matrix product `self * rhs` written into `out` (reshaped, storage
    /// reused), using the runtime-selected kernel backend
    /// ([`mimo_math::kernel::selected`]).
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_into_with(rhs, out, kernel::selected());
    }

    /// [`Matrix::matmul_into`] with an explicit kernel backend — the seam the
    /// dispatch-parity tests and per-kernel benchmarks use.
    ///
    /// **Scalar**: register-blocked 4x4 micro-kernel — four output rows share
    /// every loaded `rhs` (weight) row, and four inner-dimension terms
    /// accumulate per output element between one load and one store of the
    /// accumulator. Bit-identical to the plain triple loop: every output
    /// element still accumulates its `k` terms in ascending order (the blocks
    /// only interleave *different* accumulators, and f32 temporaries in
    /// registers round identically to memory round trips), and exact-zero `a`
    /// terms are still skipped.
    ///
    /// **AVX2+FMA**: an 8-wide FMA microkernel ([`kernel::gemm_f32`]), one
    /// fused-multiply-add chain per output element over ascending `k` — so
    /// single-row and batched calls stay bit-identical to each other, which
    /// the fused dequantize→tail path depends on.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into_with(&self, rhs: &Matrix, out: &mut Matrix, kern: Kernel) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reshape_zeroed(self.rows, rhs.cols);
        let n = rhs.cols;
        let m = self.cols;
        if n == 0 || m == 0 {
            return;
        }
        if kern != Kernel::Scalar {
            kernel::gemm_f32(kern, &self.data, &rhs.data, &mut out.data, m, n);
            return;
        }
        for k0 in (0..m).step_by(Self::MATMUL_K_BLOCK) {
            let k1 = (k0 + Self::MATMUL_K_BLOCK).min(m);
            let mut r = 0;
            while r + 4 <= self.rows {
                Self::panel4_kernel(
                    &self.data[r * m..(r + 4) * m],
                    &rhs.data,
                    &mut out.data[r * n..(r + 4) * n],
                    m,
                    n,
                    k0,
                    k1,
                );
                r += 4;
            }
            while r < self.rows {
                Self::row_kernel(
                    &self.data[r * m..(r + 1) * m],
                    &rhs.data,
                    &mut out.data[r * n..(r + 1) * n],
                    n,
                    k0,
                    k1,
                );
                r += 1;
            }
        }
    }

    /// One output row over `k0..k1`: four inner terms per accumulator store.
    fn row_kernel(a: &[f32], b: &[f32], o: &mut [f32], n: usize, k0: usize, k1: usize) {
        let mut k = k0;
        while k + 4 <= k1 {
            let ak = [a[k], a[k + 1], a[k + 2], a[k + 3]];
            if ak.iter().all(|&v| v != 0.0) {
                let (b0, rest) = b[k * n..(k + 4) * n].split_at(n);
                let (b1, rest) = rest.split_at(n);
                let (b2, b3) = rest.split_at(n);
                for i in 0..n {
                    let mut t = o[i];
                    t += ak[0] * b0[i];
                    t += ak[1] * b1[i];
                    t += ak[2] * b2[i];
                    t += ak[3] * b3[i];
                    o[i] = t;
                }
            } else {
                Self::axpy4_skip(&ak, b, o, n, k);
            }
            k += 4;
        }
        while k < k1 {
            Self::axpy1_skip(a[k], &b[k * n..(k + 1) * n], o);
            k += 1;
        }
    }

    /// Four output rows sharing each weight row over `k0..k1`.
    fn panel4_kernel(
        a: &[f32],
        b: &[f32],
        o: &mut [f32],
        m: usize,
        n: usize,
        k0: usize,
        k1: usize,
    ) {
        let (a0, rest) = a.split_at(m);
        let (a1, rest) = rest.split_at(m);
        let (a2, a3) = rest.split_at(m);
        let (o0, rest) = o.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let mut k = k0;
        while k + 8 <= k1 {
            let av = [
                [
                    a0[k],
                    a0[k + 1],
                    a0[k + 2],
                    a0[k + 3],
                    a0[k + 4],
                    a0[k + 5],
                    a0[k + 6],
                    a0[k + 7],
                ],
                [
                    a1[k],
                    a1[k + 1],
                    a1[k + 2],
                    a1[k + 3],
                    a1[k + 4],
                    a1[k + 5],
                    a1[k + 6],
                    a1[k + 7],
                ],
                [
                    a2[k],
                    a2[k + 1],
                    a2[k + 2],
                    a2[k + 3],
                    a2[k + 4],
                    a2[k + 5],
                    a2[k + 6],
                    a2[k + 7],
                ],
                [
                    a3[k],
                    a3[k + 1],
                    a3[k + 2],
                    a3[k + 3],
                    a3[k + 4],
                    a3[k + 5],
                    a3[k + 6],
                    a3[k + 7],
                ],
            ];
            if av.iter().flatten().all(|&v| v != 0.0) {
                let bs = &b[k * n..(k + 8) * n];
                for i in 0..n {
                    let bv = [
                        bs[i],
                        bs[n + i],
                        bs[2 * n + i],
                        bs[3 * n + i],
                        bs[4 * n + i],
                        bs[5 * n + i],
                        bs[6 * n + i],
                        bs[7 * n + i],
                    ];
                    let mut t0 = o0[i];
                    let mut t1 = o1[i];
                    let mut t2 = o2[i];
                    let mut t3 = o3[i];
                    for j in 0..8 {
                        t0 += av[0][j] * bv[j];
                        t1 += av[1][j] * bv[j];
                        t2 += av[2][j] * bv[j];
                        t3 += av[3][j] * bv[j];
                    }
                    o0[i] = t0;
                    o1[i] = t1;
                    o2[i] = t2;
                    o3[i] = t3;
                }
            } else {
                Self::axpy8_skip(&av[0], b, o0, n, k);
                Self::axpy8_skip(&av[1], b, o1, n, k);
                Self::axpy8_skip(&av[2], b, o2, n, k);
                Self::axpy8_skip(&av[3], b, o3, n, k);
            }
            k += 8;
        }
        while k < k1 {
            let br = &b[k * n..(k + 1) * n];
            Self::axpy1_skip(a0[k], br, o0);
            Self::axpy1_skip(a1[k], br, o1);
            Self::axpy1_skip(a2[k], br, o2);
            Self::axpy1_skip(a3[k], br, o3);
            k += 1;
        }
    }

    /// `o += a[j] * b_row(k + j)` for the non-zero terms, in ascending-k order.
    fn axpy4_skip(ak: &[f32; 4], b: &[f32], o: &mut [f32], n: usize, k: usize) {
        for (j, &av) in ak.iter().enumerate() {
            Self::axpy1_skip(av, &b[(k + j) * n..(k + j + 1) * n], o);
        }
    }

    /// Eight-term variant of [`Matrix::axpy4_skip`].
    fn axpy8_skip(ak: &[f32; 8], b: &[f32], o: &mut [f32], n: usize, k: usize) {
        for (j, &av) in ak.iter().enumerate() {
            Self::axpy1_skip(av, &b[(k + j) * n..(k + j + 1) * n], o);
        }
    }

    /// `o += av * br`, skipping an exact-zero scale.
    fn axpy1_skip(av: f32, br: &[f32], o: &mut [f32]) {
        if av == 0.0 {
            return;
        }
        for (ov, &bv) in o.iter_mut().zip(br.iter()) {
            *ov += av * bv;
        }
    }

    /// Fused dense-layer forward kernel: `out = act(self * w + bias)`.
    ///
    /// The bias add and activation run as an epilogue over the accumulated
    /// product, eliminating the two intermediate matrices (and two full memory
    /// passes) of the naive `matmul` → `add_row_broadcast` → `apply` chain.
    /// The arithmetic per element is unchanged, so the result is bit-identical
    /// to that chain.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree or `bias` is not a `1 x w.cols()`
    /// row vector.
    pub fn matmul_bias_act_into(
        &self,
        w: &Matrix,
        bias: &Matrix,
        activation: Activation,
        out: &mut Matrix,
    ) {
        self.matmul_bias_act_into_with(w, bias, activation, out, kernel::selected());
    }

    /// [`Matrix::matmul_bias_act_into`] with an explicit kernel backend.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree or `bias` is not a `1 x w.cols()`
    /// row vector.
    pub fn matmul_bias_act_into_with(
        &self,
        w: &Matrix,
        bias: &Matrix,
        activation: Activation,
        out: &mut Matrix,
        kern: Kernel,
    ) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, w.cols, "bias width mismatch");
        self.matmul_into_with(w, out, kern);
        for row in out.data.chunks_exact_mut(w.cols) {
            for (o, &b) in row.iter_mut().zip(bias.data.iter()) {
                *o = activation.eval(*o + b);
            }
        }
    }

    /// Transpose-free product `self^T * rhs` written into `out`, using the
    /// runtime-selected kernel backend.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_at_b_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_at_b_into_with(rhs, out, kernel::selected());
    }

    /// [`Matrix::matmul_at_b_into`] with an explicit kernel backend.
    ///
    /// Replaces `self.transpose().matmul(rhs)` (the weight-gradient step of
    /// backpropagation) without materializing the transpose; under the scalar
    /// backend the accumulation order matches, so results are bit-identical.
    /// The AVX2 backend runs one 8-wide FMA axpy per `(r, k)` term.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_at_b_into_with(&self, rhs: &Matrix, out: &mut Matrix, kern: Kernel) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_at_b dimension mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reshape_zeroed(self.cols, rhs.cols);
        for r in 0..self.cols {
            for k in 0..self.rows {
                let a = self.data[k * self.cols + r];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                kernel::saxpy(kern, a, rhs_row, out_row);
            }
        }
    }

    /// Transpose-free product `self * rhs^T` written into `out`, using the
    /// runtime-selected kernel backend.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_a_bt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_a_bt_into_with(rhs, out, kernel::selected());
    }

    /// [`Matrix::matmul_a_bt_into`] with an explicit kernel backend.
    ///
    /// Replaces `self.matmul(&rhs.transpose())` (the input-gradient step of
    /// backpropagation). Both operands are traversed along contiguous rows —
    /// a dot product per output entry — with the same `k` accumulation order
    /// as the naive chain under the scalar backend, so results are
    /// bit-identical there. The AVX2 backend reduces with four independent
    /// vector accumulators ([`kernel::sdot`]).
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_a_bt_into_with(&self, rhs: &Matrix, out: &mut Matrix, kern: Kernel) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_a_bt dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reshape_zeroed(self.rows, rhs.rows);
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            let out_row = &mut out.data[r * rhs.rows..(r + 1) * rhs.rows];
            for (o, b_row) in out_row.iter_mut().zip(rhs.data.chunks_exact(self.cols)) {
                // No zero-skip here: inside a dot product it saves one FMA but
                // defeats vectorization, and adding `0.0 * b` is bit-neutral
                // for finite operands.
                *o = kernel::sdot(kern, a_row, b_row);
            }
        }
    }

    /// Sums the rows of `src` into `self` as a `1 x cols` row vector (reshaped).
    pub fn sum_rows_into(&mut self, src: &Matrix) {
        self.reshape_zeroed(1, src.cols);
        for r in 0..src.rows {
            for c in 0..src.cols {
                self.data[c] += src.data[r * src.cols + c];
            }
        }
    }

    /// In-place update `self -= rhs * k`, the allocation-free form of
    /// `self.sub(&rhs.scale(k))` used by the optimizers.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub_scaled_assign(&mut self, rhs: &Matrix, k: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        for (o, &g) in self.data.iter_mut().zip(rhs.data.iter()) {
            *o -= g * k;
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds a row vector to every row of the matrix (bias broadcast).
    ///
    /// # Panics
    /// Panics if `bias.cols() != self.cols()` or `bias.rows() != 1`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums the rows into a single row vector (used for bias gradients).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Multiplies every entry by a scalar.
    pub fn scale(&self, k: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * k).collect(),
        }
    }

    /// Applies a function to every entry.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Entry accessor.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert_eq!(a.matmul(&b).as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_shapes() {
        let x = Matrix::from_rows(3, 2, &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let bias = Matrix::from_rows(1, 2, &[10.0, -10.0]);
        let shifted = x.add_row_broadcast(&bias);
        assert_eq!(shifted.get(2, 0), 13.0);
        assert_eq!(shifted.get(2, 1), -7.0);
        let sums = x.sum_rows();
        assert_eq!(sums.as_slice(), &[6.0, 6.0]);
    }

    #[test]
    fn xavier_initialization_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = Matrix::xavier_uniform(100, 50, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= limit));
        // Not all zero.
        assert!(w.as_slice().iter().any(|&v| v.abs() > 1e-6));
    }

    #[test]
    fn map_scale_hadamard() {
        let a = Matrix::from_rows(1, 3, &[1.0, -2.0, 3.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.hadamard(&a).as_slice(), &[1.0, 4.0, 9.0]);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Plain triple loop, ascending `k`, one rounded add per term — the
    /// arithmetic the scalar backend must reproduce bit-for-bit.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(r, k) * b.get(k, c);
                }
                out.as_mut_slice()[r * b.cols() + c] = acc;
            }
        }
        out
    }

    #[test]
    fn into_kernels_match_naive_on_edge_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        // Non-square and 1xN / Nx1 shapes. The scalar backend is the
        // bit-exactness reference, so the comparison pins it explicitly and
        // holds regardless of what SPLITBEAM_KERNEL dispatched.
        for (m, k, n) in [
            (1, 1, 1),
            (1, 5, 1),
            (5, 1, 5),
            (1, 3, 4),
            (4, 3, 1),
            (2, 7, 3),
        ] {
            let a = Matrix::xavier_uniform(m, k, &mut rng);
            let b = Matrix::xavier_uniform(k, n, &mut rng);
            let mut out = Matrix::zeros(1, 1);
            let mut reference = Matrix::zeros(1, 1);
            a.matmul_into_with(&b, &mut out, Kernel::Scalar);
            assert_eq!(out, naive_matmul(&a, &b), "matmul {m}x{k}*{k}x{n}");

            let at = Matrix::xavier_uniform(k, m, &mut rng);
            at.matmul_at_b_into_with(&b, &mut out, Kernel::Scalar);
            at.transpose()
                .matmul_into_with(&b, &mut reference, Kernel::Scalar);
            assert_eq!(out, reference, "at_b {k}x{m}^T*{k}x{n}");

            let bt = Matrix::xavier_uniform(n, k, &mut rng);
            a.matmul_a_bt_into_with(&bt, &mut out, Kernel::Scalar);
            a.matmul_into_with(&bt.transpose(), &mut reference, Kernel::Scalar);
            assert_eq!(out, reference, "a_bt {m}x{k}*({n}x{k})^T");
        }
    }

    #[test]
    fn simd_backend_matches_scalar_within_tolerance() {
        use mimo_math::kernel::avx2_fma_available;
        if !avx2_fma_available() {
            // Graceful fallback hosts: the dispatched path IS the scalar path.
            return;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        // The shapes the 2x2 / 3x3 / 4x4 configurations drive through the
        // dense layers (batch x in x out), plus edge cases.
        for (m, k, n) in [
            (1, 448, 56),
            (16, 448, 56),
            (12, 545, 4356),
            (1, 896, 112),
            (5, 1, 5),
            (3, 7, 33),
        ] {
            let a = Matrix::xavier_uniform(m, k, &mut rng);
            let b = Matrix::xavier_uniform(k, n, &mut rng);
            let mut scalar = Matrix::zeros(1, 1);
            let mut simd = Matrix::zeros(1, 1);
            a.matmul_into_with(&b, &mut scalar, Kernel::Scalar);
            a.matmul_into_with(&b, &mut simd, Kernel::Avx2Fma);
            let tol = 1e-5 * (k as f32).sqrt();
            for (s, v) in scalar.as_slice().iter().zip(simd.as_slice()) {
                assert!((s - v).abs() <= tol, "matmul drift {m}x{k}x{n}: {s} vs {v}");
            }

            let bt = Matrix::xavier_uniform(n, k, &mut rng);
            a.matmul_a_bt_into_with(&bt, &mut scalar, Kernel::Scalar);
            a.matmul_a_bt_into_with(&bt, &mut simd, Kernel::Avx2Fma);
            for (s, v) in scalar.as_slice().iter().zip(simd.as_slice()) {
                assert!((s - v).abs() <= tol, "a_bt drift {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn sum_rows_into_matches_sum_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let a = Matrix::xavier_uniform(4, 3, &mut rng);
        let mut out = Matrix::zeros(1, 1);
        out.sum_rows_into(&a);
        assert_eq!(out, a.sum_rows());
    }

    #[test]
    fn sub_scaled_assign_matches_sub_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let base = Matrix::xavier_uniform(3, 3, &mut rng);
        let grad = Matrix::xavier_uniform(3, 3, &mut rng);
        let expected = base.sub(&grad.scale(0.01));
        let mut updated = base.clone();
        updated.sub_scaled_assign(&grad, 0.01);
        assert_eq!(updated, expected);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_into_kernels_match_naive(m in 1usize..6, k in 1usize..6, n in 1usize..6,
                                         seed in 0u64..300) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = Matrix::xavier_uniform(m, k, &mut rng);
            let b = Matrix::xavier_uniform(k, n, &mut rng);
            let mut out = Matrix::zeros(1, 1);
            a.matmul_into_with(&b, &mut out, Kernel::Scalar);
            prop_assert_eq!(&out, &naive_matmul(&a, &b));

            let at = Matrix::xavier_uniform(k, m, &mut rng);
            at.matmul_at_b_into_with(&b, &mut out, Kernel::Scalar);
            prop_assert_eq!(&out, &naive_matmul(&at.transpose(), &b));

            let bt = Matrix::xavier_uniform(n, k, &mut rng);
            a.matmul_a_bt_into_with(&bt, &mut out, Kernel::Scalar);
            prop_assert_eq!(&out, &naive_matmul(&a, &bt.transpose()));
        }

        #[test]
        fn prop_simd_gemm_parity(m in 1usize..5, k in 1usize..40, n in 1usize..40,
                                 seed in 0u64..200) {
            use mimo_math::kernel::avx2_fma_available;
            if avx2_fma_available() {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let a = Matrix::xavier_uniform(m, k, &mut rng);
                let b = Matrix::xavier_uniform(k, n, &mut rng);
                let mut scalar = Matrix::zeros(1, 1);
                let mut simd = Matrix::zeros(1, 1);
                a.matmul_into_with(&b, &mut scalar, Kernel::Scalar);
                a.matmul_into_with(&b, &mut simd, Kernel::Avx2Fma);
                let tol = 1e-5 * (k as f32).sqrt();
                for (s, v) in scalar.as_slice().iter().zip(simd.as_slice()) {
                    prop_assert!((s - v).abs() <= tol);
                }
            }
        }

        #[test]
        fn prop_matmul_distributes_over_add(n in 1usize..5, seed in 0u64..200) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = Matrix::xavier_uniform(n, n, &mut rng);
            let b = Matrix::xavier_uniform(n, n, &mut rng);
            let c = Matrix::xavier_uniform(n, n, &mut rng);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_transpose_of_product(n in 1usize..5, seed in 0u64..200) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = Matrix::xavier_uniform(n, n, &mut rng);
            let b = Matrix::xavier_uniform(n, n, &mut rng);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
