//! Loss functions.
//!
//! The paper trains SplitBeam with the normalized L1 objective of Eq. 8:
//! the squared error of every output element divided by the magnitude of the
//! corresponding target element, summed and averaged over the batch. Plain MSE
//! and L1 are provided for the ablation benches.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Small constant protecting the normalized loss against division by zero.
const NORMALIZATION_EPS: f32 = 1e-3;

/// Supported training objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// The paper's normalized L1 loss (Eq. 8): `mean_b sum_i (p_i - t_i)^2 / (|t_i| + eps)`.
    NormalizedL1,
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
}

impl Loss {
    /// Evaluates the loss for a batch of predictions and targets.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn evaluate(self, prediction: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(
            (prediction.rows(), prediction.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let batch = prediction.rows() as f32;
        match self {
            Loss::NormalizedL1 => {
                let mut total = 0.0;
                for (p, t) in prediction.as_slice().iter().zip(target.as_slice()) {
                    let diff = p - t;
                    total += diff * diff / (t.abs() + NORMALIZATION_EPS);
                }
                total / batch
            }
            Loss::Mse => {
                let diff = prediction.sub(target);
                diff.as_slice().iter().map(|v| v * v).sum::<f32>()
                    / (prediction.as_slice().len() as f32)
            }
            Loss::Mae => {
                let diff = prediction.sub(target);
                diff.as_slice().iter().map(|v| v.abs()).sum::<f32>()
                    / (prediction.as_slice().len() as f32)
            }
        }
    }

    /// Gradient of the loss written into `out` (reshaped, storage reused).
    ///
    /// Values are bit-identical to [`Loss::gradient`].
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn gradient_into(self, prediction: &Matrix, target: &Matrix, out: &mut Matrix) {
        assert_eq!(
            (prediction.rows(), prediction.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let batch = prediction.rows() as f32;
        out.reshape_zeroed(prediction.rows(), prediction.cols());
        match self {
            Loss::NormalizedL1 => {
                for ((g, &p), &t) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(prediction.as_slice())
                    .zip(target.as_slice())
                {
                    *g = 2.0 * (p - t) / ((t.abs() + NORMALIZATION_EPS) * batch);
                }
            }
            Loss::Mse => {
                let k = 2.0 / prediction.as_slice().len() as f32;
                for ((g, &p), &t) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(prediction.as_slice())
                    .zip(target.as_slice())
                {
                    *g = (p - t) * k;
                }
            }
            Loss::Mae => {
                let n = prediction.as_slice().len() as f32;
                for ((g, &p), &t) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(prediction.as_slice())
                    .zip(target.as_slice())
                {
                    let v = p - t;
                    *g = if v > 0.0 {
                        1.0 / n
                    } else if v < 0.0 {
                        -1.0 / n
                    } else {
                        0.0
                    };
                }
            }
        }
    }

    /// Gradient of the loss with respect to the predictions.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn gradient(self, prediction: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(
            (prediction.rows(), prediction.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let batch = prediction.rows() as f32;
        match self {
            Loss::NormalizedL1 => {
                let mut grad = prediction.clone();
                for ((g, p), t) in grad
                    .as_mut_slice()
                    .iter_mut()
                    .zip(prediction.as_slice())
                    .zip(target.as_slice())
                {
                    *g = 2.0 * (p - t) / ((t.abs() + NORMALIZATION_EPS) * batch);
                }
                grad
            }
            Loss::Mse => prediction
                .sub(target)
                .scale(2.0 / prediction.as_slice().len() as f32),
            Loss::Mae => {
                let n = prediction.as_slice().len() as f32;
                prediction.sub(target).map(move |v| {
                    if v > 0.0 {
                        1.0 / n
                    } else if v < 0.0 {
                        -1.0 / n
                    } else {
                        0.0
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_for_perfect_prediction() {
        let t = Matrix::from_rows(2, 2, &[1.0, -2.0, 0.5, 3.0]);
        for loss in [Loss::NormalizedL1, Loss::Mse, Loss::Mae] {
            assert!(loss.evaluate(&t, &t).abs() < 1e-9);
            assert!(loss
                .gradient(&t, &t)
                .as_slice()
                .iter()
                .all(|v| v.abs() < 1e-9));
        }
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(1, 2, &[1.0, 3.0]);
        let t = Matrix::from_rows(1, 2, &[0.0, 1.0]);
        // ((1)^2 + (2)^2) / 2 = 2.5
        assert!((Loss::Mse.evaluate(&p, &t) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn normalized_loss_weights_small_targets_more() {
        let target_small = Matrix::from_rows(1, 1, &[0.1]);
        let target_large = Matrix::from_rows(1, 1, &[10.0]);
        let pred_small = Matrix::from_rows(1, 1, &[0.2]);
        let pred_large = Matrix::from_rows(1, 1, &[10.1]);
        // Same absolute error (0.1) but the small target is penalized more.
        let small = Loss::NormalizedL1.evaluate(&pred_small, &target_small);
        let large = Loss::NormalizedL1.evaluate(&pred_large, &target_large);
        assert!(small > large);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let p = Matrix::from_rows(2, 3, &[0.3, -0.8, 1.2, 0.1, 0.7, -0.4]);
        let t = Matrix::from_rows(2, 3, &[0.5, -1.0, 1.0, 0.4, 0.5, -0.5]);
        let eps = 1e-3f32;
        for loss in [Loss::NormalizedL1, Loss::Mse] {
            let grad = loss.gradient(&p, &t);
            for idx in 0..6 {
                let mut plus = p.clone();
                plus.as_mut_slice()[idx] += eps;
                let mut minus = p.clone();
                minus.as_mut_slice()[idx] -= eps;
                let numerical =
                    (loss.evaluate(&plus, &t) - loss.evaluate(&minus, &t)) / (2.0 * eps);
                assert!(
                    (numerical - grad.as_slice()[idx]).abs() < 1e-2,
                    "{loss:?} idx {idx}: numerical {numerical} vs analytic {}",
                    grad.as_slice()[idx]
                );
            }
        }
    }

    #[test]
    fn mae_gradient_is_sign() {
        let p = Matrix::from_rows(1, 2, &[2.0, -3.0]);
        let t = Matrix::from_rows(1, 2, &[0.0, 0.0]);
        let g = Loss::Mae.gradient(&p, &t);
        assert!(g.as_slice()[0] > 0.0);
        assert!(g.as_slice()[1] < 0.0);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let p = Matrix::zeros(1, 2);
        let t = Matrix::zeros(2, 1);
        let _ = Loss::Mse.evaluate(&p, &t);
    }
}
