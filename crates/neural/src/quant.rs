//! Int8 quantized weight store for low-precision inference.
//!
//! The serving hot path streams each dense layer's f32 weight matrix from
//! DRAM for every batch; [`QuantizedDense`] shrinks that stream 4x by holding
//! the weights as **per-output-channel symmetric int8** (one f32 scale per
//! output column, codes in `-127..=127`), packed into the K4 layout of
//! [`mimo_math::kernel::int8`]. Quantization happens **once, at model-bind
//! time** — the f32 master weights stay untouched in the owning [`Dense`]
//! layer, so the f32 path is never perturbed and a store can always be
//! re-bound from the master.
//!
//! # Inference math
//!
//! Activations are quantized dynamically per input row to **u7** asymmetric
//! codes (`a ≈ a_min + aq * a_scale`, `aq ∈ 0..=127` — the bound that keeps
//! the AVX2 `maddubs` arm saturation-free). With `wq ∈ -127..=127` and
//! `w ≈ wq * ws_j` per output column `j`:
//!
//! ```text
//! sum_k a[k] w[k][j]  ≈  ws_j * (a_scale * acc[j]  +  a_min * col_sum[j])
//! acc[j]     = sum_k aq[k] * wq[k][j]      (exact i32, the GEMM kernel)
//! col_sum[j] = sum_k wq[k][j]              (exact i32, precomputed at bind)
//! ```
//!
//! The integer accumulation is **exact** in every backend, and the epilogue
//! (scales, `col_sum` correction, bias, activation) is evaluated by one
//! shared deterministic f32 loop — so quantized outputs are bit-identical
//! across scalar / AVX2 / VNNI backends and across batch shapes, the same
//! property the f32 kernels guarantee.

use crate::layer::{Activation, Dense};
use crate::tensor::Matrix;
use mimo_math::kernel::int8::{self, Int8Kernel};

/// A dense layer's weights, quantized once to per-output-channel symmetric
/// int8 and packed for the integer GEMM tier. Immutable after binding.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDense {
    input_dim: usize,
    output_dim: usize,
    k_pad: usize,
    /// K4-packed quantized weights (`k_pad * output_dim` bytes).
    packed: Vec<i8>,
    /// Per-output-channel symmetric scale: `w ≈ wq * col_scale[j]`.
    col_scale: Vec<f32>,
    /// Per-output-channel sum of quantized weights (the asymmetric
    /// activation-zero-point correction term).
    col_sum: Vec<i32>,
    /// The layer bias, copied so inference needs no master-layer access.
    bias: Vec<f32>,
    /// The zero-point correction `col_sum * col_scale`, precomputed in f64 at
    /// bind time and narrowed once — the epilogue is the second-hottest loop
    /// after the GEMM and runs in f32 (its rounding, ~1e-7 relative, sits two
    /// orders of magnitude below the int8/u7 quantization error it dequantizes).
    corr: Vec<f32>,
    activation: Activation,
}

impl QuantizedDense {
    /// Quantizes `layer`'s weights (per-output-channel symmetric, round to
    /// nearest, codes clamped to `-127..=127`) and packs them for the integer
    /// GEMM. The layer's f32 master weights are read, never modified.
    pub fn quantize(layer: &Dense) -> Self {
        let k = layer.weights.rows();
        let n = layer.weights.cols();
        let w = layer.weights.as_slice();
        let mut col_scale = vec![0.0f32; n];
        let mut wq = vec![0i8; k * n];
        let mut col_sum = vec![0i32; n];
        for j in 0..n {
            let mut amax = 0.0f32;
            for r in 0..k {
                amax = amax.max(w[r * n + j].abs());
            }
            // All-zero (or non-finite-free degenerate) columns quantize to
            // all-zero codes under a scale of 1.
            let scale = if amax > 0.0 { amax / 127.0 } else { 1.0 };
            col_scale[j] = scale;
            let mut sum = 0i32;
            for r in 0..k {
                let q = (w[r * n + j] / scale).round().clamp(-127.0, 127.0) as i32;
                wq[r * n + j] = q as i8;
                sum += q;
            }
            col_sum[j] = sum;
        }
        let corr: Vec<f32> = col_sum
            .iter()
            .zip(&col_scale)
            .map(|(&s, &w)| (f64::from(s) * f64::from(w)) as f32)
            .collect();
        Self {
            input_dim: k,
            output_dim: n,
            k_pad: int8::padded_k(k),
            packed: int8::pack_weights_k4(&wq, k, n),
            col_scale,
            col_sum,
            bias: layer.bias.as_slice().to_vec(),
            corr,
            activation: layer.activation,
        }
    }

    /// Input dimension (the master layer's weight rows).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension (the master layer's weight columns).
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The layer activation applied by the epilogue.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Bytes of quantized weight data streamed per batch — the quantity the
    /// int8 tier exists to shrink (4x smaller than the f32 master weights,
    /// modulo the 4-row zero padding).
    pub fn weight_bytes(&self) -> usize {
        self.packed.len()
    }

    /// Worst-case absolute weight reconstruction error, `max_j col_scale[j]/2`
    /// — the symmetric-quantization bound, used by accuracy guardrails.
    pub fn max_weight_error(&self) -> f32 {
        self.col_scale.iter().fold(0.0f32, |m, &s| m.max(s)) * 0.5
    }

    /// Fused quantized `out = activation(input * W + bias)` — the int8
    /// counterpart of [`Matrix::matmul_bias_act_into_with`].
    ///
    /// Quantizes each input row to u7 codes in `scratch`, runs the integer
    /// GEMM on `kernel`, and applies the shared epilogue. `out` is
    /// reshaped to `input.rows() x output_dim`. Results are bit-identical
    /// across backends and batch shapes.
    ///
    /// # Panics
    /// Panics when `input.cols() != input_dim()`.
    pub fn matmul_bias_act_into(
        &self,
        input: &Matrix,
        scratch: &mut QuantScratch,
        out: &mut Matrix,
        kernel: Int8Kernel,
    ) {
        assert_eq!(
            input.cols(),
            self.input_dim,
            "quantized layer input dimension mismatch"
        );
        let rows = input.rows();
        let n = self.output_dim;
        scratch.prepare(rows, self.k_pad, n);
        // Per-row dynamic u7 activation quantization.
        let src = input.as_slice();
        for r in 0..rows {
            let row = &src[r * self.input_dim..(r + 1) * self.input_dim];
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let scale = (hi - lo) / 127.0;
            let dst = &mut scratch.aq[r * self.k_pad..r * self.k_pad + self.input_dim];
            if scale > 0.0 {
                let inv = 1.0 / scale;
                // `round_ties_even` (one `roundps`), not `round`: half-away
                // rounding has no x86 instruction and keeps this hot loop
                // scalar. The codes differ only on exact-half fractions, and
                // identically for every backend.
                for (d, &v) in dst.iter_mut().zip(row.iter()) {
                    *d = ((v - lo) * inv).round_ties_even().clamp(0.0, 127.0) as u8;
                }
            } else {
                // Constant row: every element is exactly `lo`.
                dst.fill(0);
            }
            scratch.row_scale[r] = if scale > 0.0 { scale } else { 0.0 };
            scratch.row_min[r] = lo;
        }
        self.finish(rows, scratch, out, kernel);
    }

    /// Fused quantized forward over rows the **caller** quantizes: `fill` is
    /// invoked once per row with the row's `input_dim`-long u7 code buffer
    /// (pre-zeroed, so writing a prefix leaves padding clean) and returns the
    /// row's `(scale, min)` dequantization parameters, under the same
    /// contract the internal quantizer produces: `value ≈ min + code * scale`
    /// with codes in `0..=127`, and `scale == 0.0` meaning a constant row of
    /// exactly `min`.
    ///
    /// This is the seam for callers whose inputs already *are* quantization
    /// codes (e.g. decoded wire payloads): they can map source codes to u7
    /// directly — a small LUT instead of a dequantize-to-f32 round trip —
    /// and still share the exact GEMM + epilogue of
    /// [`Self::matmul_bias_act_into`], preserving bit-identical results
    /// across backends and batch shapes.
    ///
    /// # Panics
    /// Panics when `rows == 0`.
    pub fn matmul_bias_act_from_rows<F>(
        &self,
        rows: usize,
        mut fill: F,
        scratch: &mut QuantScratch,
        out: &mut Matrix,
        kernel: Int8Kernel,
    ) where
        F: FnMut(usize, &mut [u8]) -> (f32, f32),
    {
        self.try_matmul_bias_act_from_rows(rows, |r, dst| Ok(fill(r, dst)), scratch, out, kernel)
            .unwrap_or_else(|e: std::convert::Infallible| match e {})
    }

    /// Fallible variant of [`Self::matmul_bias_act_from_rows`]: `fill` may
    /// reject a row, in which case the error is returned before the GEMM
    /// runs and `out` is left untouched. This lets streaming callers
    /// validate payloads row-by-row while filling — no intermediate
    /// collection of the batch, so the hot path stays allocation-free.
    ///
    /// # Panics
    /// Panics when `rows == 0`.
    pub fn try_matmul_bias_act_from_rows<F, E>(
        &self,
        rows: usize,
        mut fill: F,
        scratch: &mut QuantScratch,
        out: &mut Matrix,
        kernel: Int8Kernel,
    ) -> Result<(), E>
    where
        F: FnMut(usize, &mut [u8]) -> Result<(f32, f32), E>,
    {
        assert!(rows > 0, "quantized forward needs at least one row");
        scratch.prepare(rows, self.k_pad, self.output_dim);
        for r in 0..rows {
            let dst = &mut scratch.aq[r * self.k_pad..r * self.k_pad + self.input_dim];
            let (scale, min) = fill(r, dst)?;
            scratch.row_scale[r] = scale;
            scratch.row_min[r] = min;
        }
        self.finish(rows, scratch, out, kernel);
        Ok(())
    }

    /// The shared back half of both forward entries: integer GEMM, then the
    /// dequantize+bias+activation epilogue. Expects `scratch` prepared and
    /// its `aq`/`row_scale`/`row_min` filled for `rows` rows.
    fn finish(
        &self,
        rows: usize,
        scratch: &mut QuantScratch,
        out: &mut Matrix,
        kernel: Int8Kernel,
    ) {
        let n = self.output_dim;
        // Overwrite-mode GEMM: writes every `rows x n` slot, so `acc` needs
        // no zeroing beforehand.
        int8::gemm_u8i8_i32(
            kernel,
            &scratch.aq,
            &self.packed,
            &mut scratch.acc,
            rows,
            self.k_pad,
            n,
        );
        // Shared scalar epilogue: dequantize, bias, activation — identical
        // code for every backend, so backend choice can only affect `acc`,
        // which is exact. The activation dispatch is hoisted out of the
        // element loop so the common Identity/Relu cases stay branch-free
        // and autovectorizable.
        out.reshape_for_overwrite(rows, n);
        let dst = out.as_mut_slice();
        match self.activation {
            Activation::Identity => self.epilogue(rows, n, scratch, dst, |v| v),
            Activation::Relu => self.epilogue(rows, n, scratch, dst, |v| v.max(0.0)),
            Activation::Tanh => self.epilogue(rows, n, scratch, dst, tanh_fast),
            Activation::LeakyRelu => {
                self.epilogue(
                    rows,
                    n,
                    scratch,
                    dst,
                    |v| {
                        if v >= 0.0 {
                            v
                        } else {
                            0.01 * v
                        }
                    },
                )
            }
        }
    }

    /// The dequantize+bias epilogue with the activation monomorphized in:
    /// `out = act(acc * ws * a_scale + (a_min * corr + bias))`.
    ///
    /// Runs in f32: `acc` fits 27 bits so the i32→f32 narrowing loses at most
    /// ~6e-8 relative, and every further rounding sits far below the int8/u7
    /// quantization error the formula dequantizes — while keeping the loop
    /// twice as wide under SIMD as the f64 equivalent. Plain indexed loops
    /// over equal-length slice prefixes so the bounds checks hoist and the
    /// body autovectorizes.
    #[inline(always)]
    fn epilogue<F: Fn(f32) -> f32>(
        &self,
        rows: usize,
        n: usize,
        scratch: &QuantScratch,
        dst: &mut [f32],
        act: F,
    ) {
        let ws = &self.col_scale[..n];
        let corr = &self.corr[..n];
        let bias = &self.bias[..n];
        for r in 0..rows {
            let a_scale = scratch.row_scale[r];
            let a_min = scratch.row_min[r];
            let acc_row = &scratch.acc[r * n..(r + 1) * n];
            let out_row = &mut dst[r * n..(r + 1) * n];
            for j in 0..n {
                let real = acc_row[j] as f32 * ws[j] * a_scale + (a_min * corr[j] + bias[j]);
                out_row[j] = act(real);
            }
        }
    }
}

/// Rational tanh used by the int8 epilogue: the 7th-order Lambert continued
/// fraction, clamped at the saturation point (absolute error < 3e-5 — two
/// orders of magnitude below the u7/int8 quantization error of the inputs it
/// activates). Keeps the hot epilogue free of libm calls; the f32 master
/// path still evaluates `f32::tanh` untouched. Deterministic plain f32
/// arithmetic, so the cross-backend bit-exactness of the quantized path is
/// unaffected.
#[inline(always)]
fn tanh_fast(v: f32) -> f32 {
    let x = v.clamp(-4.97, 4.97);
    let x2 = x * x;
    let p = x * (135135.0 + x2 * (17325.0 + x2 * (378.0 + x2)));
    let q = 135135.0 + x2 * (62370.0 + x2 * (3150.0 + 28.0 * x2));
    (p / q).clamp(-1.0, 1.0)
}

/// Reusable buffers for [`QuantizedDense::matmul_bias_act_into`]: quantized
/// activation rows (zero-padded to the K4 depth), the i32 accumulator, and
/// the per-row quantization parameters.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    aq: Vec<u8>,
    acc: Vec<i32>,
    row_scale: Vec<f32>,
    row_min: Vec<f32>,
}

impl QuantScratch {
    /// Empty scratch; buffers grow on first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, rows: usize, k_pad: usize, n: usize) {
        self.aq.clear();
        self.aq.resize(rows * k_pad, 0);
        // No clear for `acc`: the overwrite-mode GEMM writes every slot, so
        // stale values from a previous (possibly differently shaped) call
        // are harmless and the full memset is skipped — this buffer is the
        // largest in the scratch (batch x widest layer).
        self.acc.resize(rows * n, 0);
        self.row_scale.clear();
        self.row_scale.resize(rows, 0.0);
        self.row_min.clear();
        self.row_min.resize(rows, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_math::Kernel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layer(k: usize, n: usize, activation: Activation, seed: u64) -> Dense {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut l = Dense::new(k, n, activation, &mut rng);
        let w = l.weights.as_mut_slice();
        for (i, v) in w.iter_mut().enumerate() {
            *v = ((((i as u64).wrapping_mul(97) + seed) % 200) as f32 - 100.0) * 0.013;
        }
        let b = l.bias.as_mut_slice();
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as f32) - 1.5) * 0.05;
        }
        l
    }

    fn input(rows: usize, k: usize, seed: u64) -> Matrix {
        let mut m = Matrix::zeros(rows, k);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((((i as u64).wrapping_mul(41) + seed) % 97) as f32 - 48.0) * 0.02;
        }
        m
    }

    fn backends() -> Vec<Int8Kernel> {
        let mut ks = vec![Int8Kernel::Scalar];
        if int8::avx2_available() {
            ks.push(Int8Kernel::Avx2Maddubs);
        }
        if int8::avx512_vnni_available() {
            ks.push(Int8Kernel::Avx512Vnni);
        }
        ks
    }

    #[test]
    fn quantized_forward_tracks_the_f32_layer() {
        for activation in [Activation::Identity, Activation::Relu, Activation::Tanh] {
            let l = layer(37, 23, activation, 5);
            let q = QuantizedDense::quantize(&l);
            assert_eq!(q.input_dim(), 37);
            assert_eq!(q.output_dim(), 23);
            assert!(q.weight_bytes() >= 37 * 23);
            let x = input(6, 37, 11);
            let mut want = Matrix::zeros(1, 1);
            l.infer_into_with(&x, &mut want, Kernel::Scalar);
            let mut got = Matrix::zeros(1, 1);
            let mut scratch = QuantScratch::new();
            q.matmul_bias_act_into(&x, &mut scratch, &mut got, Int8Kernel::Scalar);
            // int8 weights + u7 activations: ~1% relative error budget on
            // these O(1) magnitudes.
            for (g, w) in got.as_slice().iter().zip(want.as_slice().iter()) {
                assert!(
                    (g - w).abs() < 0.05,
                    "{activation:?}: quantized {g} vs f32 {w}"
                );
            }
        }
    }

    #[test]
    fn backends_and_batch_shapes_agree_bitwise() {
        let l = layer(45, 31, Activation::LeakyRelu, 9);
        let q = QuantizedDense::quantize(&l);
        let x = input(7, 45, 3);
        let mut scratch = QuantScratch::new();
        let mut want = Matrix::zeros(1, 1);
        q.matmul_bias_act_into(&x, &mut scratch, &mut want, Int8Kernel::Scalar);
        for backend in backends() {
            // Whole batch.
            let mut got = Matrix::zeros(1, 1);
            q.matmul_bias_act_into(&x, &mut scratch, &mut got, backend);
            let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "{backend:?} batched");
            // Row at a time must match the batched call exactly.
            for r in 0..x.rows() {
                let mut row_in = Matrix::zeros(1, x.cols());
                row_in
                    .as_mut_slice()
                    .copy_from_slice(&x.as_slice()[r * x.cols()..(r + 1) * x.cols()]);
                let mut row_out = Matrix::zeros(1, 1);
                q.matmul_bias_act_into(&row_in, &mut scratch, &mut row_out, backend);
                let row_bits: Vec<u32> = row_out.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    row_bits,
                    want_bits[r * 31..(r + 1) * 31].to_vec(),
                    "{backend:?} row {r}"
                );
            }
        }
    }

    #[test]
    fn constant_and_zero_inputs_are_exact() {
        let l = layer(8, 5, Activation::Identity, 21);
        let q = QuantizedDense::quantize(&l);
        // A constant row carries no quantization error at all: the whole row
        // is the zero point, so the reconstruction is exact up to f32/f64
        // rounding of the correction term.
        let mut x = Matrix::zeros(2, 8);
        for v in x.as_mut_slice()[8..].iter_mut() {
            *v = 0.75;
        }
        let mut want = Matrix::zeros(1, 1);
        l.infer_into_with(&x, &mut want, Kernel::Scalar);
        let mut got = Matrix::zeros(1, 1);
        let mut scratch = QuantScratch::new();
        q.matmul_bias_act_into(&x, &mut scratch, &mut got, Int8Kernel::Scalar);
        for (g, w) in got.as_slice().iter().zip(want.as_slice().iter()) {
            // Only weight-quantization error remains (< col_scale/2 per term).
            assert!(
                (g - w).abs() < 8.0 * q.max_weight_error() + 1e-6,
                "{g} vs {w}"
            );
        }
    }

    #[test]
    fn all_zero_weight_columns_bind_cleanly() {
        let mut l = layer(6, 4, Activation::Identity, 2);
        let n = l.weights.cols();
        for r in 0..l.weights.rows() {
            l.weights.as_mut_slice()[r * n + 2] = 0.0;
        }
        let q = QuantizedDense::quantize(&l);
        let x = input(3, 6, 17);
        let mut out = Matrix::zeros(1, 1);
        let mut scratch = QuantScratch::new();
        q.matmul_bias_act_into(&x, &mut scratch, &mut out, Int8Kernel::Scalar);
        for r in 0..3 {
            let got = out.as_slice()[r * 4 + 2];
            let bias = l.bias.as_slice()[2];
            assert_eq!(got, bias, "zero column must produce exactly the bias");
        }
    }
}
