//! Discrete-event virtual-time core: clock, scheduler, jitter, shared medium.
//!
//! The serving stack used to be round-lockstep — every station's feedback
//! landed "simultaneously" and the delay model was consulted only after the
//! fact. This module makes time a first-class simulation dimension:
//!
//! * a **virtual clock** counted in integer nanoseconds ([`VirtualNs`]) — no
//!   wall clock anywhere, so runs are bit-reproducible,
//! * an **event scheduler** ([`EventQueue`]): a priority queue with
//!   deterministic tie-breaking by `(time, station_id, seq)` — two events
//!   at the same instant pop in station order, two events of one station pop
//!   in schedule order. Two backends produce that order bit-for-bit: the
//!   default hierarchical **timer wheel** (`crate::wheel`, O(1) amortized,
//!   built for fleet-scale event counts) and the original **binary heap**,
//!   kept as the parity oracle. `SPLITBEAM_EVENT_QUEUE={wheel,heap}` pins the
//!   backend process-wide,
//! * **seeded jitter** ([`SeededJitter`]): per-event timing noise drawn from a
//!   deterministic stream (`SPLITBEAM_JITTER_NS` sets the amplitude),
//! * a **shared medium** ([`SharedMedium`]): feedback frames serialize on the
//!   air one at a time, each occupying exactly
//!   [`wifi_phy::sounding::feedback_frame_airtime_s`] — the same per-frame
//!   primitive the round-level airtime math sums — so concurrent stations
//!   contend for airtime instead of arriving for free.

use crate::wheel::TimerWheel;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wifi_phy::sounding::feedback_frame_airtime_s;

/// Virtual time in integer nanoseconds since simulation start.
pub type VirtualNs = u64;

/// Converts seconds to virtual nanoseconds (saturating, rounded to nearest).
pub fn s_to_ns(seconds: f64) -> VirtualNs {
    if seconds <= 0.0 {
        return 0;
    }
    let ns = (seconds * 1e9).round();
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Converts virtual nanoseconds to seconds.
pub fn ns_to_s(ns: VirtualNs) -> f64 {
    ns as f64 / 1e9
}

/// Total order of scheduled events: time first, then station id, then the
/// scheduler-assigned sequence number. The triple is unique per event, so the
/// pop order is fully deterministic regardless of heap internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Virtual firing time.
    pub time_ns: VirtualNs,
    /// Station the event belongs to (tie-break one).
    pub station: u64,
    /// Monotonic schedule counter (tie-break two; unique per queue).
    pub seq: u64,
}

/// A deterministic discrete-event scheduler over [`EventKey`]. Payloads need
/// no ordering of their own.
///
/// Two interchangeable backends share the exact pop order:
///
/// * **wheel** (default): hierarchical timer wheel — `O(1)` amortized
///   schedule/pop, allocation-free in steady state once warm. The engine the
///   fleet layer runs on.
/// * **heap**: the original binary min-heap — `O(log n)`, kept as the parity
///   oracle for the wheel.
///
/// [`EventQueue::new`] and [`EventQueue::with_capacity`] consult the
/// `SPLITBEAM_EVENT_QUEUE` knob (`wheel`/`heap`, anything else falls back to
/// the wheel); [`EventQueue::heap`] and [`EventQueue::wheel`] pin a backend
/// explicitly. Every PR 5–7 event/streaming parity suite passes bitwise under
/// both settings.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    backend: Backend<T>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
enum Backend<T> {
    Heap(BinaryHeap<Reverse<HeapEntry<T>>>),
    // Boxed: the wheel's inline slot/bitmap arrays are ~2.5 KB, far larger
    // than the heap variant.
    Wheel(Box<TimerWheel<T>>),
}

#[derive(Debug, Clone)]
struct HeapEntry<T> {
    key: EventKey,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue on the backend selected by `SPLITBEAM_EVENT_QUEUE`
    /// (defaulting to the timer wheel).
    pub fn new() -> Self {
        match mimo_math::env::raw("SPLITBEAM_EVENT_QUEUE").as_deref() {
            Some("heap") => Self::heap(),
            _ => Self::wheel(),
        }
    }

    /// An empty queue pre-sized for `events` pending events, on the backend
    /// selected by `SPLITBEAM_EVENT_QUEUE`. Pre-sizing makes steady-state
    /// schedule→pop cycles allocation-free on both backends (pinned by the
    /// `alloc_event_queue` sentinel).
    pub fn with_capacity(events: usize) -> Self {
        let mut queue = Self::new();
        queue.reserve(events);
        queue
    }

    /// An empty queue pinned to the binary-heap backend (the parity oracle).
    pub fn heap() -> Self {
        Self {
            backend: Backend::Heap(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// An empty queue pinned to the timer-wheel backend.
    pub fn wheel() -> Self {
        Self {
            backend: Backend::Wheel(Box::new(TimerWheel::new())),
            next_seq: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events, so bursts
    /// up to the reserved size never regrow the backing storage.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.reserve(additional),
            Backend::Wheel(wheel) => wheel.reserve(additional),
        }
    }

    /// Name of the active backend (`"wheel"` or `"heap"`), for reports.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Heap(_) => "heap",
            Backend::Wheel(_) => "wheel",
        }
    }

    /// Schedules `payload` for `station` at `time_ns`, returning the assigned
    /// key (the sequence number makes it unique).
    pub fn schedule(&mut self, time_ns: VirtualNs, station: u64, payload: T) -> EventKey {
        let key = EventKey {
            time_ns,
            station,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Reverse(HeapEntry { key, payload })),
            Backend::Wheel(wheel) => wheel.schedule(key, payload),
        }
        key
    }

    /// Removes and returns the earliest event (ties broken by station, then
    /// schedule order).
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|Reverse(e)| (e.key, e.payload)),
            Backend::Wheel(wheel) => wheel.pop(),
        }
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<VirtualNs> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|Reverse(e)| e.key.time_ns),
            Backend::Wheel(wheel) => wheel.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Deterministic per-event timing noise: uniform draws in `[0, max_ns]` from a
/// seeded stream. `max_ns == 0` disables jitter (and draws nothing from the
/// stream, so enabling jitter never perturbs other seeded decisions).
#[derive(Debug, Clone)]
pub struct SeededJitter {
    max_ns: VirtualNs,
    rng: ChaCha8Rng,
}

impl SeededJitter {
    /// Jitter with amplitude `max_ns`, seeded with `seed`.
    pub fn new(max_ns: VirtualNs, seed: u64) -> Self {
        Self {
            max_ns,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// No jitter: every draw is zero.
    pub fn none() -> Self {
        Self::new(0, 0)
    }

    /// Amplitude from the `SPLITBEAM_JITTER_NS` environment variable
    /// (defaulting to `default_ns` when unset or unparsable), seeded with
    /// `seed`.
    pub fn from_env(default_ns: VirtualNs, seed: u64) -> Self {
        Self::new(
            mimo_math::env::parse_or("SPLITBEAM_JITTER_NS", default_ns),
            seed,
        )
    }

    /// The configured amplitude.
    pub fn max_ns(&self) -> VirtualNs {
        self.max_ns
    }

    /// Draws the next jitter value in `[0, max_ns]`.
    pub fn draw(&mut self) -> VirtualNs {
        if self.max_ns == 0 {
            return 0;
        }
        self.rng.gen_range(0..=self.max_ns)
    }
}

/// Deterministic periodic watermark generator for streaming micro-batch
/// serving: a virtual-time tick every `step_ns`, starting at `next_ns`.
///
/// The streaming server closes a shard's micro-batch when a watermark passes
/// the Eq. 7d service deadline of the shard's oldest pending frame. Watermarks
/// are pure virtual-time arithmetic — no wall clock, no jitter — so the same
/// event trace always produces the same watermark sequence, which is what
/// keeps streaming runs bit-reproducible and lets the single-watermark
/// degenerate case collapse back to lockstep round closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatermarkClock {
    next_ns: VirtualNs,
    step_ns: VirtualNs,
}

impl WatermarkClock {
    /// A clock whose first watermark fires at `start_ns` and every `step_ns`
    /// after (step clamped to at least 1 ns so the clock always advances).
    pub fn new(start_ns: VirtualNs, step_ns: VirtualNs) -> Self {
        Self {
            next_ns: start_ns,
            step_ns: step_ns.max(1),
        }
    }

    /// The next watermark instant that has not fired yet.
    pub fn next_ns(&self) -> VirtualNs {
        self.next_ns
    }

    /// The configured step.
    pub fn step_ns(&self) -> VirtualNs {
        self.step_ns
    }

    /// Fires the next watermark if it is due at `now_ns` (inclusive),
    /// advancing the clock by one step. Call in a loop to drain every due
    /// watermark one at a time — each fired watermark is returned exactly
    /// once, in order, even when `now_ns` jumps several steps ahead.
    pub fn pop_due(&mut self, now_ns: VirtualNs) -> Option<VirtualNs> {
        if self.next_ns > now_ns {
            return None;
        }
        let fired = self.next_ns;
        self.next_ns = self.next_ns.saturating_add(self.step_ns);
        Some(fired)
    }
}

/// What one frame's trip across the shared medium cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediumGrant {
    /// When the frame started transmitting (>= its ready time).
    pub start_ns: VirtualNs,
    /// When the last bit left the air (arrival at the AP).
    pub end_ns: VirtualNs,
    /// Time spent queueing behind earlier frames (`start - ready`).
    pub wait_ns: VirtualNs,
    /// On-air duration of the frame itself.
    pub air_ns: VirtualNs,
}

/// A single shared wireless medium: frames serialize, one at a time, in the
/// order they are offered. Each frame occupies the air for exactly
/// [`feedback_frame_airtime_s`] of its payload size — the same per-frame
/// primitive `wifi_phy::sounding::sounding_round_airtime` sums — so the
/// *per-bit* cost of medium contention and of the round-level airtime model
/// can never drift apart. Callers choose what bit count to charge: the
/// event-driven serving driver feeds the **actual encoded wire frame** size
/// (header included, byte-rounded — `splitbeam::airtime::feedback_bits_on_air`
/// rounded up), whereas the analytic Fig. 7 accounting feeds the paper's
/// headerless `model_feedback_bits` convention.
///
/// Offer frames in nondecreasing ready-time order (pop them from an
/// [`EventQueue`]) for physical FIFO semantics; the model itself only
/// guarantees that transmissions never overlap.
#[derive(Debug, Clone)]
pub struct SharedMedium {
    /// Feedback data rate in Mbit/s; `None` models an ideal (zero-airtime)
    /// medium — the lockstep degenerate case.
    rate_mbps: Option<f64>,
    busy_until_ns: VirtualNs,
    frames_carried: u64,
    total_air_ns: VirtualNs,
    total_wait_ns: VirtualNs,
}

impl SharedMedium {
    /// A medium transmitting feedback at `rate_mbps`.
    pub fn new(rate_mbps: f64) -> Self {
        assert!(rate_mbps > 0.0, "medium rate must be positive");
        Self {
            rate_mbps: Some(rate_mbps),
            busy_until_ns: 0,
            frames_carried: 0,
            total_air_ns: 0,
            total_wait_ns: 0,
        }
    }

    /// An ideal medium: frames take zero airtime and never queue. This is the
    /// degenerate case that recovers lockstep serving bit-exactly.
    pub fn ideal() -> Self {
        Self {
            rate_mbps: None,
            busy_until_ns: 0,
            frames_carried: 0,
            total_air_ns: 0,
            total_wait_ns: 0,
        }
    }

    /// Whether this is the zero-airtime ideal medium.
    pub fn is_ideal(&self) -> bool {
        self.rate_mbps.is_none()
    }

    /// On-air duration of one `payload_bits` frame on this medium.
    pub fn frame_airtime_ns(&self, payload_bits: usize) -> VirtualNs {
        match self.rate_mbps {
            Some(rate) => s_to_ns(feedback_frame_airtime_s(payload_bits, rate)),
            None => 0,
        }
    }

    /// Serializes one frame that becomes ready at `ready_ns`: it starts once
    /// the air is free, occupies it for the frame's airtime, and arrives when
    /// the last bit lands.
    pub fn transmit(&mut self, ready_ns: VirtualNs, payload_bits: usize) -> MediumGrant {
        let air_ns = self.frame_airtime_ns(payload_bits);
        let start_ns = ready_ns.max(self.busy_until_ns);
        let end_ns = start_ns.saturating_add(air_ns);
        self.busy_until_ns = end_ns;
        self.frames_carried += 1;
        self.total_air_ns += air_ns;
        self.total_wait_ns += start_ns - ready_ns;
        MediumGrant {
            start_ns,
            end_ns,
            wait_ns: start_ns - ready_ns,
            air_ns,
        }
    }

    /// When the medium next becomes idle.
    pub fn busy_until_ns(&self) -> VirtualNs {
        self.busy_until_ns
    }

    /// Frames carried so far.
    pub fn frames_carried(&self) -> u64 {
        self.frames_carried
    }

    /// Cumulative on-air time of all carried frames.
    pub fn total_air_ns(&self) -> VirtualNs {
        self.total_air_ns
    }

    /// Cumulative queueing (medium-wait) time across all carried frames.
    pub fn total_wait_ns(&self) -> VirtualNs {
        self.total_wait_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbeam::airtime::{model_feedback_bits, splitbeam_frame_airtime_s};
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};
    use wifi_phy::sounding::SoundingConfig;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(s_to_ns(0.0), 0);
        assert_eq!(s_to_ns(-1.0), 0);
        assert_eq!(s_to_ns(1e-9), 1);
        assert_eq!(s_to_ns(0.01), 10_000_000);
        assert!((ns_to_s(10_000_000) - 0.01).abs() < 1e-15);
        assert_eq!(s_to_ns(f64::MAX), u64::MAX);
    }

    #[test]
    fn queue_pops_in_time_station_seq_order() {
        for mut q in [EventQueue::heap(), EventQueue::wheel()] {
            q.schedule(50, 9, "late");
            q.schedule(10, 7, "tie-station-7-first-scheduled");
            q.schedule(10, 7, "tie-station-7-second-scheduled");
            q.schedule(10, 3, "tie-station-3");
            q.schedule(5, 11, "earliest");
            assert_eq!(q.len(), 5);
            assert_eq!(q.peek_time(), Some(5), "{}", q.backend_name());
            let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
            assert_eq!(
                order,
                vec![
                    "earliest",
                    "tie-station-3",
                    "tie-station-7-first-scheduled",
                    "tie-station-7-second-scheduled",
                    "late",
                ],
                "{}",
                q.backend_name()
            );
            assert!(q.is_empty());
        }
    }

    /// The wheel backend is the heap's bit-for-bit twin: under a seeded
    /// random interleaving of schedules and pops — deliberate (time,
    /// station) ties, spreads crossing every wheel level, and schedules
    /// landing before an already-advanced horizon — both backends return
    /// identical `(key, payload)` streams.
    #[test]
    fn wheel_and_heap_pop_identically_under_random_interleaving() {
        for seed in 0..4u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(0xEEE + seed);
            let mut heap = EventQueue::heap();
            let mut wheel = EventQueue::wheel();
            let mut popped = 0u64;
            for step in 0..4_000u64 {
                if rng.gen_bool(0.55) || heap.is_empty() {
                    // Mix fine offsets (same-tick ties) with jumps across
                    // wheel levels.
                    let horizon: u64 = 1u64 << rng.gen_range(0..44u32);
                    let time = rng.gen_range(0..=horizon);
                    let station = rng.gen_range(0..7);
                    let a = heap.schedule(time, station, step);
                    let b = wheel.schedule(time, station, step);
                    assert_eq!(a, b);
                } else {
                    assert_eq!(heap.pop(), wheel.pop(), "seed {seed} step {step}");
                    popped += 1;
                }
                assert_eq!(heap.len(), wheel.len());
                assert_eq!(heap.peek_time(), wheel.peek_time());
            }
            while let Some(expect) = heap.pop() {
                assert_eq!(wheel.pop(), Some(expect), "seed {seed} drain");
                popped += 1;
            }
            assert!(wheel.is_empty());
            assert!(popped > 1_000, "interleaving degenerated: {popped} pops");
        }
    }

    #[test]
    fn backend_pin_selects_and_capacity_presizes() {
        // `new()` honors the env pin; this test doesn't set it (the suite
        // runs under both values in CI), it just checks the name is one of
        // the two and `with_capacity` preserves the choice.
        let q: EventQueue<()> = EventQueue::new();
        let name = q.backend_name();
        assert!(name == "wheel" || name == "heap");
        assert_eq!(EventQueue::<()>::with_capacity(1024).backend_name(), name);
        assert_eq!(EventQueue::<()>::heap().backend_name(), "heap");
        assert_eq!(EventQueue::<()>::wheel().backend_name(), "wheel");
        let mut pinned: EventQueue<u8> = EventQueue::wheel();
        pinned.reserve(128);
        pinned.schedule(3, 0, 1);
        assert_eq!(pinned.pop().map(|(_, p)| p), Some(1));
    }

    #[test]
    fn queue_keys_are_unique_and_monotonic_in_seq() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, 1, ());
        let b = q.schedule(1, 1, ());
        assert!(a.seq < b.seq);
        assert_ne!(a, b);
    }

    #[test]
    fn jitter_is_seeded_bounded_and_deterministic() {
        let mut a = SeededJitter::new(1000, 42);
        let mut b = SeededJitter::new(1000, 42);
        let draws: Vec<u64> = (0..64).map(|_| a.draw()).collect();
        assert!(draws.iter().all(|&d| d <= 1000));
        assert!(draws.iter().any(|&d| d > 0), "jitter must actually jitter");
        assert_eq!(draws, (0..64).map(|_| b.draw()).collect::<Vec<_>>());
        let mut none = SeededJitter::none();
        assert_eq!((0..8).map(|_| none.draw()).max(), Some(0));
        assert_eq!(none.max_ns(), 0);
    }

    #[test]
    fn watermark_clock_fires_each_tick_exactly_once_in_order() {
        let mut clock = WatermarkClock::new(100, 50);
        assert_eq!(clock.next_ns(), 100);
        assert_eq!(clock.pop_due(99), None);
        // Due boundary is inclusive.
        assert_eq!(clock.pop_due(100), Some(100));
        assert_eq!(clock.pop_due(100), None);
        // A jump several steps ahead drains one watermark per call, in order.
        let fired: Vec<VirtualNs> = std::iter::from_fn(|| clock.pop_due(260)).collect();
        assert_eq!(fired, vec![150, 200, 250]);
        assert_eq!(clock.next_ns(), 300);
        // Zero step is clamped so the clock still advances.
        let mut degenerate = WatermarkClock::new(0, 0);
        assert_eq!(degenerate.step_ns(), 1);
        assert_eq!(degenerate.pop_due(0), Some(0));
        assert_eq!(degenerate.pop_due(0), None);
    }

    #[test]
    fn medium_serializes_overlapping_frames() {
        let mut medium = SharedMedium::new(240.0);
        let bits = 24_000; // 0.1 ms payload at 240 Mbit/s + 60 us overhead
        let air = medium.frame_airtime_ns(bits);
        assert_eq!(air, 160_000); // 60 us + 100 us
                                  // Two frames ready at the same instant: the second queues.
        let g1 = medium.transmit(1_000, bits);
        let g2 = medium.transmit(1_000, bits);
        assert_eq!((g1.start_ns, g1.end_ns, g1.wait_ns), (1_000, 161_000, 0));
        assert_eq!((g2.start_ns, g2.end_ns), (161_000, 321_000));
        assert_eq!(g2.wait_ns, 160_000);
        // A frame ready after the air clears sails through.
        let g3 = medium.transmit(400_000, bits);
        assert_eq!((g3.start_ns, g3.wait_ns), (400_000, 0));
        assert_eq!(medium.frames_carried(), 3);
        assert_eq!(medium.total_air_ns(), 3 * air);
        assert_eq!(medium.total_wait_ns(), 160_000);
        assert_eq!(medium.busy_until_ns(), 560_000);
    }

    #[test]
    fn ideal_medium_is_free_and_instant() {
        let mut medium = SharedMedium::ideal();
        assert!(medium.is_ideal());
        for ready in [0u64, 5, 5, 1000] {
            let g = medium.transmit(ready, 1_000_000);
            assert_eq!(
                (g.start_ns, g.end_ns, g.wait_ns, g.air_ns),
                (ready, ready, 0, 0)
            );
        }
        assert_eq!(medium.total_air_ns(), 0);
        assert_eq!(medium.total_wait_ns(), 0);
    }

    /// Satellite consistency test: the medium's per-frame airtime is the same
    /// shared primitive the round-level airtime model sums, across bandwidths
    /// × MIMO orders × quantizer widths — the two can never drift.
    #[test]
    fn medium_airtime_matches_round_airtime_math_across_grid() {
        let bandwidths = [
            Bandwidth::Mhz20,
            Bandwidth::Mhz40,
            Bandwidth::Mhz80,
            Bandwidth::Mhz160,
        ];
        for &n in &[2usize, 3, 4] {
            for &bw in &bandwidths {
                for bits in [1u8, 4, 8, 16] {
                    let config = SplitBeamConfig::new(
                        MimoConfig::symmetric(n, bw),
                        CompressionLevel::OneEighth,
                    );
                    let sounding = SoundingConfig::new(bw, n);
                    let medium = SharedMedium::new(sounding.feedback_rate_mbps);
                    let payload_bits = model_feedback_bits(&config, bits);
                    let via_medium = medium.frame_airtime_ns(payload_bits);
                    let via_airtime = s_to_ns(splitbeam_frame_airtime_s(&config, &sounding, bits));
                    assert_eq!(
                        via_medium, via_airtime,
                        "{n}x{n} @ {bw:?}, {bits} bits/value"
                    );
                }
            }
        }
    }
}
