//! End-to-end beamforming-report delay (the Eq. 7d budget).
//!
//! The delay experienced by the access point between sounding and having the
//! reconstructed beamforming matrix is the sum of the station's head-model
//! execution time, the over-the-air feedback time (compressed payload plus the
//! sounding protocol frames), and the AP's tail-model execution time. MU-MIMO
//! channel sounding should complete within 10 ms.

use crate::accelerator::AcceleratorModel;
use serde::{Deserialize, Serialize};
use splitbeam::airtime::model_feedback_bits;
use splitbeam::model::SplitBeamModel;
use wifi_phy::sounding::{sounding_round_airtime, SoundingConfig};

/// The delay budget of Eq. 7d (10 ms for MU-MIMO sounding).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayBudget {
    /// Maximum tolerable end-to-end delay in seconds.
    pub max_delay_s: f64,
}

impl Default for DelayBudget {
    fn default() -> Self {
        Self { max_delay_s: 0.01 }
    }
}

/// Breakdown of the end-to-end beamforming report delay:
/// head compute → medium queueing → over-the-air time → tail compute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndToEndDelay {
    /// Station-side head execution time, in seconds.
    pub head_s: f64,
    /// Time the compressed report spent queueing for the shared medium
    /// (waiting behind other stations' frames), in seconds. Zero in the
    /// analytical round-level model, which assumes perfectly scheduled polls;
    /// the event-driven simulator fills it in from the [`crate::event::SharedMedium`].
    pub queue_s: f64,
    /// Over-the-air time (sounding protocol + compressed feedback), in seconds.
    pub airtime_s: f64,
    /// AP-side tail execution time, in seconds.
    pub tail_s: f64,
}

impl EndToEndDelay {
    /// Total end-to-end delay.
    pub fn total_s(&self) -> f64 {
        self.head_s + self.queue_s + self.airtime_s + self.tail_s
    }

    /// Whether the delay fits a budget. The budget is inclusive: a round
    /// landing exactly on the Eq. 7d 10 ms deadline completes *within* it.
    pub fn within(&self, budget: &DelayBudget) -> bool {
        self.total_s() <= budget.max_delay_s
    }
}

/// Computes the end-to-end delay of one SplitBeam feedback round for a model,
/// an accelerator and a sounding configuration.
pub fn end_to_end_delay_s(
    model: &SplitBeamModel,
    accelerator: &AcceleratorModel,
    sounding: &SoundingConfig,
    bits_per_value: u8,
) -> EndToEndDelay {
    let compute = accelerator.split_latency(model.head(), model.tail());
    let feedback_bits = model_feedback_bits(model.config(), bits_per_value);
    let airtime = sounding_round_airtime(sounding, feedback_bits).total_s();
    EndToEndDelay {
        head_s: compute.head_s,
        queue_s: 0.0,
        airtime_s: airtime,
        tail_s: compute.tail_s,
    }
}

/// Like [`end_to_end_delay_s`] but computed purely from a configuration, without
/// instantiating model weights (the latency and airtime depend only on the
/// architecture). This is what the BOP heuristic uses as its delay estimator.
pub fn end_to_end_delay_from_config_s(
    config: &splitbeam::config::SplitBeamConfig,
    accelerator: &AcceleratorModel,
    sounding: &SoundingConfig,
    bits_per_value: u8,
) -> EndToEndDelay {
    let compute = accelerator.split_latency_from_config(config);
    let feedback_bits = model_feedback_bits(config, bits_per_value);
    let airtime = sounding_round_airtime(sounding, feedback_bits).total_s();
    EndToEndDelay {
        head_s: compute.head_s,
        queue_s: 0.0,
        airtime_s: airtime,
        tail_s: compute.tail_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn delay_for(n: usize, bw: Bandwidth, k: CompressionLevel) -> EndToEndDelay {
        let config = SplitBeamConfig::new(MimoConfig::symmetric(n, bw), k);
        let accel = AcceleratorModel::zynq_200mhz(n, n);
        let sounding = SoundingConfig::new(bw, n);
        end_to_end_delay_from_config_s(&config, &accel, &sounding, 16)
    }

    #[test]
    fn config_and_model_paths_agree() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        );
        let model = SplitBeamModel::new(config.clone(), &mut rng);
        let accel = AcceleratorModel::zynq_200mhz(2, 2);
        let sounding = SoundingConfig::new(Bandwidth::Mhz20, 2);
        let via_model = end_to_end_delay_s(&model, &accel, &sounding, 16);
        let via_config = end_to_end_delay_from_config_s(&config, &accel, &sounding, 16);
        assert!((via_model.total_s() - via_config.total_s()).abs() < 1e-12);
    }

    #[test]
    fn worst_case_stays_under_10ms() {
        // The paper's headline claim: even 4x4 at 160 MHz stays below 10 ms.
        let worst = delay_for(4, Bandwidth::Mhz160, CompressionLevel::OneQuarter);
        assert!(
            worst.within(&DelayBudget::default()),
            "worst-case delay {} s exceeds 10 ms",
            worst.total_s()
        );
    }

    #[test]
    fn delay_components_all_positive_and_sum() {
        let d = delay_for(3, Bandwidth::Mhz80, CompressionLevel::OneEighth);
        assert!(d.head_s > 0.0 && d.airtime_s > 0.0 && d.tail_s > 0.0);
        assert_eq!(d.queue_s, 0.0, "analytical model has no medium queueing");
        assert!((d.total_s() - (d.head_s + d.queue_s + d.airtime_s + d.tail_s)).abs() < 1e-15);
    }

    #[test]
    fn wider_bandwidth_increases_delay() {
        let narrow = delay_for(2, Bandwidth::Mhz20, CompressionLevel::OneQuarter);
        let wide = delay_for(2, Bandwidth::Mhz160, CompressionLevel::OneQuarter);
        assert!(wide.total_s() > narrow.total_s());
    }

    #[test]
    fn tighter_budget_can_fail() {
        let d = delay_for(4, Bandwidth::Mhz160, CompressionLevel::OneQuarter);
        let tight = DelayBudget { max_delay_s: 1e-4 };
        assert!(!d.within(&tight));
    }

    /// Regression test: the budget check used strict `<`, so a round landing
    /// exactly on the 10 ms deadline was wrongly counted as a violation.
    #[test]
    fn budget_boundary_is_inclusive() {
        let d = EndToEndDelay {
            head_s: 0.004,
            queue_s: 0.0005,
            airtime_s: 0.0035,
            tail_s: 0.002,
        };
        // A budget equal to the total (the "lands exactly on 10 ms" case)
        // counts as within; one ulp less does not.
        let exact = DelayBudget {
            max_delay_s: d.total_s(),
        };
        assert!(d.within(&exact), "exactly on the deadline is within budget");
        assert!(!d.within(&DelayBudget {
            max_delay_s: d.total_s() * (1.0 - 1e-12),
        }));
        assert!(d.within(&DelayBudget {
            max_delay_s: d.total_s() * (1.0 + 1e-12),
        }));
    }
}
