//! Analytical MAC-array accelerator model (the FPGA substitute for Table III).
//!
//! The model assumes the HLS implementation instantiates one *complex* MAC lane
//! per transmit/receive antenna pair — the natural partitioning of the dense
//! CSI-to-bottleneck layer into antenna-pair blocks; each complex MAC consumes
//! four DSP multipliers, well within the Zynq UltraScale+ budget — running at
//! the AD9361-compatible 200 MHz clock, plus a fixed pipeline overhead per
//! layer and a streaming I/O cost per activation value. Latency is therefore
//! proportional to `real MACs / (4 * Nr * Nt)`, which reproduces Table III both
//! in magnitude (tens of microseconds at 2x2/20 MHz, a few milliseconds at
//! 4x4/160 MHz) and in scaling (~4x per bandwidth doubling, ~4x from 2x2 to 4x4).

use neural::network::Network;
use serde::{Deserialize, Serialize};
use splitbeam::config::SplitBeamConfig;

/// Analytical model of the FPGA MAC-array accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorModel {
    /// Clock frequency in Hz (200 MHz in the paper, matching the AD9361).
    pub clock_hz: f64,
    /// Number of parallel (real) MAC lanes.
    pub parallel_macs: usize,
    /// Fixed pipeline overhead per network layer, in cycles.
    pub layer_overhead_cycles: u64,
    /// Streaming I/O cost per activation value moved on or off the array, in cycles.
    pub io_cycles_per_value: f64,
}

impl AcceleratorModel {
    /// The paper's synthesis target: 200 MHz clock with one complex MAC lane
    /// (four real multipliers) per antenna pair of an `nt x nr` configuration.
    pub fn zynq_200mhz(nt: usize, nr: usize) -> Self {
        Self {
            clock_hz: 200e6,
            parallel_macs: (4 * nt * nr).max(1),
            layer_overhead_cycles: 256,
            io_cycles_per_value: 0.25,
        }
    }

    /// Latency of executing `macs` multiply-accumulates spread over
    /// `num_layers` layers while streaming `io_values` activation values.
    pub fn latency_s(&self, macs: u64, num_layers: usize, io_values: u64) -> f64 {
        let compute_cycles = (macs as f64 / self.parallel_macs as f64).ceil();
        let overhead_cycles = (self.layer_overhead_cycles * num_layers as u64) as f64;
        let io_cycles = io_values as f64 * self.io_cycles_per_value;
        (compute_cycles + overhead_cycles + io_cycles) / self.clock_hz
    }

    /// Latency of a dense layer stack described only by its dimensions
    /// (`dims[0]` inputs, `dims.last()` outputs). Useful when the actual weight
    /// matrices are irrelevant (latency depends only on the architecture).
    ///
    /// # Panics
    /// Panics if fewer than two dimensions are given.
    pub fn dense_stack_latency_s(&self, dims: &[usize]) -> f64 {
        assert!(
            dims.len() >= 2,
            "a layer stack needs at least input and output dims"
        );
        let macs: u64 = dims.windows(2).map(|w| (w[0] * w[1]) as u64).sum();
        let io = (dims[0] + dims[dims.len() - 1]) as u64;
        self.latency_s(macs, dims.len() - 1, io)
    }

    /// Latency of running a dense [`Network`] on the accelerator.
    pub fn network_latency_s(&self, network: &Network) -> f64 {
        let io_values = (network.input_dim() + network.output_dim()) as u64;
        self.latency_s(network.macs(), network.layers().len(), io_values)
    }

    /// Latency breakdown for a head + tail model pair.
    pub fn split_latency(&self, head: &Network, tail: &Network) -> LatencyBreakdown {
        LatencyBreakdown {
            head_s: self.network_latency_s(head),
            tail_s: self.network_latency_s(tail),
        }
    }

    /// Latency breakdown computed directly from a SplitBeam configuration
    /// (equivalent to [`AcceleratorModel::split_latency`] on an instantiated
    /// model, but without allocating any weights — convenient for the large
    /// 160 MHz architectures).
    pub fn split_latency_from_config(&self, config: &SplitBeamConfig) -> LatencyBreakdown {
        let mut tail_dims = vec![config.bottleneck_dim()];
        tail_dims.extend(config.extra_tail_layers.iter().copied());
        tail_dims.push(config.output_dim());
        LatencyBreakdown {
            head_s: self.dense_stack_latency_s(&[config.input_dim(), config.bottleneck_dim()]),
            tail_s: self.dense_stack_latency_s(&tail_dims),
        }
    }
}

/// Head (station) and tail (AP) execution latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Station-side (head model) execution time in seconds.
    pub head_s: f64,
    /// AP-side (tail model) execution time in seconds.
    pub tail_s: f64,
}

impl LatencyBreakdown {
    /// Total compute latency (excluding the over-the-air feedback time).
    pub fn total_s(&self) -> f64 {
        self.head_s + self.tail_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::layer::Activation;
    use neural::network::LayerSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use splitbeam::model::SplitBeamModel;
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn full_latency(n: usize, bw: Bandwidth) -> f64 {
        let config =
            SplitBeamConfig::new(MimoConfig::symmetric(n, bw), CompressionLevel::OneQuarter);
        let accel = AcceleratorModel::zynq_200mhz(n, n);
        accel.split_latency_from_config(&config).total_s()
    }

    #[test]
    fn latency_in_table3_ballpark() {
        // Table III: 2x2 @ 20 MHz = 0.0202 ms, 4x4 @ 160 MHz = 5.883 ms (K = 1/4).
        let small = full_latency(2, Bandwidth::Mhz20);
        let large = full_latency(4, Bandwidth::Mhz160);
        assert!(
            small > 5e-6 && small < 1e-4,
            "2x2 @ 20 MHz latency {small} s should be tens of microseconds"
        );
        assert!(
            large > 1e-3 && large < 1e-2,
            "4x4 @ 160 MHz latency {large} s should be a few milliseconds"
        );
    }

    #[test]
    fn bandwidth_doubling_scales_roughly_4x() {
        let at_40 = full_latency(2, Bandwidth::Mhz40);
        let at_80 = full_latency(2, Bandwidth::Mhz80);
        let ratio = at_80 / at_40;
        assert!(
            ratio > 2.5 && ratio < 6.0,
            "doubling bandwidth should scale latency ~4x, got {ratio}"
        );
    }

    #[test]
    fn mimo_order_scales_roughly_4x() {
        let two = full_latency(2, Bandwidth::Mhz80);
        let four = full_latency(4, Bandwidth::Mhz80);
        let ratio = four / two;
        assert!(
            ratio > 2.5 && ratio < 6.5,
            "2x2 -> 4x4 should scale latency ~4x, got {ratio}"
        );
    }

    #[test]
    fn config_latency_matches_instantiated_model() {
        let config = SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = SplitBeamModel::new(config.clone(), &mut rng);
        let accel = AcceleratorModel::zynq_200mhz(2, 2);
        let via_model = accel.split_latency(model.head(), model.tail());
        let via_config = accel.split_latency_from_config(&config);
        assert!((via_model.head_s - via_config.head_s).abs() < 1e-12);
        assert!((via_model.tail_s - via_config.tail_s).abs() < 1e-12);
    }

    #[test]
    fn more_parallel_lanes_reduce_latency() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = Network::new(&[LayerSpec::new(100, 50, Activation::Tanh)], &mut rng);
        let slow = AcceleratorModel {
            clock_hz: 200e6,
            parallel_macs: 1,
            layer_overhead_cycles: 0,
            io_cycles_per_value: 0.0,
        };
        let fast = AcceleratorModel {
            parallel_macs: 10,
            ..slow
        };
        assert!(fast.network_latency_s(&net) < slow.network_latency_s(&net));
    }

    #[test]
    fn breakdown_sums() {
        let config = SplitBeamConfig::new(
            MimoConfig::symmetric(3, Bandwidth::Mhz40),
            CompressionLevel::OneEighth,
        );
        let accel = AcceleratorModel::zynq_200mhz(3, 3);
        let b = accel.split_latency_from_config(&config);
        assert!((b.total_s() - (b.head_s + b.tail_s)).abs() < 1e-15);
        assert!(b.head_s > 0.0 && b.tail_s > 0.0);
    }

    #[test]
    #[should_panic]
    fn dense_stack_needs_two_dims() {
        let accel = AcceleratorModel::zynq_200mhz(2, 2);
        let _ = accel.dense_stack_latency_s(&[10]);
    }
}
