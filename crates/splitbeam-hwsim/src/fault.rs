//! Deterministic RF fault injection for the event-driven serving stack.
//!
//! The PR 5 medium model charges airtime but delivers every frame intact,
//! exactly once. This module adds the hostile half of a real deployment —
//! frame loss (i.i.d. or bursty Gilbert–Elliott), bit-flip corruption,
//! duplication, and extra queuing delay — while keeping the repository's
//! seeded-RNG discipline: every decision comes from a `ChaCha8Rng` stream
//! seeded by the caller, so a given `(seed, fault config, traffic)` triple
//! replays **bit-exactly**. A zero-fault configuration draws *nothing* from
//! the stream (the same contract as [`crate::event::SeededJitter`] with
//! `max_ns == 0`), which is what makes the fault layer's pass-through mode
//! provably identical to the PR 5 fault-free drivers.
//!
//! Environment knobs (all read by [`FaultConfig::from_env`]):
//!
//! | variable | meaning |
//! |---|---|
//! | `SPLITBEAM_LOSS` | frame loss probability in `[0, 1]` (bad-state loss when bursty) |
//! | `SPLITBEAM_CORRUPT` | per-delivered-frame corruption probability in `[0, 1]` |
//! | `SPLITBEAM_DUP` | per-delivered-frame duplication probability in `[0, 1]` |
//! | `SPLITBEAM_FAULT_DELAY_NS` | extra queuing delay amplitude (uniform in `[0, max]` ns) |
//! | `SPLITBEAM_BURST` | `p_enter,p_exit` — enables Gilbert–Elliott burst loss |

use crate::event::VirtualNs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Two-state Gilbert–Elliott burst-loss channel parameters. The channel sits
/// in a Good or Bad state; each offered frame first makes one state
/// transition draw, then one loss draw at the state's loss probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of moving Good → Bad per offered frame.
    pub p_enter_bad: f64,
    /// Probability of moving Bad → Good per offered frame.
    pub p_exit_bad: f64,
    /// Loss probability while in the Good state (usually ~0).
    pub loss_good: f64,
    /// Loss probability while in the Bad state (usually high).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Stationary (long-run) loss probability of the chain.
    pub fn stationary_loss(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let p_bad = self.p_enter_bad / denom;
        (1.0 - p_bad) * self.loss_good + p_bad * self.loss_bad
    }
}

/// Fault-injection configuration. The default ([`FaultConfig::none`]) injects
/// nothing and — critically — draws nothing from the seeded stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// i.i.d. frame loss probability in `[0, 1]`. Ignored when `burst` is
    /// set (the Gilbert–Elliott chain then owns loss).
    pub loss: f64,
    /// Probability that a delivered frame arrives with flipped bits.
    pub corrupt: f64,
    /// Probability that a delivered frame is duplicated (the copy re-offered
    /// to the AP without occupying the medium a second time).
    pub duplicate: f64,
    /// Amplitude of extra queuing delay: uniform in `[0, max_extra_delay_ns]`.
    pub max_extra_delay_ns: VirtualNs,
    /// Bursty loss model; replaces the i.i.d. `loss` knob when present.
    pub burst: Option<GilbertElliott>,
    /// Bit flips applied to each corrupted frame.
    pub corrupt_bits: u32,
}

impl FaultConfig {
    /// The pass-through configuration: no faults, no RNG draws.
    pub fn none() -> Self {
        Self {
            loss: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            max_extra_delay_ns: 0,
            burst: None,
            corrupt_bits: 3,
        }
    }

    /// Reads the configuration from the `SPLITBEAM_LOSS`, `SPLITBEAM_CORRUPT`,
    /// `SPLITBEAM_DUP`, `SPLITBEAM_FAULT_DELAY_NS` and `SPLITBEAM_BURST`
    /// environment variables (see the module docs); unset or unparsable
    /// variables fall back to [`FaultConfig::none`]'s fields.
    pub fn from_env() -> Self {
        fn env_prob(key: &str) -> Option<f64> {
            mimo_math::env::parse::<f64>(key).filter(|p| p.is_finite() && *p >= 0.0)
        }
        let mut cfg = Self::none();
        if let Some(p) = env_prob("SPLITBEAM_LOSS") {
            cfg.loss = p.min(1.0);
        }
        if let Some(p) = env_prob("SPLITBEAM_CORRUPT") {
            cfg.corrupt = p.min(1.0);
        }
        if let Some(p) = env_prob("SPLITBEAM_DUP") {
            cfg.duplicate = p.min(1.0);
        }
        if let Some(ns) = mimo_math::env::parse::<u64>("SPLITBEAM_FAULT_DELAY_NS") {
            cfg.max_extra_delay_ns = ns;
        }
        if let Some(parts) = mimo_math::env::parse_list::<f64>("SPLITBEAM_BURST") {
            if parts.len() == 2
                && parts
                    .iter()
                    .all(|p| p.is_finite() && (0.0..=1.0).contains(p))
            {
                cfg.burst = Some(GilbertElliott {
                    p_enter_bad: parts[0],
                    p_exit_bad: parts[1],
                    loss_good: 0.0,
                    loss_bad: if cfg.loss > 0.0 { cfg.loss } else { 1.0 },
                });
            }
        }
        cfg
    }

    /// Whether any fault channel is live. When `false`, the injector is a
    /// pure pass-through that never touches its RNG.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0
            || self.corrupt > 0.0
            || self.duplicate > 0.0
            || self.max_extra_delay_ns > 0
            || self.burst.is_some()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// The injector's verdict for one offered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// The frame never reaches the AP (the station can detect the missing
    /// acknowledgement and retransmit).
    Lost,
    /// The frame is delivered, possibly damaged, doubled, or late.
    Deliver {
        /// Bits were flipped in flight; apply [`FaultInjector::corrupt_frame`].
        corrupt: bool,
        /// A duplicate copy arrives right behind the original.
        duplicate: bool,
        /// Extra queuing delay to add to the frame's ready time.
        extra_delay_ns: VirtualNs,
    },
}

impl FrameFate {
    /// The undamaged, single, on-time delivery.
    pub fn clean() -> Self {
        FrameFate::Deliver {
            corrupt: false,
            duplicate: false,
            extra_delay_ns: 0,
        }
    }
}

/// Running totals of what the injector did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered to the injector.
    pub offered: u64,
    /// Frames dropped outright.
    pub lost: u64,
    /// Frames delivered with flipped bits.
    pub corrupted: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames delivered late (nonzero extra delay).
    pub delayed: u64,
    /// Total extra queuing delay injected.
    pub total_extra_delay_ns: VirtualNs,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GeState {
    Good,
    Bad,
}

/// Seeded fault injector sitting between the event queue and the shared
/// medium. One instance per simulation run; every run with the same seed,
/// config, and offered-frame order replays bit-exactly.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: ChaCha8Rng,
    ge_state: GeState,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector over `cfg`, seeded with `seed`.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            ge_state: GeState::Good,
            stats: FaultStats::default(),
        }
    }

    /// A pass-through injector (no faults, no draws).
    pub fn none() -> Self {
        Self::new(FaultConfig::none(), 0)
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any fault channel is live (see [`FaultConfig::is_active`]).
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// Running totals.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides the fate of one offered frame. An inactive configuration
    /// returns [`FrameFate::clean`] without drawing from the stream; an
    /// active one makes a fixed number of draws per call (loss, corruption,
    /// duplication, delay — in that order), so the decision for frame *n*
    /// depends only on the seed and *n*, never on wall-clock or map order.
    pub fn frame_fate(&mut self) -> FrameFate {
        self.stats.offered += 1;
        if !self.cfg.is_active() {
            return FrameFate::clean();
        }
        let lost = match self.cfg.burst {
            Some(ge) => {
                let transition: f64 = self.rng.gen();
                self.ge_state = match self.ge_state {
                    GeState::Good if transition < ge.p_enter_bad => GeState::Bad,
                    GeState::Bad if transition < ge.p_exit_bad => GeState::Good,
                    s => s,
                };
                let p = match self.ge_state {
                    GeState::Good => ge.loss_good,
                    GeState::Bad => ge.loss_bad,
                };
                self.rng.gen::<f64>() < p
            }
            None => self.rng.gen::<f64>() < self.cfg.loss,
        };
        let corrupt = self.rng.gen::<f64>() < self.cfg.corrupt;
        let duplicate = self.rng.gen::<f64>() < self.cfg.duplicate;
        let extra_delay_ns = if self.cfg.max_extra_delay_ns > 0 {
            self.rng.gen_range(0..=self.cfg.max_extra_delay_ns)
        } else {
            0
        };
        if lost {
            self.stats.lost += 1;
            return FrameFate::Lost;
        }
        if corrupt {
            self.stats.corrupted += 1;
        }
        if duplicate {
            self.stats.duplicated += 1;
        }
        if extra_delay_ns > 0 {
            self.stats.delayed += 1;
            self.stats.total_extra_delay_ns += extra_delay_ns;
        }
        FrameFate::Deliver {
            corrupt,
            duplicate,
            extra_delay_ns,
        }
    }

    /// Flips `corrupt_bits` seeded-random bit positions of `frame` in place.
    /// Call only when [`FrameFate::Deliver`] said `corrupt` — the draws here
    /// are part of the deterministic stream.
    pub fn corrupt_frame(&mut self, frame: &mut [u8]) {
        if frame.is_empty() {
            return;
        }
        let total_bits = frame.len() * 8;
        for _ in 0..self.cfg.corrupt_bits.max(1) {
            let bit = self.rng.gen_range(0..total_bits);
            frame[bit / 8] ^= 1 << (bit % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_injector_draws_nothing() {
        let mut a = FaultInjector::none();
        for _ in 0..1000 {
            assert_eq!(a.frame_fate(), FrameFate::clean());
        }
        // The RNG stream was never touched: a fresh rng draws the same first
        // value as the injector's would now.
        let mut fresh = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(a.rng.gen::<u64>(), fresh.gen::<u64>());
        assert_eq!(a.stats().offered, 1000);
        assert_eq!(
            a.stats().lost + a.stats().corrupted + a.stats().duplicated,
            0
        );
    }

    #[test]
    fn same_seed_replays_bit_exactly() {
        let cfg = FaultConfig {
            loss: 0.2,
            corrupt: 0.15,
            duplicate: 0.1,
            max_extra_delay_ns: 50_000,
            burst: None,
            corrupt_bits: 3,
        };
        let mut a = FaultInjector::new(cfg, 77);
        let mut b = FaultInjector::new(cfg, 77);
        let fates_a: Vec<FrameFate> = (0..512).map(|_| a.frame_fate()).collect();
        let fates_b: Vec<FrameFate> = (0..512).map(|_| b.frame_fate()).collect();
        assert_eq!(fates_a, fates_b);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().lost > 0);
        assert!(a.stats().corrupted > 0);
        assert!(a.stats().duplicated > 0);
        assert!(a.stats().delayed > 0);
        // A different seed must (overwhelmingly) produce a different plan.
        let mut c = FaultInjector::new(cfg, 78);
        let fates_c: Vec<FrameFate> = (0..512).map(|_| c.frame_fate()).collect();
        assert_ne!(fates_a, fates_c);
    }

    #[test]
    fn loss_rate_tracks_configuration() {
        let cfg = FaultConfig {
            loss: 0.3,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 5);
        let n = 20_000;
        let lost = (0..n)
            .filter(|_| matches!(inj.frame_fate(), FrameFate::Lost))
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        let ge = GilbertElliott {
            p_enter_bad: 0.05,
            p_exit_bad: 0.25,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let cfg = FaultConfig {
            burst: Some(ge),
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 11);
        let n = 50_000usize;
        let fates: Vec<bool> = (0..n)
            .map(|_| matches!(inj.frame_fate(), FrameFate::Lost))
            .collect();
        let losses = fates.iter().filter(|&&l| l).count();
        let rate = losses as f64 / n as f64;
        let expect = ge.stationary_loss();
        assert!(
            (rate - expect).abs() < 0.03,
            "observed {rate}, stationary {expect}"
        );
        // Burstiness: P(loss | previous loss) must far exceed the marginal.
        let pairs = fates.windows(2).filter(|w| w[0]).count();
        let repeats = fates.windows(2).filter(|w| w[0] && w[1]).count();
        let conditional = repeats as f64 / pairs as f64;
        assert!(
            conditional > 2.0 * rate,
            "conditional {conditional} vs marginal {rate}: losses not bursty"
        );
    }

    #[test]
    fn corrupt_frame_flips_configured_bits() {
        let cfg = FaultConfig {
            corrupt: 1.0,
            corrupt_bits: 3,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 9);
        let original = vec![0u8; 64];
        let mut frame = original.clone();
        inj.corrupt_frame(&mut frame);
        let flipped: u32 = frame
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!((1..=3).contains(&flipped), "{flipped} bits flipped");
        // Empty frames are a no-op, not a panic.
        inj.corrupt_frame(&mut []);
    }

    #[test]
    fn from_env_parses_and_defaults() {
        // Serialize env access: tests in this module run in one process.
        let keys = [
            "SPLITBEAM_LOSS",
            "SPLITBEAM_CORRUPT",
            "SPLITBEAM_DUP",
            "SPLITBEAM_FAULT_DELAY_NS",
            "SPLITBEAM_BURST",
        ];
        let saved: Vec<Option<String>> = keys.iter().map(|k| std::env::var(k).ok()).collect();
        for k in keys {
            std::env::remove_var(k);
        }
        assert_eq!(FaultConfig::from_env(), FaultConfig::none());
        std::env::set_var("SPLITBEAM_LOSS", "0.25");
        std::env::set_var("SPLITBEAM_CORRUPT", "0.1");
        std::env::set_var("SPLITBEAM_DUP", "2.5"); // clamped
        std::env::set_var("SPLITBEAM_FAULT_DELAY_NS", "1500");
        std::env::set_var("SPLITBEAM_BURST", "0.05, 0.4");
        let cfg = FaultConfig::from_env();
        assert_eq!(cfg.loss, 0.25);
        assert_eq!(cfg.corrupt, 0.1);
        assert_eq!(cfg.duplicate, 1.0);
        assert_eq!(cfg.max_extra_delay_ns, 1500);
        let ge = cfg.burst.expect("burst enabled");
        assert_eq!((ge.p_enter_bad, ge.p_exit_bad), (0.05, 0.4));
        assert_eq!(ge.loss_bad, 0.25);
        assert!(cfg.is_active());
        for (k, v) in keys.iter().zip(saved) {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }
}
