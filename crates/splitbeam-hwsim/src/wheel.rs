//! Hierarchical timer wheel over [`VirtualNs`] — the fleet-scale event
//! scheduler backend.
//!
//! A binary heap pays `O(log n)` per operation with `n` pointer-chasing
//! comparisons; at fleet scale (millions of in-flight frame events) that is
//! the orchestration bottleneck. The classic alternative is a hashed
//! hierarchical timing wheel (Varghese & Lauck): virtual time is split into
//! power-of-two ticks, each wheel level covers 64 slots of exponentially
//! wider span, and schedule/advance are `O(1)` amortized.
//!
//! # Determinism contract
//!
//! The wheel preserves the documented `(time_ns, station, seq)` pop order of
//! the heap backend **bit-for-bit**:
//!
//! * Every event whose tick is at or before the wheel's current horizon sits
//!   in a small `ready` min-heap ordered by the full [`EventKey`] — same-tick
//!   ties therefore break exactly like the binary heap.
//! * Every event still in the wheel proper has a tick *strictly after* the
//!   horizon, and one tick is wider than any intra-tick time offset, so the
//!   `ready` minimum is always globally minimal. Cascading a slot only moves
//!   events downward (towards `ready`), never reorders them relative to the
//!   key order.
//!
//! # Storage
//!
//! Events live in a free-listed node slab; each slot is an intrusive singly
//! linked chain through the slab (a head index per slot, `next` links in the
//! nodes). Scheduling, cascading and popping therefore move *indices*, never
//! buffers: once the slab and the `ready` heap have reached their peak
//! shape, steady-state schedule→pop cycles allocate nothing, no matter which
//! slots absolute time happens to touch (pinned by the `alloc_event_queue`
//! sentinel in `splitbeam-analysis`).

use crate::event::{EventKey, VirtualNs};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the tick width: one tick is 1024 ns (~1 µs). Finer than any
/// scheduling quantum the serving stack uses; all sub-tick ordering is
/// resolved by the `ready` heap on the full key.
const TICK_BITS: u32 = 10;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed to cover the full 54-bit tick space: ceil((64-10)/6).
const LEVELS: usize = 9;
/// Null index for slot chains and the free list.
const NIL: u32 = u32::MAX;

/// The per-node fields read only at the `ready` boundary (once per event):
/// the key's tie-break fields and the payload.
#[derive(Debug, Clone)]
struct ColdNode<T> {
    station: u64,
    seq: u64,
    payload: Option<T>,
}

/// Hierarchical timer wheel with a full-key `ready` heap for due events.
///
/// The node slab is struct-of-arrays, split by access pattern. A cascade is
/// a chain walk, and its serial dependency runs *only* through `next` — so
/// `next` lives alone in a `Vec<u32>` (400 KB at 100k nodes, L2-resident),
/// keeping every hop of the pointer chase a cheap cache hit. The firing
/// times it re-files are then independent loads into `time_ns` that the
/// out-of-order core overlaps, instead of one serial miss per hop over a
/// single fat-node slab.
#[derive(Debug, Clone)]
pub(crate) struct TimerWheel<T> {
    /// Intrusive chain link per node: slot chain while pending, free list
    /// once popped. The only array on the serial path of a cascade.
    next: Vec<u32>,
    /// Firing time per node, index-aligned with `next`.
    time_ns: Vec<VirtualNs>,
    /// Cold halves (tie-break fields, payload), index-aligned with `next`.
    cold: Vec<ColdNode<T>>,
    /// Head of the free list through `nodes`.
    free_head: u32,
    /// Chain heads: `slots[level][slot]` is the newest node in the slot.
    slots: [[u32; SLOTS]; LEVELS],
    /// One bit per slot so the next occupied slot is a `trailing_zeros`.
    occupied: [u64; LEVELS],
    /// Events at or before the horizon, ordered by the full key.
    ready: BinaryHeap<Reverse<(EventKey, u32)>>,
    /// Horizon tick: every event in the wheel has `tick > current_tick`.
    current_tick: u64,
    len: usize,
}

fn tick_of(time_ns: VirtualNs) -> u64 {
    time_ns >> TICK_BITS
}

/// Level whose slot field is the highest one where `tick` differs from the
/// horizon. Caller guarantees `tick != current`.
fn level_for(current: u64, tick: u64) -> usize {
    let top_bit = 63 - (current ^ tick).leading_zeros();
    (top_bit / SLOT_BITS) as usize
}

fn slot_for(tick: u64, level: usize) -> usize {
    ((tick >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> Self {
        Self {
            next: Vec::new(),
            time_ns: Vec::new(),
            cold: Vec::new(),
            free_head: NIL,
            slots: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            ready: BinaryHeap::new(),
            current_tick: 0,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_capacity(events: usize) -> Self {
        let mut wheel = Self::new();
        wheel.reserve(events);
        wheel
    }

    /// Pre-sizes the node slab and the `ready` heap for `additional` more
    /// events — a cascade can in the worst case funnel every pending event
    /// through `ready`, so both buffers are sized to the full event count.
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.next.reserve(additional);
        self.time_ns.reserve(additional);
        self.cold.reserve(additional);
        self.ready.reserve(additional);
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn alloc_node(&mut self, key: EventKey, payload: T) -> u32 {
        if self.free_head == NIL {
            let index = self.next.len() as u32;
            self.next.push(NIL);
            self.time_ns.push(key.time_ns);
            self.cold.push(ColdNode {
                station: key.station,
                seq: key.seq,
                payload: Some(payload),
            });
            return index;
        }
        let index = self.free_head;
        self.free_head = self.next[index as usize];
        self.next[index as usize] = NIL;
        self.time_ns[index as usize] = key.time_ns;
        let cold = &mut self.cold[index as usize];
        cold.station = key.station;
        cold.seq = key.seq;
        cold.payload = Some(payload);
        index
    }

    /// Files node `index` by its key: into `ready` when due, else into its
    /// slot chain. Only the `ready` branch reads the cold half.
    fn place(&mut self, index: u32) {
        let time_ns = self.time_ns[index as usize];
        let tick = tick_of(time_ns);
        if tick <= self.current_tick {
            let cold = &self.cold[index as usize];
            let key = EventKey {
                time_ns,
                station: cold.station,
                seq: cold.seq,
            };
            self.ready.push(Reverse((key, index)));
            return;
        }
        let level = level_for(self.current_tick, tick);
        let slot = slot_for(tick, level);
        self.next[index as usize] = self.slots[level][slot];
        self.slots[level][slot] = index;
        self.occupied[level] |= 1 << slot;
    }

    pub(crate) fn schedule(&mut self, key: EventKey, payload: T) {
        let index = self.alloc_node(key, payload);
        self.place(index);
        self.len += 1;
    }

    /// Advances the horizon until at least one event is due (in `ready`).
    /// Returns `false` when the wheel holds no events at all.
    fn fill_ready(&mut self) -> bool {
        while self.ready.is_empty() {
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                return false;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            // The slot's base tick: the horizon's bits above this level's
            // field, the slot index in the field, zeros below. All entries in
            // the slot are at or after it, and everything in lower levels or
            // lower slots would already have fired, so jumping the horizon
            // there skips only empty time.
            let field = SLOT_BITS as u64 * level as u64;
            let above = !((1u64 << (field + SLOT_BITS as u64)) - 1);
            let base = (self.current_tick & above) | ((slot as u64) << field);
            debug_assert!(base > self.current_tick);
            self.current_tick = base;
            self.occupied[level] &= !(1 << slot);
            // Cascade: walk the chain, re-filing every node relative to the
            // new horizon (strictly lower level, or `ready`). Chain order is
            // irrelevant — `ready` orders on the full key.
            let mut index = std::mem::replace(&mut self.slots[level][slot], NIL);
            while index != NIL {
                let next = self.next[index as usize];
                #[cfg(target_arch = "x86_64")]
                if next != NIL {
                    // The chase itself stays in the L2-resident `next` array;
                    // start the next hop's time and tie-break loads now so
                    // they overlap this hop's re-file instead of serializing
                    // behind it (the cold line is what a due event's `ready`
                    // push reads).
                    // SAFETY: `next` is a live chain index, so it is in
                    // bounds for both `time_ns` and the index-aligned
                    // `cold`; `_mm_prefetch` is a cache hint that never
                    // dereferences, faults, or alters program state.
                    unsafe {
                        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                        _mm_prefetch(
                            self.time_ns.as_ptr().add(next as usize) as *const i8,
                            _MM_HINT_T0,
                        );
                        _mm_prefetch(
                            self.cold.as_ptr().add(next as usize) as *const i8,
                            _MM_HINT_T0,
                        );
                    }
                }
                self.place(index);
                index = next;
            }
        }
        true
    }

    pub(crate) fn pop(&mut self) -> Option<(EventKey, T)> {
        if !self.fill_ready() {
            return None;
        }
        let Reverse((key, index)) = self.ready.pop()?;
        let payload = self.cold[index as usize].payload.take()?;
        self.next[index as usize] = self.free_head;
        self.free_head = index;
        self.len -= 1;
        Some((key, payload))
    }

    /// Firing time of the earliest pending event, without advancing the
    /// horizon. `ready` is globally minimal when non-empty; otherwise the
    /// earliest event sits in the lowest occupied slot of the lowest occupied
    /// level (all entries of a level share the horizon's bits above the
    /// level's field, so lower slot ⇒ earlier tick, and any entry of a lower
    /// level precedes every entry of a higher one).
    pub(crate) fn peek_time(&self) -> Option<VirtualNs> {
        if let Some(Reverse((key, _))) = self.ready.peek() {
            return Some(key.time_ns);
        }
        let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
        let slot = self.occupied[level].trailing_zeros() as usize;
        let mut index = self.slots[level][slot];
        let mut earliest = None;
        while index != NIL {
            let time = self.time_ns[index as usize];
            earliest = Some(match earliest {
                None => time,
                Some(t) => time.min(t),
            });
            index = self.next[index as usize];
        }
        earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time_ns: u64, station: u64, seq: u64) -> EventKey {
        EventKey {
            time_ns,
            station,
            seq,
        }
    }

    #[test]
    fn level_and_slot_math() {
        // Adjacent ticks differ in the level-0 field.
        assert_eq!(level_for(0, 1), 0);
        assert_eq!(level_for(63, 64), 1);
        assert_eq!(level_for(0, 64), 1);
        assert_eq!(level_for(0, 1 << 53), 8);
        assert_eq!(slot_for(0b101_010, 0), 0b101_010);
        assert_eq!(slot_for(7 << 6, 1), 7);
        // The top level's field covers the highest tick bits (tick < 2^54).
        assert_eq!(slot_for(u64::MAX >> TICK_BITS, 8), SLOTS - 1);
    }

    #[test]
    fn drains_in_key_order_across_levels() {
        let mut wheel = TimerWheel::new();
        // Spread events across every level span, schedule out of order.
        let times: Vec<u64> = (0..54)
            .map(|b| (1u64 << b).wrapping_add(b * 17))
            .chain([0, 1, 1023, 1024, 1 << 20, (1 << 20) + 1])
            .collect();
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(key(t, i as u64 % 5, i as u64), i);
        }
        assert_eq!(wheel.len(), times.len());
        let mut sorted: Vec<EventKey> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| key(t, i as u64 % 5, i as u64))
            .collect();
        sorted.sort();
        let popped: Vec<EventKey> = std::iter::from_fn(|| wheel.pop()).map(|(k, _)| k).collect();
        assert_eq!(popped, sorted);
        assert_eq!(wheel.len(), 0);
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn late_schedules_land_in_ready_and_still_order() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(key(1 << 30, 0, 0), "far");
        assert_eq!(wheel.pop().map(|(_, p)| p), Some("far"));
        // Horizon has advanced; an earlier time is still accepted and pops
        // before anything later, ordered by the full key.
        wheel.schedule(key(5, 2, 1), "past-b");
        wheel.schedule(key(5, 1, 2), "past-a");
        wheel.schedule(key((1 << 30) + 1, 0, 3), "next");
        assert_eq!(wheel.peek_time(), Some(5));
        let order: Vec<&str> = std::iter::from_fn(|| wheel.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["past-a", "past-b", "next"]);
    }

    #[test]
    fn peek_does_not_advance_and_sees_wheel_minimum() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(key(70_000, 0, 0), ());
        wheel.schedule(key(9_000, 0, 1), ());
        assert_eq!(wheel.peek_time(), Some(9_000));
        assert_eq!(wheel.peek_time(), Some(9_000));
        assert_eq!(wheel.pop().map(|(k, _)| k.time_ns), Some(9_000));
        assert_eq!(wheel.peek_time(), Some(70_000));
        assert_eq!(wheel.len(), 1);
    }

    #[test]
    fn node_slab_is_recycled_across_laps() {
        let mut wheel = TimerWheel::with_capacity(64);
        for lap in 0..4u64 {
            let base = lap * (1 << TICK_BITS) * 64;
            for i in 0..32u64 {
                wheel.schedule(key(base + i * 1024, i, lap * 32 + i), ());
            }
            while wheel.pop().is_some() {}
        }
        assert_eq!(wheel.len(), 0);
        // Every lap reused the freed nodes instead of growing the slab.
        assert_eq!(wheel.next.len(), 32);
        assert_eq!(wheel.time_ns.len(), 32);
        assert_eq!(wheel.cold.len(), 32);
    }
}
