//! Hardware latency model for SplitBeam (Table III and the Eq. 7d delay budget).
//!
//! The paper synthesizes the SplitBeam networks on a Zynq UltraScale+ FPGA
//! (200 MHz clock) through a custom HLS library and reports the end-to-end
//! latency for 2x2–4x4 MIMO at 20–160 MHz (Table III). The FPGA toolchain is
//! not available here, so this crate provides an analytical **MAC-array
//! accelerator model**: a configurable number of parallel DSP multiply-
//! accumulate units at a configurable clock, plus per-layer pipeline and I/O
//! overhead. Latency is proportional to the model's MAC count, which reproduces
//! Table III's scaling behaviour (≈4x per bandwidth doubling and ≈4x from 2x2
//! to 4x4) and lets the end-to-end delay constraint of the BOP be evaluated.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod accelerator;
pub mod delay;
pub mod event;
pub mod fault;
mod wheel;

pub use accelerator::{AcceleratorModel, LatencyBreakdown};
pub use delay::{end_to_end_delay_s, DelayBudget, EndToEndDelay};
pub use event::{
    ns_to_s, s_to_ns, EventKey, EventQueue, MediumGrant, SeededJitter, SharedMedium, VirtualNs,
};
pub use fault::{FaultConfig, FaultInjector, FaultStats, FrameFate, GilbertElliott};

#[cfg(test)]
mod tests {
    // Cross-module behaviour is covered in the submodules and the integration tests.
}
