//! Bit-packed over-the-air wire format for [`QuantizedFeedback`].
//!
//! The in-memory payload keeps one `u16` per code for fast arithmetic, but a
//! real feedback frame must carry each code at its true width — a 4-bit
//! bottleneck occupies 4 bits per value on the air, not 16. This module is the
//! boundary between the two representations. The current (v2) frame layout is:
//!
//! ```text
//! +---------+---------------+---------+-------------+-----------+-----------+------------------+-----------+
//! | version | bits_per_value|   seq   |  code count |    min    |    max    |   packed codes   |  CRC-32   |
//! |  0xB5   |     u8        |   u16   |     u16     | f32 (BE)  | f32 (BE)  | bpv bits/code,   | u32 (BE)  |
//! |   u8    |               | big-    | big-endian  |  IEEE 754 |  IEEE 754 | MSB first, zero- | over all  |
//! |         |               | endian  |             |           |           | padded to a byte | prior     |
//! |         |               |         |             |           |           |                  | bytes     |
//! +---------+---------------+---------+-------------+-----------+-----------+------------------+-----------+
//! ```
//!
//! The version octet `0xB5` is deliberately outside the `1..=16` range a
//! legacy frame's leading `bits_per_value` octet can take, so the decoder
//! sniffs the first byte and still accepts the pre-versioned
//! `[bpv][count][min][max][codes]` layout (encodable via
//! [`encode_feedback_legacy`]). The CRC-32 (IEEE 802.3, reflected polynomial
//! `0xEDB88320`) covers every byte before the trailer, so a corrupted frame is
//! *detected* and rejected as [`SplitBeamError::CorruptFrame`] instead of
//! being decoded into plausible garbage. The 16-bit sequence number feeds the
//! serving layer's duplicate suppression and retransmission accounting;
//! `seq == 0` marks an unsequenced frame (last-write-wins at the AP).
//!
//! The body reuses the exact MSB-first packing primitives of
//! [`dot11_bfi::bits`], so the SplitBeam payload and the 802.11 compressed
//! beamforming report share one bit-level convention. An explicit code count
//! is carried because the zero-padding of the final byte would otherwise make
//! the number of codes ambiguous for widths that do not divide 8.

use crate::quantization::QuantizedFeedback;
use crate::SplitBeamError;
use dot11_bfi::bits::{BitReader, BitWriter};

/// Version octet opening every v2 frame. Outside `1..=16` so it can never be
/// confused with a legacy frame's leading `bits_per_value` octet.
pub const WIRE_VERSION: u8 = 0xB5;

/// Size of the fixed v2 frame header in bits: version (8) + `bits_per_value`
/// (8) + sequence number (16) + code count (16) + `min` (32) + `max` (32).
pub const WIRE_HEADER_BITS: usize = 8 + 8 + 16 + 16 + 32 + 32;

/// Size of the fixed v2 frame header in bytes.
pub const WIRE_HEADER_BYTES: usize = WIRE_HEADER_BITS / 8;

/// Size of the CRC-32 frame trailer in bits.
pub const WIRE_TRAILER_BITS: usize = 32;

/// Size of the CRC-32 frame trailer in bytes.
pub const WIRE_TRAILER_BYTES: usize = WIRE_TRAILER_BITS / 8;

/// Size of the legacy (pre-versioned) frame header in bits:
/// `bits_per_value` (8) + code count (16) + `min` (32) + `max` (32).
pub const LEGACY_WIRE_HEADER_BITS: usize = 8 + 16 + 32 + 32;

/// Size of the legacy frame header in bytes.
pub const LEGACY_WIRE_HEADER_BYTES: usize = LEGACY_WIRE_HEADER_BITS / 8;

const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                CRC32_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) over `data` — the same checksum that seals every v2
/// frame. Exposed so tests and fault tooling can re-seal deliberately mutated
/// frames.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes a quantized payload into its v2 wire representation with an
/// unsequenced (`seq == 0`) header. Equivalent to
/// [`encode_feedback_with_seq`]`(payload, 0)`.
///
/// # Errors
/// Returns [`SplitBeamError::DimensionMismatch`] when `bits_per_value` lies
/// outside `1..=16`, when the payload carries more codes than the 16-bit count
/// field can describe, or when a code does not fit the declared bit width (all
/// indicate a corrupted payload, not a capacity limit of the format per se).
pub fn encode_feedback(payload: &QuantizedFeedback) -> Result<Vec<u8>, SplitBeamError> {
    encode_feedback_with_seq(payload, 0)
}

/// Encodes a quantized payload into a v2 frame carrying the given sequence
/// number (the retransmission layer stamps the attempt index here; `0` means
/// unsequenced).
///
/// # Errors
/// Same contract as [`encode_feedback`].
pub fn encode_feedback_with_seq(
    payload: &QuantizedFeedback,
    seq: u16,
) -> Result<Vec<u8>, SplitBeamError> {
    let bits = check_encodable(payload)?;
    let max_code = ((1u32 << bits) - 1) as u16;
    let mut writer = BitWriter::with_capacity_bits(
        WIRE_HEADER_BITS + payload.codes.len() * bits as usize + WIRE_TRAILER_BITS,
    );
    writer.push(u32::from(WIRE_VERSION), 8);
    writer.push(u32::from(payload.bits_per_value), 8);
    writer.push(u32::from(seq), 16);
    writer.push(payload.codes.len() as u32, 16);
    writer.push(payload.min.to_bits(), 32);
    writer.push(payload.max.to_bits(), 32);
    for (i, &code) in payload.codes.iter().enumerate() {
        if code > max_code {
            return Err(SplitBeamError::DimensionMismatch(format!(
                "code {code} at index {i} does not fit in {bits} bits"
            )));
        }
        writer.push(u32::from(code), bits);
    }
    let mut frame = writer.finish();
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_be_bytes());
    Ok(frame)
}

/// Encodes a quantized payload into the legacy (pre-versioned, CRC-less)
/// `[bpv][count][min][max][codes]` layout. Kept so compatibility with frames
/// from older captures stays testable; new senders should use
/// [`encode_feedback`].
///
/// # Errors
/// Same contract as [`encode_feedback`].
pub fn encode_feedback_legacy(payload: &QuantizedFeedback) -> Result<Vec<u8>, SplitBeamError> {
    let bits = check_encodable(payload)?;
    let max_code = ((1u32 << bits) - 1) as u16;
    let mut writer = BitWriter::with_capacity_bits(
        LEGACY_WIRE_HEADER_BITS + payload.codes.len() * bits as usize,
    );
    writer.push(u32::from(payload.bits_per_value), 8);
    writer.push(payload.codes.len() as u32, 16);
    writer.push(payload.min.to_bits(), 32);
    writer.push(payload.max.to_bits(), 32);
    for (i, &code) in payload.codes.iter().enumerate() {
        if code > max_code {
            return Err(SplitBeamError::DimensionMismatch(format!(
                "code {code} at index {i} does not fit in {bits} bits"
            )));
        }
        writer.push(u32::from(code), bits);
    }
    Ok(writer.finish())
}

fn check_encodable(payload: &QuantizedFeedback) -> Result<u32, SplitBeamError> {
    if !(1..=16).contains(&payload.bits_per_value) {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "bits_per_value {} outside the encodable 1..=16 range",
            payload.bits_per_value
        )));
    }
    if payload.codes.len() > u16::MAX as usize {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "{} codes exceed the wire format's u16 count field",
            payload.codes.len()
        )));
    }
    Ok(u32::from(payload.bits_per_value))
}

/// Decodes a wire frame (v2 or legacy) back into the quantized payload.
///
/// Decoding is exact: the codes and the two range floats are recovered
/// bit-for-bit, so dequantizing the decoded payload yields byte-identical
/// results to dequantizing the original.
///
/// # Errors
/// Returns [`SplitBeamError::CorruptFrame`] when a v2 frame's CRC-32 trailer
/// does not match its contents, and [`SplitBeamError::DimensionMismatch`] when
/// the frame is truncated, opens with an unknown version octet, declares an
/// invalid bit width, carries non-finite range floats, or has trailing bytes
/// beyond the declared code count.
pub fn decode_feedback(frame: &[u8]) -> Result<QuantizedFeedback, SplitBeamError> {
    let mut payload = QuantizedFeedback {
        bits_per_value: 1,
        min: 0.0,
        max: 0.0,
        codes: Vec::new(),
    };
    decode_feedback_into(frame, &mut payload)?;
    Ok(payload)
}

/// Decodes a wire frame (v2 or legacy) into a caller-owned payload, reusing
/// its `codes` buffer (the serving layer's steady-state ingest path — no
/// allocation after the buffer reaches its high-water capacity).
///
/// On error the payload is always left **cleared**: `bits_per_value == 1`,
/// `min == max == 0.0`, and `codes` empty (its capacity is retained for
/// reuse). A failed decode therefore can never leave stale or partially
/// decoded feedback behind.
///
/// # Errors
/// Same contract as [`decode_feedback`].
pub fn decode_feedback_into(
    frame: &[u8],
    payload: &mut QuantizedFeedback,
) -> Result<(), SplitBeamError> {
    let result = decode_inner(frame, payload);
    if result.is_err() {
        payload.bits_per_value = 1;
        payload.min = 0.0;
        payload.max = 0.0;
        payload.codes.clear();
    }
    result
}

fn decode_inner(frame: &[u8], payload: &mut QuantizedFeedback) -> Result<(), SplitBeamError> {
    match frame.first() {
        Some(&WIRE_VERSION) => decode_v2(frame, payload),
        Some(&bpv) if (1..=16).contains(&bpv) => decode_legacy(frame, payload),
        Some(&first) => Err(SplitBeamError::DimensionMismatch(format!(
            "unknown wire frame version octet {first:#04x}"
        ))),
        None => Err(SplitBeamError::DimensionMismatch("empty wire frame".into())),
    }
}

fn decode_v2(frame: &[u8], payload: &mut QuantizedFeedback) -> Result<(), SplitBeamError> {
    let floor = WIRE_HEADER_BYTES + WIRE_TRAILER_BYTES;
    if frame.len() < floor {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "wire frame of {} bytes is shorter than the {floor}-byte v2 header+trailer",
            frame.len()
        )));
    }
    // Verify the CRC before trusting any header field: a corrupted frame must
    // surface as CorruptFrame, never as a misleading field-level error.
    let body = &frame[..frame.len() - WIRE_TRAILER_BYTES];
    let stored = u32::from_be_bytes(
        frame[frame.len() - WIRE_TRAILER_BYTES..]
            .try_into()
            .expect("trailer is exactly four bytes"),
    );
    let computed = crc32(body);
    if stored != computed {
        return Err(SplitBeamError::CorruptFrame(format!(
            "CRC-32 mismatch: trailer {stored:#010x}, contents {computed:#010x}"
        )));
    }
    let mut reader = BitReader::new(body);
    // The length floor above guarantees every header pull succeeds.
    let _version = reader.pull(8).expect("length checked");
    let bits_per_value = reader.pull(8).expect("length checked") as u8;
    let _seq = reader.pull(16).expect("length checked");
    let count = reader.pull(16).expect("length checked") as usize;
    let min = f32::from_bits(reader.pull(32).expect("length checked"));
    let max = f32::from_bits(reader.pull(32).expect("length checked"));
    check_fields(bits_per_value, min, max)?;
    let expected_len = encoded_len(count, bits_per_value);
    if frame.len() != expected_len {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "wire frame is {} bytes, header declares {count} codes x {bits_per_value} bits = {expected_len} bytes",
            frame.len()
        )));
    }
    fill_codes(&mut reader, payload, bits_per_value, min, max, count);
    Ok(())
}

fn decode_legacy(frame: &[u8], payload: &mut QuantizedFeedback) -> Result<(), SplitBeamError> {
    let mut reader = BitReader::new(frame);
    let header_err = || {
        SplitBeamError::DimensionMismatch(format!(
            "wire frame of {} bytes is shorter than the {LEGACY_WIRE_HEADER_BYTES}-byte legacy header",
            frame.len()
        ))
    };
    let bits_per_value = reader.pull(8).ok_or_else(header_err)? as u8;
    let count = reader.pull(16).ok_or_else(header_err)? as usize;
    let min = f32::from_bits(reader.pull(32).ok_or_else(header_err)?);
    let max = f32::from_bits(reader.pull(32).ok_or_else(header_err)?);
    check_fields(bits_per_value, min, max)?;
    let expected_len = legacy_encoded_len(count, bits_per_value);
    if frame.len() != expected_len {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "legacy wire frame is {} bytes, header declares {count} codes x {bits_per_value} bits = {expected_len} bytes",
            frame.len()
        )));
    }
    fill_codes(&mut reader, payload, bits_per_value, min, max, count);
    Ok(())
}

fn check_fields(bits_per_value: u8, min: f32, max: f32) -> Result<(), SplitBeamError> {
    if !(1..=16).contains(&bits_per_value) {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "invalid bits_per_value {bits_per_value} in wire header"
        )));
    }
    if !min.is_finite() || !max.is_finite() {
        return Err(SplitBeamError::DimensionMismatch(
            "non-finite quantization range in wire header".into(),
        ));
    }
    Ok(())
}

fn fill_codes(
    reader: &mut BitReader<'_>,
    payload: &mut QuantizedFeedback,
    bits_per_value: u8,
    min: f32,
    max: f32,
    count: usize,
) {
    payload.bits_per_value = bits_per_value;
    payload.min = min;
    payload.max = max;
    payload.codes.clear();
    // Length was validated by the caller; the bulk pull cannot fail.
    reader
        .pull_u16s_into(u32::from(bits_per_value), count, &mut payload.codes)
        .expect("frame length validated against declared code count");
}

/// Sequence number carried by a v2 frame's header; `0` for legacy frames
/// (which are always unsequenced) and for frames too short to carry one.
pub fn frame_seq(frame: &[u8]) -> u16 {
    if frame.len() >= 4 && frame[0] == WIRE_VERSION {
        u16::from_be_bytes([frame[2], frame[3]])
    } else {
        0
    }
}

/// Rewrites the sequence number of a v2 frame in place and re-seals its
/// CRC-32 trailer. Returns `false` (leaving the frame untouched) for legacy
/// frames or anything too short to be a v2 frame — those stay unsequenced.
pub fn set_frame_seq(frame: &mut [u8], seq: u16) -> bool {
    if frame.len() < WIRE_HEADER_BYTES + WIRE_TRAILER_BYTES || frame[0] != WIRE_VERSION {
        return false;
    }
    frame[2..4].copy_from_slice(&seq.to_be_bytes());
    refresh_crc(frame);
    true
}

/// Recomputes and stores the CRC-32 trailer of a v2 frame after an in-place
/// mutation. Returns `false` (no-op) when the frame is not a v2 frame. Tests
/// and fault tooling use this to craft *validly sealed* hostile frames.
pub fn refresh_crc(frame: &mut [u8]) -> bool {
    if frame.len() < WIRE_HEADER_BYTES + WIRE_TRAILER_BYTES || frame[0] != WIRE_VERSION {
        return false;
    }
    let crc = crc32(&frame[..frame.len() - WIRE_TRAILER_BYTES]);
    let at = frame.len() - WIRE_TRAILER_BYTES;
    frame[at..].copy_from_slice(&crc.to_be_bytes());
    true
}

/// Exact v2 wire frame length in bytes for `count` codes at `bits_per_value`
/// bits, including the CRC-32 trailer.
pub fn encoded_len(count: usize, bits_per_value: u8) -> usize {
    WIRE_HEADER_BYTES + (count * bits_per_value as usize).div_ceil(8) + WIRE_TRAILER_BYTES
}

/// Exact legacy wire frame length in bytes for `count` codes at
/// `bits_per_value` bits.
pub fn legacy_encoded_len(count: usize, bits_per_value: u8) -> usize {
    LEGACY_WIRE_HEADER_BYTES + (count * bits_per_value as usize).div_ceil(8)
}

/// Bytes the pre-wire in-memory representation shipped between crates: one
/// `u16` per code plus the `bits_per_value`/`min`/`max` fields. Kept as the
/// baseline the wire codec is measured against in `serve_report`.
pub fn legacy_repr_bytes(count: usize) -> usize {
    1 + 4 + 4 + 2 * count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantization::{dequantize_bottleneck, quantize_bottleneck};
    use proptest::prelude::*;

    fn sample_values(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.217).sin() * 2.5).collect()
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE 802.3 check value for the standard "123456789" test string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_is_bit_exact_for_all_widths() {
        let values = sample_values(77);
        for bits in 1..=16u8 {
            let payload = quantize_bottleneck(&values, bits);
            let frame = encode_feedback(&payload).unwrap();
            assert_eq!(frame.len(), encoded_len(payload.codes.len(), bits));
            assert_eq!(frame.len(), payload.wire_bytes());
            let decoded = decode_feedback(&frame).unwrap();
            assert_eq!(decoded, payload, "bits={bits}");
            assert_eq!(
                dequantize_bottleneck(&decoded),
                dequantize_bottleneck(&payload)
            );
        }
    }

    #[test]
    fn legacy_frames_still_decode() {
        let values = sample_values(77);
        for bits in 1..=16u8 {
            let payload = quantize_bottleneck(&values, bits);
            let frame = encode_feedback_legacy(&payload).unwrap();
            assert_eq!(frame.len(), legacy_encoded_len(payload.codes.len(), bits));
            assert_eq!(decode_feedback(&frame).unwrap(), payload, "bits={bits}");
            assert_eq!(frame_seq(&frame), 0);
        }
    }

    #[test]
    fn four_bit_codes_occupy_four_bits() {
        let payload = quantize_bottleneck(&sample_values(100), 4);
        let frame = encode_feedback(&payload).unwrap();
        assert_eq!(frame.len(), WIRE_HEADER_BYTES + 50 + WIRE_TRAILER_BYTES);
        assert!(frame.len() * 8 < legacy_repr_bytes(100) * 8 / 3);
    }

    #[test]
    fn empty_payload_encodes_to_header_and_trailer_only() {
        let payload = quantize_bottleneck(&[], 8);
        let frame = encode_feedback(&payload).unwrap();
        assert_eq!(frame.len(), WIRE_HEADER_BYTES + WIRE_TRAILER_BYTES);
        assert_eq!(decode_feedback(&frame).unwrap(), payload);
    }

    #[test]
    fn truncated_frames_rejected() {
        let payload = quantize_bottleneck(&sample_values(10), 6);
        let frame = encode_feedback(&payload).unwrap();
        for cut in [0, 3, WIRE_HEADER_BYTES, frame.len() - 1] {
            assert!(
                decode_feedback(&frame[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
        let mut padded = frame.clone();
        padded.push(0);
        assert!(decode_feedback(&padded).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let payload = quantize_bottleneck(&sample_values(24), 7);
        let frame = encode_feedback(&payload).unwrap();
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut hostile = frame.clone();
                hostile[byte] ^= 1 << bit;
                let err = decode_feedback(&hostile).expect_err("bit flip must be rejected");
                if byte > 0 {
                    // Anything after the version octet leaves a sniffable v2
                    // frame whose CRC no longer matches.
                    assert!(
                        matches!(err, SplitBeamError::CorruptFrame(_)),
                        "flip at byte {byte} bit {bit}: {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn crafted_invalid_header_fields_rejected() {
        // A hostile sender can seal arbitrary header fields behind a valid
        // CRC; field validation must still catch them (as DimensionMismatch,
        // since the frame is intact — just inconsistent).
        let payload = quantize_bottleneck(&sample_values(4), 8);
        let mut zero_bpv = encode_feedback(&payload).unwrap();
        zero_bpv[1] = 0;
        refresh_crc(&mut zero_bpv);
        assert!(matches!(
            decode_feedback(&zero_bpv),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        let mut wide_bpv = encode_feedback(&payload).unwrap();
        wide_bpv[1] = 17;
        refresh_crc(&mut wide_bpv);
        assert!(matches!(
            decode_feedback(&wide_bpv),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        let mut nan_range = encode_feedback(&payload).unwrap();
        nan_range[6..10].copy_from_slice(&f32::NAN.to_bits().to_be_bytes());
        refresh_crc(&mut nan_range);
        assert!(matches!(
            decode_feedback(&nan_range),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        // Unknown version octet (not 0xB5, not a legacy bpv).
        let mut bad_version = encode_feedback(&payload).unwrap();
        bad_version[0] = 0x42;
        assert!(decode_feedback(&bad_version).is_err());
    }

    #[test]
    fn sequence_number_roundtrips_and_reseals() {
        let payload = quantize_bottleneck(&sample_values(16), 5);
        let frame = encode_feedback_with_seq(&payload, 3).unwrap();
        assert_eq!(frame_seq(&frame), 3);
        assert_eq!(decode_feedback(&frame).unwrap(), payload);

        let mut patched = encode_feedback(&payload).unwrap();
        assert_eq!(frame_seq(&patched), 0);
        assert!(set_frame_seq(&mut patched, 7));
        assert_eq!(frame_seq(&patched), 7);
        assert_eq!(patched, encode_feedback_with_seq(&payload, 7).unwrap());
        assert_eq!(decode_feedback(&patched).unwrap(), payload);

        let mut legacy = encode_feedback_legacy(&payload).unwrap();
        assert!(
            !set_frame_seq(&mut legacy, 7),
            "legacy frames stay unsequenced"
        );
        assert_eq!(decode_feedback(&legacy).unwrap(), payload);
    }

    #[test]
    fn encode_rejects_out_of_range_bit_width() {
        // Satellite: hand-built payloads with an invalid width must fail with
        // a real error in release builds, not silently mis-pack.
        for bpv in [0u8, 17, 255] {
            let payload = QuantizedFeedback {
                bits_per_value: bpv,
                min: 0.0,
                max: 1.0,
                codes: vec![0, 1],
            };
            assert!(
                matches!(
                    encode_feedback(&payload),
                    Err(SplitBeamError::DimensionMismatch(_))
                ),
                "bpv={bpv}"
            );
            assert!(encode_feedback_legacy(&payload).is_err(), "bpv={bpv}");
        }
    }

    #[test]
    fn failed_decode_clears_payload() {
        // Satellite: every error path must leave the reused payload cleared,
        // never holding stale or partially decoded feedback.
        let good = quantize_bottleneck(&sample_values(12), 9);
        let cleared = QuantizedFeedback {
            bits_per_value: 1,
            min: 0.0,
            max: 0.0,
            codes: Vec::new(),
        };
        let frame = encode_feedback(&good).unwrap();
        let mut corrupt = frame.clone();
        *corrupt.last_mut().unwrap() ^= 0xFF;
        let bad_frames: Vec<Vec<u8>> = vec![
            Vec::new(),                                // empty
            frame[..5].to_vec(),                       // truncated mid-header
            frame[..frame.len() - 1].to_vec(),         // truncated trailer
            corrupt,                                   // CRC mismatch
            vec![0x42; 40],                            // unknown version
            vec![17, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0], // legacy bad bpv
        ];
        for (i, bad) in bad_frames.iter().enumerate() {
            let mut payload = good.clone();
            let capacity = payload.codes.capacity();
            assert!(decode_feedback_into(bad, &mut payload).is_err(), "case {i}");
            assert_eq!(payload, cleared, "case {i}: payload must be cleared");
            assert_eq!(
                payload.codes.capacity(),
                capacity,
                "case {i}: capacity is retained for reuse"
            );
        }
        // And a successful decode into a previously failed buffer still works.
        let mut payload = cleared.clone();
        decode_feedback_into(&frame, &mut payload).unwrap();
        assert_eq!(payload, good);
    }

    #[test]
    fn oversized_code_rejected_at_encode() {
        let mut payload = quantize_bottleneck(&sample_values(4), 4);
        payload.codes[2] = 16; // does not fit in 4 bits
        assert!(encode_feedback(&payload).is_err());
        assert!(encode_feedback_legacy(&payload).is_err());
    }

    #[test]
    fn header_constants_consistent() {
        assert_eq!(WIRE_HEADER_BITS, 112);
        assert_eq!(WIRE_HEADER_BYTES, 14);
        assert_eq!(WIRE_TRAILER_BITS, 32);
        assert_eq!(WIRE_TRAILER_BYTES, 4);
        assert_eq!(LEGACY_WIRE_HEADER_BITS, 88);
        assert_eq!(LEGACY_WIRE_HEADER_BYTES, 11);
        assert_eq!(encoded_len(0, 16), WIRE_HEADER_BYTES + WIRE_TRAILER_BYTES);
        assert_eq!(legacy_encoded_len(0, 16), LEGACY_WIRE_HEADER_BYTES);
        assert_ne!(WIRE_VERSION as usize, 0);
        assert!(!(1..=16).contains(&(WIRE_VERSION as usize)));
    }

    proptest! {
        /// Satellite: quantize → wire-encode → wire-decode → dequantize is
        /// bit-exact with the unencoded path for every width 1..=16, on both
        /// the v2 and legacy layouts.
        #[test]
        fn prop_wire_roundtrip_bit_exact(
            values in proptest::collection::vec(-25.0f32..25.0, 0..96),
            bits in 1u8..17,
            seq in 0u16..=u16::MAX,
        ) {
            let payload = quantize_bottleneck(&values, bits);
            let frame = encode_feedback_with_seq(&payload, seq).unwrap();
            prop_assert_eq!(frame.len(), encoded_len(values.len(), bits));
            prop_assert_eq!(frame_seq(&frame), seq);
            let decoded = decode_feedback(&frame).unwrap();
            prop_assert_eq!(&decoded, &payload);
            let legacy = encode_feedback_legacy(&payload).unwrap();
            prop_assert_eq!(&decode_feedback(&legacy).unwrap(), &payload);
            let direct = dequantize_bottleneck(&payload);
            let via_wire = dequantize_bottleneck(&decoded);
            prop_assert_eq!(direct.len(), via_wire.len());
            for (a, b) in direct.iter().zip(via_wire.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "wire path must be bit-exact");
            }
        }
    }
}
