//! Bit-packed over-the-air wire format for [`QuantizedFeedback`].
//!
//! The in-memory payload keeps one `u16` per code for fast arithmetic, but a
//! real feedback frame must carry each code at its true width — a 4-bit
//! bottleneck occupies 4 bits per value on the air, not 16. This module is the
//! boundary between the two representations. The frame layout is:
//!
//! ```text
//! +---------------+-------------+-----------+-----------+------------------+
//! | bits_per_value|  code count |    min    |    max    |   packed codes   |
//! |     u8        |     u16     | f32 (BE)  | f32 (BE)  | bpv bits/code,   |
//! |               | big-endian  |  IEEE 754 |  IEEE 754 | MSB first, zero- |
//! |               |             |           |           | padded to a byte |
//! +---------------+-------------+-----------+-----------+------------------+
//! ```
//!
//! The body reuses the exact MSB-first packing primitives of
//! [`dot11_bfi::bits`], so the SplitBeam payload and the 802.11 compressed
//! beamforming report share one bit-level convention. An explicit code count
//! is carried because the zero-padding of the final byte would otherwise make
//! the number of codes ambiguous for widths that do not divide 8.

use crate::quantization::QuantizedFeedback;
use crate::SplitBeamError;
use dot11_bfi::bits::{BitReader, BitWriter};

/// Size of the fixed frame header in bits: `bits_per_value` (8) + code count
/// (16) + `min` (32) + `max` (32).
pub const WIRE_HEADER_BITS: usize = 8 + 16 + 32 + 32;

/// Size of the fixed frame header in bytes.
pub const WIRE_HEADER_BYTES: usize = WIRE_HEADER_BITS / 8;

/// Encodes a quantized payload into its bit-packed wire representation.
///
/// # Errors
/// Returns [`SplitBeamError::DimensionMismatch`] when the payload carries more
/// codes than the 16-bit count field can describe, or a code that does not fit
/// the declared bit width (both indicate a corrupted payload, not a capacity
/// limit of the format per se).
pub fn encode_feedback(payload: &QuantizedFeedback) -> Result<Vec<u8>, SplitBeamError> {
    if payload.codes.len() > u16::MAX as usize {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "{} codes exceed the wire format's u16 count field",
            payload.codes.len()
        )));
    }
    let bits = u32::from(payload.bits_per_value);
    debug_assert!((1..=16).contains(&bits));
    let max_code = ((1u32 << bits) - 1) as u16;
    let mut writer =
        BitWriter::with_capacity_bits(WIRE_HEADER_BITS + payload.codes.len() * bits as usize);
    writer.push(u32::from(payload.bits_per_value), 8);
    writer.push(payload.codes.len() as u32, 16);
    writer.push(payload.min.to_bits(), 32);
    writer.push(payload.max.to_bits(), 32);
    for (i, &code) in payload.codes.iter().enumerate() {
        if code > max_code {
            return Err(SplitBeamError::DimensionMismatch(format!(
                "code {code} at index {i} does not fit in {bits} bits"
            )));
        }
        writer.push(u32::from(code), bits);
    }
    Ok(writer.finish())
}

/// Decodes a wire frame back into the quantized payload.
///
/// Decoding is exact: the codes and the two range floats are recovered
/// bit-for-bit, so dequantizing the decoded payload yields byte-identical
/// results to dequantizing the original.
///
/// # Errors
/// Returns [`SplitBeamError::DimensionMismatch`] when the frame is truncated,
/// declares an invalid bit width, carries non-finite range floats, or has
/// trailing bytes beyond the declared code count.
pub fn decode_feedback(frame: &[u8]) -> Result<QuantizedFeedback, SplitBeamError> {
    let mut payload = QuantizedFeedback {
        bits_per_value: 1,
        min: 0.0,
        max: 0.0,
        codes: Vec::new(),
    };
    decode_feedback_into(frame, &mut payload)?;
    Ok(payload)
}

/// Decodes a wire frame into a caller-owned payload, reusing its `codes`
/// buffer (the serving layer's steady-state ingest path — no allocation after
/// the buffer reaches its high-water capacity).
///
/// On error the payload contents are unspecified (but valid memory); callers
/// must not treat them as a decoded frame.
///
/// # Errors
/// Same contract as [`decode_feedback`].
pub fn decode_feedback_into(
    frame: &[u8],
    payload: &mut QuantizedFeedback,
) -> Result<(), SplitBeamError> {
    let mut reader = BitReader::new(frame);
    let header_err = || {
        SplitBeamError::DimensionMismatch(format!(
            "wire frame of {} bytes is shorter than the {WIRE_HEADER_BYTES}-byte header",
            frame.len()
        ))
    };
    let bits_per_value = reader.pull(8).ok_or_else(header_err)? as u8;
    let count = reader.pull(16).ok_or_else(header_err)? as usize;
    let min = f32::from_bits(reader.pull(32).ok_or_else(header_err)?);
    let max = f32::from_bits(reader.pull(32).ok_or_else(header_err)?);
    if !(1..=16).contains(&bits_per_value) {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "invalid bits_per_value {bits_per_value} in wire header"
        )));
    }
    if !min.is_finite() || !max.is_finite() {
        return Err(SplitBeamError::DimensionMismatch(
            "non-finite quantization range in wire header".into(),
        ));
    }
    let expected_len = WIRE_HEADER_BYTES + (count * bits_per_value as usize).div_ceil(8);
    if frame.len() != expected_len {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "wire frame is {} bytes, header declares {count} codes x {bits_per_value} bits = {expected_len} bytes",
            frame.len()
        )));
    }
    payload.bits_per_value = bits_per_value;
    payload.min = min;
    payload.max = max;
    payload.codes.clear();
    payload.codes.reserve(count);
    for _ in 0..count {
        // Length was validated above; pull cannot fail.
        payload
            .codes
            .push(reader.pull(u32::from(bits_per_value)).unwrap() as u16);
    }
    Ok(())
}

/// Exact wire frame length in bytes for `count` codes at `bits_per_value` bits.
pub fn encoded_len(count: usize, bits_per_value: u8) -> usize {
    WIRE_HEADER_BYTES + (count * bits_per_value as usize).div_ceil(8)
}

/// Bytes the pre-wire in-memory representation shipped between crates: one
/// `u16` per code plus the `bits_per_value`/`min`/`max` fields. Kept as the
/// baseline the wire codec is measured against in `serve_report`.
pub fn legacy_repr_bytes(count: usize) -> usize {
    1 + 4 + 4 + 2 * count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantization::{dequantize_bottleneck, quantize_bottleneck};
    use proptest::prelude::*;

    fn sample_values(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.217).sin() * 2.5).collect()
    }

    #[test]
    fn roundtrip_is_bit_exact_for_all_widths() {
        let values = sample_values(77);
        for bits in 1..=16u8 {
            let payload = quantize_bottleneck(&values, bits);
            let frame = encode_feedback(&payload).unwrap();
            assert_eq!(frame.len(), encoded_len(payload.codes.len(), bits));
            assert_eq!(frame.len(), payload.wire_bytes());
            let decoded = decode_feedback(&frame).unwrap();
            assert_eq!(decoded, payload, "bits={bits}");
            assert_eq!(
                dequantize_bottleneck(&decoded),
                dequantize_bottleneck(&payload)
            );
        }
    }

    #[test]
    fn four_bit_codes_occupy_four_bits() {
        let payload = quantize_bottleneck(&sample_values(100), 4);
        let frame = encode_feedback(&payload).unwrap();
        assert_eq!(frame.len(), WIRE_HEADER_BYTES + 50);
        assert!(frame.len() * 8 < legacy_repr_bytes(100) * 8 / 3);
    }

    #[test]
    fn empty_payload_encodes_to_header_only() {
        let payload = quantize_bottleneck(&[], 8);
        let frame = encode_feedback(&payload).unwrap();
        assert_eq!(frame.len(), WIRE_HEADER_BYTES);
        assert_eq!(decode_feedback(&frame).unwrap(), payload);
    }

    #[test]
    fn truncated_frames_rejected() {
        let payload = quantize_bottleneck(&sample_values(10), 6);
        let frame = encode_feedback(&payload).unwrap();
        for cut in [0, 3, WIRE_HEADER_BYTES, frame.len() - 1] {
            assert!(
                decode_feedback(&frame[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
        let mut padded = frame.clone();
        padded.push(0);
        assert!(decode_feedback(&padded).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn invalid_header_fields_rejected() {
        let payload = quantize_bottleneck(&sample_values(4), 8);
        let mut frame = encode_feedback(&payload).unwrap();
        frame[0] = 0; // bits_per_value = 0
        assert!(decode_feedback(&frame).is_err());
        frame[0] = 17;
        assert!(decode_feedback(&frame).is_err());
        let mut nan_range = encode_feedback(&payload).unwrap();
        nan_range[3..7].copy_from_slice(&f32::NAN.to_bits().to_be_bytes());
        assert!(decode_feedback(&nan_range).is_err());
    }

    #[test]
    fn oversized_code_rejected_at_encode() {
        let mut payload = quantize_bottleneck(&sample_values(4), 4);
        payload.codes[2] = 16; // does not fit in 4 bits
        assert!(encode_feedback(&payload).is_err());
    }

    #[test]
    fn header_constants_consistent() {
        assert_eq!(WIRE_HEADER_BITS, 88);
        assert_eq!(WIRE_HEADER_BYTES, 11);
        assert_eq!(encoded_len(0, 16), WIRE_HEADER_BYTES);
    }

    proptest! {
        /// Satellite: quantize → wire-encode → wire-decode → dequantize is
        /// bit-exact with the unencoded path for every width 1..=16.
        #[test]
        fn prop_wire_roundtrip_bit_exact(
            values in proptest::collection::vec(-25.0f32..25.0, 0..96),
            bits in 1u8..17,
        ) {
            let payload = quantize_bottleneck(&values, bits);
            let frame = encode_feedback(&payload).unwrap();
            prop_assert_eq!(frame.len(), encoded_len(values.len(), bits));
            let decoded = decode_feedback(&frame).unwrap();
            prop_assert_eq!(&decoded, &payload);
            let direct = dequantize_bottleneck(&payload);
            let via_wire = dequantize_bottleneck(&decoded);
            prop_assert_eq!(direct.len(), via_wire.len());
            for (a, b) in direct.iter().zip(via_wire.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "wire path must be bit-exact");
            }
        }
    }
}
