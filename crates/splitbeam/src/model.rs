//! The split head/tail SplitBeam model.

use crate::config::SplitBeamConfig;
use crate::quantization::{dequantize_bottleneck, quantize_bottleneck, QuantizedFeedback};
use crate::SplitBeamError;
use mimo_math::CMatrix;
use neural::network::Network;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wifi_phy::channel::ChannelSnapshot;

/// A trained (or freshly initialized) SplitBeam model: the head network run by
/// the station and the tail network run by the access point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitBeamModel {
    config: SplitBeamConfig,
    head: Network,
    tail: Network,
}

impl SplitBeamModel {
    /// Creates a model with freshly initialized weights from a configuration.
    pub fn new(config: SplitBeamConfig, rng: &mut impl Rng) -> Self {
        let full = Network::new(&config.layer_specs(), rng);
        Self::from_full_network(config, full)
    }

    /// Splits an already-trained full network into head and tail according to
    /// the configuration's split point.
    ///
    /// # Panics
    /// Panics if the network architecture does not match the configuration.
    pub fn from_full_network(config: SplitBeamConfig, full: Network) -> Self {
        assert_eq!(full.input_dim(), config.input_dim(), "input width mismatch");
        assert_eq!(
            full.output_dim(),
            config.output_dim(),
            "output width mismatch"
        );
        let (head, tail) = full.split_at(config.split_index());
        Self { config, head, tail }
    }

    /// The model configuration.
    pub fn config(&self) -> &SplitBeamConfig {
        &self.config
    }

    /// The head network (runs on the station).
    pub fn head(&self) -> &Network {
        &self.head
    }

    /// The tail network (runs on the access point).
    pub fn tail(&self) -> &Network {
        &self.tail
    }

    /// Reassembles the full network (used for further training).
    pub fn to_full_network(&self) -> Network {
        let mut layers = self.head.layers().to_vec();
        layers.extend(self.tail.layers().iter().cloned());
        Network::from_layers(layers)
    }

    /// Width of the compressed representation transmitted over the air.
    pub fn bottleneck_dim(&self) -> usize {
        self.head.output_dim()
    }

    /// Station-side multiply-accumulate count per CSI tensor (the head model).
    pub fn head_macs(&self) -> u64 {
        self.head.macs()
    }

    /// AP-side multiply-accumulate count per CSI tensor (the tail model).
    pub fn tail_macs(&self) -> u64 {
        self.tail.macs()
    }

    /// Station-side FLOPs per CSI tensor.
    pub fn head_flops(&self) -> u64 {
        self.head.flops()
    }

    /// **Station side**: compresses a flattened CSI vector into the bottleneck
    /// representation `V'`.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the input width is wrong.
    pub fn compress(&self, csi_real: &[f32]) -> Result<Vec<f32>, SplitBeamError> {
        self.head
            .predict(csi_real)
            .map_err(|e| SplitBeamError::DimensionMismatch(e.to_string()))
    }

    /// **Station side**: compresses and quantizes the CSI into the over-the-air
    /// feedback payload.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the input width is wrong.
    pub fn compress_quantized(
        &self,
        csi_real: &[f32],
        bits_per_value: u8,
    ) -> Result<QuantizedFeedback, SplitBeamError> {
        let bottleneck = self.compress(csi_real)?;
        Ok(quantize_bottleneck(&bottleneck, bits_per_value))
    }

    /// **AP side**: reconstructs the flattened beamforming feedback from the
    /// bottleneck representation.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the bottleneck width is wrong.
    pub fn reconstruct(&self, bottleneck: &[f32]) -> Result<Vec<f32>, SplitBeamError> {
        self.tail
            .predict(bottleneck)
            .map_err(|e| SplitBeamError::DimensionMismatch(e.to_string()))
    }

    /// **AP side**: dequantizes a received payload and reconstructs the feedback.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the payload width is wrong.
    pub fn reconstruct_quantized(
        &self,
        payload: &QuantizedFeedback,
    ) -> Result<Vec<f32>, SplitBeamError> {
        self.reconstruct(&dequantize_bottleneck(payload))
    }

    /// **AP side, batched**: reconstructs many bottleneck vectors with one
    /// matmul per tail layer instead of one forward pass per vector — the
    /// serving layer's coalesced path. Results are identical to calling
    /// [`SplitBeamModel::reconstruct`] per vector.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the batch is empty or
    /// any vector has the wrong width.
    pub fn reconstruct_batch(
        &self,
        bottlenecks: &[&[f32]],
    ) -> Result<Vec<Vec<f32>>, SplitBeamError> {
        let out = self
            .tail
            .predict_batch(bottlenecks)
            .map_err(|e| SplitBeamError::DimensionMismatch(e.to_string()))?;
        Ok(split_rows(&out))
    }

    /// Full station→AP inference: CSI vector in, flattened `V̂` out (no
    /// quantization; used during training and for upper-bound evaluations).
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the input width is wrong.
    pub fn infer(&self, csi_real: &[f32]) -> Result<Vec<f32>, SplitBeamError> {
        let bottleneck = self.compress(csi_real)?;
        self.reconstruct(&bottleneck)
    }

    /// **Station side, batched**: compresses many CSI vectors with one matmul
    /// per head layer instead of one forward pass per vector.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the batch is empty or
    /// any vector has the wrong width.
    pub fn compress_batch(&self, csi_batch: &[&[f32]]) -> Result<Vec<Vec<f32>>, SplitBeamError> {
        let out = self
            .head
            .predict_batch(csi_batch)
            .map_err(|e| SplitBeamError::DimensionMismatch(e.to_string()))?;
        Ok(split_rows(&out))
    }

    /// Full station→AP inference over a batch of CSI vectors (e.g. every user
    /// of a snapshot, or a whole evaluation set): the entire batch flows
    /// through head and tail as one matmul per layer.
    ///
    /// Results are identical to calling [`SplitBeamModel::infer`] per vector.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the batch is empty or
    /// any vector has the wrong width.
    pub fn infer_batch(&self, csi_batch: &[&[f32]]) -> Result<Vec<Vec<f32>>, SplitBeamError> {
        let bottleneck = self
            .head
            .predict_batch(csi_batch)
            .map_err(|e| SplitBeamError::DimensionMismatch(e.to_string()))?;
        let out = self
            .tail
            .forward(&bottleneck)
            .map_err(|e| SplitBeamError::DimensionMismatch(e.to_string()))?;
        Ok(split_rows(&out))
    }

    /// End-to-end batched convenience: reconstructed per-subcarrier beamforming
    /// matrices for **every** user of a snapshot, with all users' CSI evaluated
    /// as one batch.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the snapshot's
    /// dimensions do not match the model configuration.
    pub fn feedback_for_snapshot(
        &self,
        snapshot: &ChannelSnapshot,
    ) -> Result<Vec<Vec<CMatrix>>, SplitBeamError> {
        let csi: Vec<Vec<f32>> = (0..snapshot.num_users())
            .map(|user| {
                snapshot
                    .csi_real_vector(user)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = csi.iter().map(Vec::as_slice).collect();
        let flats = self.infer_batch(&refs)?;
        flats
            .iter()
            .map(|flat| self.feedback_to_matrices(flat))
            .collect()
    }

    /// Converts a flattened (real-interleaved) feedback vector back into
    /// per-subcarrier `Nt x Nss` beamforming matrices, re-normalizing every
    /// column to unit norm (the beamforming matrix is unitary by construction,
    /// and the precoder expects unit-norm reported directions).
    pub fn feedback_to_matrices(&self, flat: &[f32]) -> Result<Vec<CMatrix>, SplitBeamError> {
        let nt = self.config.mimo.nt;
        let nss = self.config.mimo.nss;
        let subcarriers = self.config.mimo.subcarriers();
        let per_sc = 2 * nt * nss;
        if flat.len() != per_sc * subcarriers {
            return Err(SplitBeamError::DimensionMismatch(format!(
                "feedback length {} does not match {} subcarriers x {} values",
                flat.len(),
                subcarriers,
                per_sc
            )));
        }
        let mut out = Vec::with_capacity(subcarriers);
        for s in 0..subcarriers {
            let chunk: Vec<f64> = flat[s * per_sc..(s + 1) * per_sc]
                .iter()
                .map(|&v| v as f64)
                .collect();
            let mut v = CMatrix::from_real_vec(nt, nss, &chunk);
            // Re-normalize columns; a zero column falls back to a canonical direction.
            for c in 0..nss {
                let norm: f64 = v.column(c).iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
                if norm > 1e-9 {
                    let normalized: Vec<_> = v.column(c).iter().map(|z| *z / norm).collect();
                    v.set_column(c, &normalized);
                } else {
                    let mut e = vec![mimo_math::Complex64::ZERO; nt];
                    e[c.min(nt - 1)] = mimo_math::Complex64::ONE;
                    v.set_column(c, &e);
                }
            }
            out.push(v);
        }
        Ok(out)
    }

    /// End-to-end convenience: computes the reconstructed per-subcarrier
    /// beamforming matrices for station `user` of a channel snapshot, i.e. what
    /// the AP would use after receiving this station's SplitBeam feedback.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the snapshot's
    /// dimensions do not match the model configuration.
    pub fn feedback_for_user(
        &self,
        snapshot: &ChannelSnapshot,
        user: usize,
    ) -> Result<Vec<CMatrix>, SplitBeamError> {
        let csi: Vec<f32> = snapshot
            .csi_real_vector(user)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let flat = self.infer(&csi)?;
        self.feedback_to_matrices(&flat)
    }

    /// Like [`SplitBeamModel::feedback_for_user`] but through the quantized
    /// over-the-air path with `bits_per_value` bits per bottleneck value.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when dimensions do not match.
    pub fn feedback_for_user_quantized(
        &self,
        snapshot: &ChannelSnapshot,
        user: usize,
        bits_per_value: u8,
    ) -> Result<Vec<CMatrix>, SplitBeamError> {
        let csi: Vec<f32> = snapshot
            .csi_real_vector(user)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = self.compress_quantized(&csi, bits_per_value)?;
        let flat = self.reconstruct_quantized(&payload)?;
        self.feedback_to_matrices(&flat)
    }
}

/// Splits a batch output matrix back into one `Vec<f32>` per row.
fn split_rows(m: &neural::Matrix) -> Vec<Vec<f32>> {
    m.as_slice()
        .chunks_exact(m.cols())
        .map(<[f32]>::to_vec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompressionLevel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn small_config() -> SplitBeamConfig {
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        )
    }

    #[test]
    fn dimensions_follow_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        assert_eq!(model.head().input_dim(), 448);
        assert_eq!(model.bottleneck_dim(), 56);
        assert_eq!(model.tail().output_dim(), 224);
        assert_eq!(model.head_macs(), 448 * 56);
        assert_eq!(model.tail_macs(), 56 * 224);
    }

    #[test]
    fn split_composition_matches_full_network() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        let full = model.to_full_network();
        let input: Vec<f32> = (0..448).map(|i| (i as f32 * 0.37).sin() * 0.1).collect();
        let via_split = model.infer(&input).unwrap();
        let via_full = full.predict(&input).unwrap();
        for (a, b) in via_split.iter().zip(via_full.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn wrong_input_width_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        assert!(matches!(
            model.compress(&[0.0; 10]),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        assert!(matches!(
            model.reconstruct(&[0.0; 10]),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn feedback_matrices_are_unit_norm() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = channel.sample(&mut rng);
        let feedback = model.feedback_for_user(&snap, 0).unwrap();
        assert_eq!(feedback.len(), 56);
        for v in &feedback {
            assert_eq!(v.shape(), (2, 1));
            let norm: f64 = v.column(0).iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_path_close_to_unquantized() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = channel.sample(&mut rng);
        let exact = model.feedback_for_user(&snap, 0).unwrap();
        let quantized = model.feedback_for_user_quantized(&snap, 0, 12).unwrap();
        let mut max_err: f64 = 0.0;
        for (a, b) in exact.iter().zip(quantized.iter()) {
            max_err = max_err.max(a.sub(b).max_abs());
        }
        assert!(
            max_err < 0.05,
            "12-bit quantization error {max_err} too large"
        );
    }

    #[test]
    fn batched_inference_matches_per_vector_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|i| {
                (0..448)
                    .map(|j| ((i * 448 + j) as f32 * 0.13).sin() * 0.1)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        let batched = model.infer_batch(&refs).unwrap();
        assert_eq!(batched.len(), 5);
        for (input, out) in inputs.iter().zip(batched.iter()) {
            assert_eq!(out, &model.infer(input).unwrap(), "batched row differs");
        }
        let compressed = model.compress_batch(&refs).unwrap();
        for (input, out) in inputs.iter().zip(compressed.iter()) {
            assert_eq!(out, &model.compress(input).unwrap());
        }
        let bottleneck_refs: Vec<&[f32]> = compressed.iter().map(Vec::as_slice).collect();
        let reconstructed = model.reconstruct_batch(&bottleneck_refs).unwrap();
        for (bottleneck, out) in compressed.iter().zip(reconstructed.iter()) {
            assert_eq!(out, &model.reconstruct(bottleneck).unwrap());
        }
        assert!(matches!(
            model.infer_batch(&[]),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn snapshot_feedback_matches_per_user_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = channel.sample(&mut rng);
        let batched = model.feedback_for_snapshot(&snap).unwrap();
        assert_eq!(batched.len(), snap.num_users());
        for (user, batched_user) in batched.iter().enumerate() {
            let per_user = model.feedback_for_user(&snap, user).unwrap();
            assert_eq!(batched_user, &per_user, "user {user}");
        }
    }

    #[test]
    fn feedback_length_mismatch_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        assert!(matches!(
            model.feedback_to_matrices(&[0.0; 7]),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn zero_feedback_falls_back_to_canonical_directions() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let model = SplitBeamModel::new(small_config(), &mut rng);
        let flat = vec![0.0f32; 224];
        let matrices = model.feedback_to_matrices(&flat).unwrap();
        for v in matrices {
            let norm: f64 = v.column(0).iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deeper_config_has_more_tail_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let deeper = small_config().with_extra_tail_layer();
        let model = SplitBeamModel::new(deeper, &mut rng);
        assert_eq!(model.head().layers().len(), 1);
        assert_eq!(model.tail().layers().len(), 2);
    }
}
