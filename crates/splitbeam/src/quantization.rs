//! Quantization of the bottleneck activations for over-the-air transport.
//!
//! The head's output `V'` must be carried in a Wi-Fi management frame, so it is
//! quantized to a fixed number of bits per value. A per-payload uniform
//! quantizer with an explicit `[min, max]` range is used: the two range floats
//! are part of the payload, which is how the AP dequantizes without any shared
//! state. The paper's feedback-size analysis (Section IV-E2) counts 16 bits per
//! bottleneck value; the default here matches that, and the ablation benches
//! sweep the width.

use serde::{Deserialize, Serialize};

/// Default number of bits per bottleneck value (matches the paper's accounting
/// of 16 bits per feedback value).
pub const DEFAULT_BITS_PER_VALUE: u8 = 16;

/// A quantized bottleneck payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedFeedback {
    /// Number of bits used for each value (1..=16).
    pub bits_per_value: u8,
    /// Minimum of the quantization range.
    pub min: f32,
    /// Maximum of the quantization range.
    pub max: f32,
    /// The quantized codes (one per bottleneck value).
    pub codes: Vec<u16>,
}

impl QuantizedFeedback {
    /// Size of the payload in bits as carried by the wire codec: the codes at
    /// their true bit width plus the v2 frame header (version, bits-per-value,
    /// sequence number, code count, and the two 32-bit range floats —
    /// [`crate::wire::WIRE_HEADER_BITS`]) and the CRC-32 trailer
    /// ([`crate::wire::WIRE_TRAILER_BITS`]).
    pub fn size_bits(&self) -> usize {
        self.codes.len() * self.bits_per_value as usize
            + crate::wire::WIRE_HEADER_BITS
            + crate::wire::WIRE_TRAILER_BITS
    }

    /// Size of the payload in bytes when bit-packed by [`crate::wire::encode_feedback`]
    /// (the body is zero-padded to a whole byte).
    pub fn wire_bytes(&self) -> usize {
        crate::wire::encoded_len(self.codes.len(), self.bits_per_value)
    }
}

/// Quantizes a bottleneck activation vector with `bits_per_value` bits per value.
///
/// The quantization range is computed over the *finite* values only, so a
/// stray NaN or infinity (e.g. from an overflowed activation) cannot poison
/// the scale for the whole payload. Non-finite inputs are clamped to the
/// nearest edge code: `+inf` to the top code, `-inf` to code 0, and NaN —
/// which has no nearest edge — deterministically to code 0.
///
/// # Panics
/// Panics if `bits_per_value` is zero or greater than 16.
pub fn quantize_bottleneck(values: &[f32], bits_per_value: u8) -> QuantizedFeedback {
    assert!(
        (1..=16).contains(&bits_per_value),
        "bits per value must be in 1..=16"
    );
    let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() || !max.is_finite() {
        // Empty payload, or no finite value at all: pin the range.
        min = 0.0;
        max = 0.0;
    }
    if max <= min {
        // Constant (or empty) payload: widen the range artificially so the
        // dequantizer reproduces the constant exactly.
        max = min + 1.0;
    }
    // The span and scale are computed in f64: a finite-but-extreme range
    // (e.g. min = -2e38, max = 2e38) overflows `max - min` in f32, which
    // would zero the scale and NaN-poison the dequantized values.
    let levels = f64::from((1u32 << bits_per_value) - 1);
    let scale = levels / (f64::from(max) - f64::from(min));
    let codes = values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                0
            } else {
                // +inf/-inf flow through the arithmetic and clamp to an edge.
                (((f64::from(v) - f64::from(min)) * scale)
                    .round()
                    .clamp(0.0, levels)) as u16
            }
        })
        .collect();
    QuantizedFeedback {
        bits_per_value,
        min,
        max,
        codes,
    }
}

/// Dequantizes a payload back into bottleneck activations.
///
/// Allocating convenience form of [`dequantize_bottleneck_into`]; hot paths
/// (the single-payload reconstruction and the fused serve path) reuse a
/// caller-owned buffer instead.
pub fn dequantize_bottleneck(payload: &QuantizedFeedback) -> Vec<f32> {
    let mut out = vec![0.0f32; payload.codes.len()];
    dequantize_bottleneck_into(payload, &mut out);
    out
}

/// Dequantizes a payload into a caller-owned buffer (bit-identical to
/// [`dequantize_bottleneck`], no allocation).
///
/// Like the quantizer, the step is computed in f64 so a finite-but-extreme
/// `[min, max]` range cannot overflow to infinity and turn every value NaN.
///
/// # Panics
/// Panics if `out.len() != payload.codes.len()`.
pub fn dequantize_bottleneck_into(payload: &QuantizedFeedback, out: &mut [f32]) {
    assert_eq!(
        out.len(),
        payload.codes.len(),
        "dequantize output buffer length mismatch"
    );
    let levels = f64::from((1u32 << payload.bits_per_value) - 1);
    let step = (f64::from(payload.max) - f64::from(payload.min)) / levels;
    for (o, &c) in out.iter_mut().zip(payload.codes.iter()) {
        *o = (f64::from(payload.min) + f64::from(c) * step) as f32;
    }
}

/// Worst-case quantization error for a payload spanning `[min, max]` with the
/// given bit width (half a step).
pub fn max_quantization_error(min: f32, max: f32, bits_per_value: u8) -> f32 {
    let levels = f64::from((1u32 << bits_per_value) - 1);
    ((f64::from(max) - f64::from(min)) / levels / 2.0) as f32
}

/// Feedback size in bits for a bottleneck of `bottleneck_dim` values at
/// `bits_per_value` bits each, excluding the fixed per-frame wire header
/// ([`crate::wire::WIRE_HEADER_BITS`] bits; see
/// [`crate::airtime::feedback_bits_on_air`] for the header-inclusive size).
pub fn feedback_bits(bottleneck_dim: usize, bits_per_value: u8) -> usize {
    bottleneck_dim * bits_per_value as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_error_bounded() {
        let values: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.173).sin()).collect();
        for bits in [4u8, 8, 12, 16] {
            let payload = quantize_bottleneck(&values, bits);
            let rebuilt = dequantize_bottleneck(&payload);
            let bound = max_quantization_error(payload.min, payload.max, bits);
            for (a, b) in values.iter().zip(rebuilt.iter()) {
                assert!(
                    (a - b).abs() <= bound + 1e-6,
                    "bits={bits}: error {} exceeds bound {bound}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn more_bits_means_less_error() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32 * 0.31).cos()).collect();
        let err = |bits: u8| -> f32 {
            let rebuilt = dequantize_bottleneck(&quantize_bottleneck(&values, bits));
            values
                .iter()
                .zip(rebuilt.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max)
        };
        assert!(err(12) < err(6));
        assert!(err(6) < err(3));
    }

    #[test]
    fn dequantize_into_matches_allocating_form_and_reuses_buffer() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        for bits in [1u8, 4, 9, 16] {
            let payload = quantize_bottleneck(&values, bits);
            let expect = dequantize_bottleneck(&payload);
            let mut buf = vec![0.0f32; payload.codes.len()];
            dequantize_bottleneck_into(&payload, &mut buf);
            assert_eq!(buf, expect, "bits={bits}: _into must be bit-identical");
        }
    }

    #[test]
    #[should_panic]
    fn dequantize_into_rejects_wrong_buffer_length() {
        let payload = quantize_bottleneck(&[1.0, 2.0], 8);
        let mut buf = [0.0f32; 3];
        dequantize_bottleneck_into(&payload, &mut buf);
    }

    #[test]
    fn constant_payload_is_exact() {
        let values = vec![0.25f32; 10];
        let rebuilt = dequantize_bottleneck(&quantize_bottleneck(&values, 8));
        for v in rebuilt {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let payload = quantize_bottleneck(&[], 8);
        assert!(dequantize_bottleneck(&payload).is_empty());
        assert_eq!(
            payload.size_bits(),
            crate::wire::WIRE_HEADER_BITS + crate::wire::WIRE_TRAILER_BITS
        );
        assert_eq!(
            payload.wire_bytes(),
            crate::wire::WIRE_HEADER_BYTES + crate::wire::WIRE_TRAILER_BYTES
        );
    }

    #[test]
    fn size_accounting() {
        let values = vec![0.0f32; 56];
        let payload = quantize_bottleneck(&values, 16);
        assert_eq!(
            payload.size_bits(),
            56 * 16 + crate::wire::WIRE_HEADER_BITS + crate::wire::WIRE_TRAILER_BITS
        );
        assert_eq!(feedback_bits(56, 16), 896);
        // A 4-bit payload's codes really occupy 4 bits each on the wire.
        let narrow = quantize_bottleneck(&values, 4);
        assert_eq!(
            narrow.wire_bytes(),
            crate::wire::WIRE_HEADER_BYTES
                + (56 * 4usize).div_ceil(8)
                + crate::wire::WIRE_TRAILER_BYTES
        );
    }

    #[test]
    fn non_finite_inputs_do_not_poison_the_range() {
        // Regression: a single NaN/Inf used to drive min/max (and therefore
        // the scale) to NaN/Inf, collapsing every code to 0.
        let values = [1.0f32, f32::NAN, 3.0, f32::INFINITY, f32::NEG_INFINITY, 2.0];
        let payload = quantize_bottleneck(&values, 8);
        assert_eq!(payload.min, 1.0);
        assert_eq!(payload.max, 3.0);
        assert_eq!(payload.codes[1], 0, "NaN clamps to code 0");
        assert_eq!(payload.codes[3], 255, "+inf clamps to the top code");
        assert_eq!(payload.codes[4], 0, "-inf clamps to code 0");
        let rebuilt = dequantize_bottleneck(&payload);
        assert!(rebuilt.iter().all(|v| v.is_finite()));
        let bound = max_quantization_error(payload.min, payload.max, 8) + 1e-6;
        for &i in &[0usize, 2, 5] {
            assert!(
                (values[i] - rebuilt[i]).abs() <= bound,
                "finite value {i} must still round-trip within the bound"
            );
        }
    }

    #[test]
    fn extreme_finite_range_does_not_overflow() {
        // Regression: min = -2e38, max = 2e38 are each finite but their span
        // overflows f32 to infinity — the scale collapsed to 0 (every code 0)
        // and dequantization returned NaN for all values.
        let values = [-2.0e38f32, 0.0, 2.0e38];
        let payload = quantize_bottleneck(&values, 8);
        assert_eq!(payload.codes[0], 0);
        assert_eq!(payload.codes[2], 255);
        assert!(payload.codes[1] == 127 || payload.codes[1] == 128);
        let rebuilt = dequantize_bottleneck(&payload);
        assert!(
            rebuilt.iter().all(|v| v.is_finite()),
            "rebuilt: {rebuilt:?}"
        );
        assert!((rebuilt[0] - -2.0e38).abs() < 2.0e36);
        assert!((rebuilt[2] - 2.0e38).abs() < 2.0e36);
        assert!(max_quantization_error(payload.min, payload.max, 8).is_finite());
    }

    #[test]
    fn all_non_finite_inputs_fall_back_to_pinned_range() {
        let values = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let payload = quantize_bottleneck(&values, 8);
        assert_eq!((payload.min, payload.max), (0.0, 1.0));
        assert_eq!(payload.codes, vec![0, 255, 0]);
        assert!(dequantize_bottleneck(&payload)
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic]
    fn zero_bits_panics() {
        let _ = quantize_bottleneck(&[1.0], 0);
    }

    #[test]
    #[should_panic]
    fn too_many_bits_panics() {
        let _ = quantize_bottleneck(&[1.0], 17);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_bounded(values in proptest::collection::vec(-10.0f32..10.0, 1..64), bits in 2u8..16) {
            let payload = quantize_bottleneck(&values, bits);
            let rebuilt = dequantize_bottleneck(&payload);
            let bound = max_quantization_error(payload.min, payload.max, bits) + 1e-4;
            for (a, b) in values.iter().zip(rebuilt.iter()) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn prop_codes_fit_bit_width(values in proptest::collection::vec(-5.0f32..5.0, 1..32), bits in 1u8..16) {
            let payload = quantize_bottleneck(&values, bits);
            let max_code = (1u32 << bits) - 1;
            prop_assert!(payload.codes.iter().all(|&c| (c as u32) <= max_code));
        }
    }
}
