//! Quantization of the bottleneck activations for over-the-air transport.
//!
//! The head's output `V'` must be carried in a Wi-Fi management frame, so it is
//! quantized to a fixed number of bits per value. A per-payload uniform
//! quantizer with an explicit `[min, max]` range is used: the two range floats
//! are part of the payload, which is how the AP dequantizes without any shared
//! state. The paper's feedback-size analysis (Section IV-E2) counts 16 bits per
//! bottleneck value; the default here matches that, and the ablation benches
//! sweep the width.

use serde::{Deserialize, Serialize};

/// Default number of bits per bottleneck value (matches the paper's accounting
/// of 16 bits per feedback value).
pub const DEFAULT_BITS_PER_VALUE: u8 = 16;

/// A quantized bottleneck payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedFeedback {
    /// Number of bits used for each value (1..=16).
    pub bits_per_value: u8,
    /// Minimum of the quantization range.
    pub min: f32,
    /// Maximum of the quantization range.
    pub max: f32,
    /// The quantized codes (one per bottleneck value).
    pub codes: Vec<u16>,
}

impl QuantizedFeedback {
    /// Size of the payload in bits: the codes plus the 32-bit range fields.
    pub fn size_bits(&self) -> usize {
        self.codes.len() * self.bits_per_value as usize + 64
    }
}

/// Quantizes a bottleneck activation vector with `bits_per_value` bits per value.
///
/// # Panics
/// Panics if `bits_per_value` is zero or greater than 16.
pub fn quantize_bottleneck(values: &[f32], bits_per_value: u8) -> QuantizedFeedback {
    assert!(
        (1..=16).contains(&bits_per_value),
        "bits per value must be in 1..=16"
    );
    let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if values.is_empty() {
        min = 0.0;
        max = 0.0;
    }
    // Note `!(max > min)` rather than `max <= min`: it must also catch NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(max > min) {
        // Constant (or empty) payload: widen the range artificially so the
        // dequantizer reproduces the constant exactly.
        max = min + 1.0;
    }
    let levels = ((1u32 << bits_per_value) - 1) as f32;
    let scale = levels / (max - min);
    let codes = values
        .iter()
        .map(|&v| (((v - min) * scale).round().clamp(0.0, levels)) as u16)
        .collect();
    QuantizedFeedback {
        bits_per_value,
        min,
        max,
        codes,
    }
}

/// Dequantizes a payload back into bottleneck activations.
pub fn dequantize_bottleneck(payload: &QuantizedFeedback) -> Vec<f32> {
    let levels = ((1u32 << payload.bits_per_value) - 1) as f32;
    let step = (payload.max - payload.min) / levels;
    payload
        .codes
        .iter()
        .map(|&c| payload.min + c as f32 * step)
        .collect()
}

/// Worst-case quantization error for a payload spanning `[min, max]` with the
/// given bit width (half a step).
pub fn max_quantization_error(min: f32, max: f32, bits_per_value: u8) -> f32 {
    let levels = ((1u32 << bits_per_value) - 1) as f32;
    (max - min) / levels / 2.0
}

/// Feedback size in bits for a bottleneck of `bottleneck_dim` values at
/// `bits_per_value` bits each (excluding the small range header).
pub fn feedback_bits(bottleneck_dim: usize, bits_per_value: u8) -> usize {
    bottleneck_dim * bits_per_value as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_error_bounded() {
        let values: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.173).sin()).collect();
        for bits in [4u8, 8, 12, 16] {
            let payload = quantize_bottleneck(&values, bits);
            let rebuilt = dequantize_bottleneck(&payload);
            let bound = max_quantization_error(payload.min, payload.max, bits);
            for (a, b) in values.iter().zip(rebuilt.iter()) {
                assert!(
                    (a - b).abs() <= bound + 1e-6,
                    "bits={bits}: error {} exceeds bound {bound}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn more_bits_means_less_error() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32 * 0.31).cos()).collect();
        let err = |bits: u8| -> f32 {
            let rebuilt = dequantize_bottleneck(&quantize_bottleneck(&values, bits));
            values
                .iter()
                .zip(rebuilt.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max)
        };
        assert!(err(12) < err(6));
        assert!(err(6) < err(3));
    }

    #[test]
    fn constant_payload_is_exact() {
        let values = vec![0.25f32; 10];
        let rebuilt = dequantize_bottleneck(&quantize_bottleneck(&values, 8));
        for v in rebuilt {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let payload = quantize_bottleneck(&[], 8);
        assert!(dequantize_bottleneck(&payload).is_empty());
        assert_eq!(payload.size_bits(), 64);
    }

    #[test]
    fn size_accounting() {
        let values = vec![0.0f32; 56];
        let payload = quantize_bottleneck(&values, 16);
        assert_eq!(payload.size_bits(), 56 * 16 + 64);
        assert_eq!(feedback_bits(56, 16), 896);
    }

    #[test]
    #[should_panic]
    fn zero_bits_panics() {
        let _ = quantize_bottleneck(&[1.0], 0);
    }

    #[test]
    #[should_panic]
    fn too_many_bits_panics() {
        let _ = quantize_bottleneck(&[1.0], 17);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_bounded(values in proptest::collection::vec(-10.0f32..10.0, 1..64), bits in 2u8..16) {
            let payload = quantize_bottleneck(&values, bits);
            let rebuilt = dequantize_bottleneck(&payload);
            let bound = max_quantization_error(payload.min, payload.max, bits) + 1e-4;
            for (a, b) in values.iter().zip(rebuilt.iter()) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn prop_codes_fit_bit_width(values in proptest::collection::vec(-5.0f32..5.0, 1..32), bits in 1u8..16) {
            let payload = quantize_bottleneck(&values, bits);
            let max_code = (1u32 << bits) - 1;
            prop_assert!(payload.codes.iter().all(|&c| (c as u32) <= max_code));
        }
    }
}
