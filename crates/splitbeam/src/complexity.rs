//! Computational-complexity models and the 802.11 comparison ratios (Fig. 6).
//!
//! The paper states the complexity class of SplitBeam as `O(K Nt² Nr² S²)`:
//! the head model is a single dense layer from the CSI tensor (`Nt·Nr·S`
//! complex values) to the bottleneck (`K` times smaller), so its
//! multiply-accumulate count is `K · (Nt·Nr·S)²` — consistent with the MAC
//! numbers reported in Table II. The station-side cost of the 802.11 baseline
//! is the SVD plus Givens decomposition cost from `dot11_bfi::complexity`.

use crate::config::SplitBeamConfig;
use dot11_bfi::complexity::dot11_sta_flops;
use serde::{Deserialize, Serialize};

/// Analytical station-side multiply-accumulate count of the 3-layer SplitBeam
/// head: `K * (Nt * Nr * S)^2`, in complex-value convention (matching Table II).
pub fn splitbeam_head_macs_analytical(nt: usize, nr: usize, subcarriers: usize, k: f64) -> f64 {
    let input = (nt * nr * subcarriers) as f64;
    k * input * input
}

/// Station-side MACs of an actual configured model (identical to
/// [`splitbeam_head_macs_analytical`] for the default 3-layer architecture, but
/// also correct for the deeper Table II variants).
pub fn splitbeam_head_macs(config: &SplitBeamConfig) -> u64 {
    // The model's real-interleaved widths double both factors; divide by 4 to
    // express the count in the paper's complex-value convention.
    ((config.input_dim() as u64) * (config.bottleneck_dim() as u64)) / 4
}

/// The Fig. 6 quantity: SplitBeam station FLOPs as a percentage of the 802.11
/// station FLOPs for the same configuration.
pub fn comp_load_ratio_percent(nt: usize, nr: usize, subcarriers: usize, k: f64) -> f64 {
    100.0 * splitbeam_head_macs_analytical(nt, nr, subcarriers, k)
        / dot11_sta_flops(nt, nr, subcarriers) as f64
}

/// One row of the Fig. 6 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompLoadPoint {
    /// MIMO order (`Nt = Nr = n`).
    pub mimo_order: usize,
    /// Number of subcarriers.
    pub subcarriers: usize,
    /// Compression level `K`.
    pub k: f64,
    /// SplitBeam station MACs (complex convention).
    pub splitbeam_macs: f64,
    /// 802.11 station FLOPs.
    pub dot11_flops: u64,
    /// SplitBeam / 802.11 ratio in percent.
    pub ratio_percent: f64,
}

/// Computes the full Fig. 6 grid for the given MIMO orders, subcarrier counts
/// and compression levels.
pub fn comp_load_grid(
    mimo_orders: &[usize],
    subcarrier_counts: &[usize],
    compression_levels: &[f64],
) -> Vec<CompLoadPoint> {
    let mut out = Vec::new();
    for &n in mimo_orders {
        for &s in subcarrier_counts {
            for &k in compression_levels {
                let macs = splitbeam_head_macs_analytical(n, n, s, k);
                let flops = dot11_sta_flops(n, n, s);
                out.push(CompLoadPoint {
                    mimo_order: n,
                    subcarriers: s,
                    k,
                    splitbeam_macs: macs,
                    dot11_flops: flops,
                    ratio_percent: 100.0 * macs / flops as f64,
                });
            }
        }
    }
    out
}

/// Average computational saving (in percent of the 802.11 load) across a grid —
/// the "on average, SplitBeam improves computation by X%" number of Section IV-E1.
pub fn average_saving_percent(grid: &[CompLoadPoint]) -> f64 {
    if grid.is_empty() {
        return 0.0;
    }
    let mean_ratio: f64 =
        grid.iter().map(|p| p.ratio_percent.min(100.0)).sum::<f64>() / grid.len() as f64;
    100.0 - mean_ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompressionLevel, SplitBeamConfig};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    #[test]
    fn analytical_matches_actual_three_layer_model() {
        let config = SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        );
        let analytical = splitbeam_head_macs_analytical(2, 2, 56, 0.125);
        let actual = splitbeam_head_macs(&config) as f64;
        // 224 * 28 = 6272 complex MACs.
        assert!((analytical - 6272.0).abs() < 1.0);
        assert!((actual - 6272.0).abs() < 1.0);
    }

    #[test]
    fn ratio_decreases_with_compression() {
        let loose = comp_load_ratio_percent(3, 3, 114, 0.25);
        let tight = comp_load_ratio_percent(3, 3, 114, 1.0 / 32.0);
        assert!(tight < loose);
    }

    #[test]
    fn savings_grow_with_mimo_order_at_20mhz() {
        // More antennas -> Givens cost explodes -> SplitBeam relative cost drops.
        let r4 = comp_load_ratio_percent(4, 4, 56, 0.125);
        let r8 = comp_load_ratio_percent(8, 8, 56, 0.125);
        assert!(r8 < r4, "8x8 ratio {r8} should be below 4x4 ratio {r4}");
    }

    #[test]
    fn grid_has_expected_size_and_members() {
        let grid = comp_load_grid(&[4, 8], &[56, 114, 242], &[0.25, 0.125]);
        assert_eq!(grid.len(), 2 * 3 * 2);
        assert!(grid.iter().all(|p| p.ratio_percent > 0.0));
    }

    #[test]
    fn average_saving_is_substantial_at_20mhz() {
        let grid = comp_load_grid(&[4, 8], &[56], &[1.0 / 32.0, 1.0 / 16.0, 0.125, 0.25]);
        let saving = average_saving_percent(&grid);
        assert!(
            saving > 50.0,
            "average saving {saving}% should be substantial at 20 MHz"
        );
    }

    #[test]
    fn empty_grid_saving_zero() {
        assert_eq!(average_saving_percent(&[]), 0.0);
    }
}
