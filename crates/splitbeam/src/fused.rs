//! Fused dequantize→tail-inference kernel.
//!
//! The AP's per-round hot path used to be: dequantize every payload into a
//! fresh `Vec<f32>`, stack the vectors into a freshly allocated batch matrix,
//! then run the tail network layer by layer with intermediate matrices. This
//! module fuses the chain: payload codes are dequantized straight into one
//! arena-owned strip (a `batch x bottleneck` block that is reused round after
//! round — no per-payload heap `Vec`), the first tail layer runs as a single
//! panel-blocked GEMM over that strip with the bias + activation epilogue in
//! the same pass, and the remaining tail layers ping-pong between two
//! reusable matrices.
//!
//! **Exactness.** The dequantized strip is computed by
//! [`dequantize_bottleneck_into`] (bit-identical to the allocating
//! dequantizer), and the first layer runs through the very
//! [`neural::Matrix::matmul_bias_act_into_with`] kernel the unfused
//! per-payload path uses, whose per-element accumulation is independent of
//! the batch shape under every backend — so a fused batched reconstruction
//! is bit-identical to dequantize-then-reconstruct, payload by payload, for
//! both the scalar and the AVX2 backend. The batched-equals-serial property
//! of the serving layer therefore survives kernel dispatch unchanged.

use crate::model::SplitBeamModel;
use crate::quantization::{dequantize_bottleneck_into, QuantizedFeedback};
use crate::SplitBeamError;
use mimo_math::kernel::int8::Int8Kernel;
use mimo_math::kernel::{self, Kernel};
use neural::quant::{QuantScratch, QuantizedDense};
use neural::Matrix;

/// Which tail-weight representation the serving layer runs.
///
/// Parsed from `SPLITBEAM_TAIL_WEIGHTS`: `int8` selects the quantized path;
/// `f32`, unset, blank, and malformed values all select the f32 master
/// weights — the default stays bit-exact with the pre-quantization serving
/// output under both existing kernel backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TailWeights {
    /// The f32 master weights (the historical, bit-exact default).
    #[default]
    F32,
    /// Per-output-channel symmetric int8 weights via [`QuantizedTail`].
    Int8,
}

impl TailWeights {
    /// Resolves the knob from `SPLITBEAM_TAIL_WEIGHTS`.
    pub fn from_env() -> Self {
        match mimo_math::env::raw("SPLITBEAM_TAIL_WEIGHTS")
            .map(|v| v.to_ascii_lowercase())
            .as_deref()
        {
            Some("int8") => TailWeights::Int8,
            _ => TailWeights::F32,
        }
    }

    /// Stable lower-snake name used in reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            TailWeights::F32 => "f32",
            TailWeights::Int8 => "int8",
        }
    }
}

/// Reusable buffers for one fused batched tail reconstruction: the
/// one-payload dequantization strip, the two layer-output ping-pong
/// matrices, and the int8 activation/accumulator scratch. Hold one per
/// serving loop; after the first round at the largest batch size a
/// reconstruction performs no heap allocation.
#[derive(Debug, Clone)]
pub struct TailScratch {
    /// Dequantized bottleneck strip for the whole batch (`batch x bottleneck`).
    strip: Matrix,
    ping: Matrix,
    pong: Matrix,
    /// u7 activation codes + i32 accumulator for the quantized path.
    quant: QuantScratch,
}

impl TailScratch {
    /// Creates an empty scratch; buffers grow to their high-water marks on use.
    pub fn new() -> Self {
        Self {
            strip: Matrix::zeros(1, 1),
            ping: Matrix::zeros(1, 1),
            pong: Matrix::zeros(1, 1),
            quant: QuantScratch::new(),
        }
    }
}

impl Default for TailScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SplitBeamModel {
    /// **AP side, batched + fused**: reconstructs many quantized payloads with
    /// the dequantization fused into the first tail-layer GEMM, using the
    /// runtime-selected kernel backend. Returns the `batch x output_dim`
    /// matrix held by `scratch` (row `i` is payload `i`'s reconstruction).
    ///
    /// Results are bit-identical to
    /// [`SplitBeamModel::reconstruct_quantized`] applied per payload.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the batch is empty
    /// or a payload's code count differs from the bottleneck width.
    pub fn reconstruct_quantized_batch_into<'a>(
        &self,
        payloads: &[&QuantizedFeedback],
        scratch: &'a mut TailScratch,
    ) -> Result<&'a Matrix, SplitBeamError> {
        self.reconstruct_quantized_batch_iter_into(
            payloads.iter().copied(),
            payloads.len(),
            scratch,
            kernel::selected(),
        )
    }

    /// Iterator form of [`SplitBeamModel::reconstruct_quantized_batch_into`]
    /// with an explicit kernel backend — the allocation-free seam the serving
    /// layer drives (no payload-reference slice needs materializing) and the
    /// entry point the dispatch-parity tests pin.
    ///
    /// `batch` must equal the iterator's length.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the batch is empty,
    /// the iterator yields fewer than `batch` payloads, or a payload's code
    /// count differs from the bottleneck width.
    pub fn reconstruct_quantized_batch_iter_into<'a, 'p, I>(
        &self,
        payloads: I,
        batch: usize,
        scratch: &'a mut TailScratch,
        kern: Kernel,
    ) -> Result<&'a Matrix, SplitBeamError>
    where
        I: Iterator<Item = &'p QuantizedFeedback>,
    {
        let tail = self.tail();
        let dim = tail.input_dim();
        let layers = tail.layers();
        let first = &layers[0];
        fill_strip(&mut scratch.strip, payloads, batch, dim)?;

        // First layer: one blocked GEMM over the strip with the bias +
        // activation epilogue fused — the very kernel the unfused per-payload
        // path runs, so fused == unfused bit-for-bit under every backend.
        scratch.strip.matmul_bias_act_into_with(
            &first.weights,
            &first.bias,
            first.activation,
            &mut scratch.ping,
            kern,
        );

        // Remaining tail layers ping-pong between the two scratch matrices.
        let mut cur = &mut scratch.ping;
        let mut next = &mut scratch.pong;
        for layer in &layers[1..] {
            layer.infer_into_with(cur, next, kern);
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(cur)
    }
}

/// Dequantizes every payload straight into the arena strip (row `r` is
/// payload `r`'s bottleneck) — the only materialization of the batch, in
/// storage that is reused round after round. The f32 reconstruction path;
/// the int8 path maps codes directly via [`quantize_codes_u7`] under the
/// same batch-validation rules.
fn fill_strip<'p, I>(
    strip: &mut Matrix,
    payloads: I,
    batch: usize,
    dim: usize,
) -> Result<(), SplitBeamError>
where
    I: Iterator<Item = &'p QuantizedFeedback>,
{
    if batch == 0 {
        return Err(SplitBeamError::DimensionMismatch(
            "empty fused reconstruction batch".into(),
        ));
    }
    let mut payloads = payloads;
    strip.reshape_zeroed(batch, dim);
    let mut rows = 0usize;
    // Chunks drive the zip so it never consumes a payload beyond `batch`
    // (zip pulls from its first iterator before checking the second).
    for (strip_row, payload) in strip
        .as_mut_slice()
        .chunks_exact_mut(dim)
        .zip(&mut payloads)
    {
        if payload.codes.len() != dim {
            return Err(SplitBeamError::DimensionMismatch(format!(
                "payload carries {} codes, bottleneck width is {dim}",
                payload.codes.len()
            )));
        }
        dequantize_bottleneck_into(payload, strip_row);
        rows += 1;
    }
    if rows != batch || payloads.next().is_some() {
        return Err(SplitBeamError::DimensionMismatch(format!(
            "fused batch declared {batch} payloads, iterator yielded {}",
            if rows != batch {
                rows.to_string()
            } else {
                format!("more than {batch}")
            }
        )));
    }
    Ok(())
}

/// Maps one payload's wire codes straight to the first int8 layer's u7
/// activation codes, skipping the dequantize-to-f32 round trip.
///
/// The dequantized value of wire code `c` is `v(c) = (min + c * step) as f32`
/// — **exactly** the [`dequantize_bottleneck_into`] formula — and the u7
/// row quantization of `v` uses the exact
/// [`neural::quant::QuantizedDense`] formula
/// (`round_ties_even`, clamp to `0..=127`). Because `v` is affine in `c`,
/// the row's value range is attained at the integer code extremes, so one
/// cheap integer min/max scan replaces the f32 scan; and because at most
/// `2^bits` distinct codes exist, payloads at wire widths ≤ 8 bits go
/// through a ≤256-entry LUT (one formula evaluation per *distinct* code
/// instead of per element). Wider payloads evaluate per element. Both routes
/// compute the identical expression, so the resulting codes — and therefore
/// the reconstruction — are independent of the route taken.
///
/// Returns the `(scale, min)` row parameters for
/// [`QuantizedDense::matmul_bias_act_from_rows`]; `dst` must hold exactly
/// `payload.codes.len()` bytes.
fn quantize_codes_u7(payload: &QuantizedFeedback, dst: &mut [u8]) -> (f32, f32) {
    let levels = f64::from((1u32 << payload.bits_per_value) - 1);
    let step = (f64::from(payload.max) - f64::from(payload.min)) / levels;
    let base = f64::from(payload.min);
    let value = |c: u16| (base + f64::from(c) * step) as f32;
    let (mut cmin, mut cmax) = (u16::MAX, u16::MIN);
    for &c in &payload.codes {
        cmin = cmin.min(c);
        cmax = cmax.max(c);
    }
    // `v` is affine in `c`, so the extreme values sit at the extreme codes
    // whichever sign `step` has (a corrupt payload may carry max < min).
    let va = value(cmin);
    let vb = value(cmax);
    let lo = va.min(vb);
    let hi = va.max(vb);
    let scale = (hi - lo) / 127.0;
    // `scale > 0.0` is false for a constant payload (scale == 0), a
    // degenerate/non-finite range, or NaN — every element is the zero point
    // `lo`, codes all zero. Deliberately not `scale <= 0.0`: that would let
    // NaN through.
    let positive = scale > 0.0;
    if !positive {
        dst.fill(0);
        return (0.0, lo);
    }
    let inv = 1.0 / scale;
    let q = |c: u16| ((value(c) - lo) * inv).round_ties_even().clamp(0.0, 127.0) as u8;
    if payload.bits_per_value <= 8 {
        let mut lut = [0u8; 256];
        for (c, e) in lut.iter_mut().enumerate().take(cmax as usize + 1) {
            *e = q(c as u16);
        }
        for (d, &c) in dst.iter_mut().zip(&payload.codes) {
            *d = lut[c as usize];
        }
    } else {
        for (d, &c) in dst.iter_mut().zip(&payload.codes) {
            *d = q(c);
        }
    }
    (scale, lo)
}

/// A model's tail network with every layer's weights quantized to
/// per-output-channel symmetric int8 ([`neural::quant::QuantizedDense`]),
/// bound **once** from the f32 master model. The master model is never
/// modified — servers hold a `QuantizedTail` *next to* each registered
/// [`SplitBeamModel`] and pick a path per round via [`TailWeights`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTail {
    layers: Vec<QuantizedDense>,
    bottleneck: usize,
    output_dim: usize,
}

impl QuantizedTail {
    /// Quantizes and packs every tail layer of `model` (the one-time
    /// bind-time cost; the serving hot path only streams the packed bytes).
    pub fn bind(model: &SplitBeamModel) -> Self {
        let layers: Vec<QuantizedDense> = model
            .tail()
            .layers()
            .iter()
            .map(QuantizedDense::quantize)
            .collect();
        let output_dim = layers.last().map(QuantizedDense::output_dim).unwrap_or(0);
        Self {
            layers,
            bottleneck: model.bottleneck_dim(),
            output_dim,
        }
    }

    /// The bottleneck width payloads must carry.
    pub fn bottleneck_dim(&self) -> usize {
        self.bottleneck
    }

    /// The reconstruction width (rows of the output matrix).
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Total quantized weight bytes streamed per batch across all layers —
    /// ~4x smaller than the f32 master tail.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(QuantizedDense::weight_bytes).sum()
    }

    /// **AP side, batched + fused, int8**: the quantized counterpart of
    /// [`SplitBeamModel::reconstruct_quantized_batch_iter_into`] — same batch
    /// validation, but the wire codes are mapped **directly** to the first
    /// layer's u7 activation codes (a per-payload LUT, see
    /// [`quantize_codes_u7`]) with no dequantize-to-f32 strip in between, and
    /// every layer runs the integer GEMM tier on `kernel` with the shared
    /// epilogue.
    ///
    /// Outputs are bit-identical across integer backends and batch shapes
    /// (exact i32 accumulation), so batched, serial, sharded and streaming
    /// serving agree under the int8 path exactly as they do under f32.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] under the same
    /// conditions as the f32 path.
    pub fn reconstruct_quantized_batch_iter_into<'a, 'p, I>(
        &self,
        payloads: I,
        batch: usize,
        scratch: &'a mut TailScratch,
        kernel: Int8Kernel,
    ) -> Result<&'a Matrix, SplitBeamError>
    where
        I: Iterator<Item = &'p QuantizedFeedback>,
    {
        if batch == 0 {
            return Err(SplitBeamError::DimensionMismatch(
                "empty fused reconstruction batch".into(),
            ));
        }
        let (first, rest) = self
            .layers
            .split_first()
            .expect("a bound tail always has at least one layer");
        // The row filler consumes the iterator directly — payloads are
        // validated and code-mapped row by row with no intermediate
        // collection, keeping the serving hot path allocation-free.
        let mut payloads = payloads;
        first.try_matmul_bias_act_from_rows(
            batch,
            |r, dst| {
                let payload = payloads.next().ok_or_else(|| {
                    SplitBeamError::DimensionMismatch(format!(
                        "fused batch declared {batch} payloads, iterator yielded {r}"
                    ))
                })?;
                if payload.codes.len() != self.bottleneck {
                    return Err(SplitBeamError::DimensionMismatch(format!(
                        "payload carries {} codes, bottleneck width is {}",
                        payload.codes.len(),
                        self.bottleneck
                    )));
                }
                Ok(quantize_codes_u7(payload, dst))
            },
            &mut scratch.quant,
            &mut scratch.ping,
            kernel,
        )?;
        if payloads.next().is_some() {
            return Err(SplitBeamError::DimensionMismatch(format!(
                "fused batch declared {batch} payloads, iterator yielded more than {batch}"
            )));
        }
        let mut cur = &mut scratch.ping;
        let mut next = &mut scratch.pong;
        for layer in rest {
            layer.matmul_bias_act_into(cur, &mut scratch.quant, next, kernel);
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(cur)
    }

    /// Serial reference: reconstructs one payload through the quantized tail
    /// (allocating its own scratch — the station-at-a-time verification path,
    /// not the hot path). Bit-identical to a batch-of-one fused call.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the payload's code
    /// count differs from the bottleneck width.
    pub fn reconstruct_quantized(
        &self,
        payload: &QuantizedFeedback,
        kernel: Int8Kernel,
    ) -> Result<Vec<f32>, SplitBeamError> {
        let mut scratch = TailScratch::new();
        let out = self.reconstruct_quantized_batch_iter_into(
            std::iter::once(payload),
            1,
            &mut scratch,
            kernel,
        )?;
        Ok(out.as_slice().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompressionLevel, SplitBeamConfig};
    use crate::quantization::{dequantize_bottleneck, quantize_bottleneck};
    use mimo_math::kernel::avx2_fma_available;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn model(seed: u64, deeper: bool) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut config = SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        );
        if deeper {
            config = config.with_extra_tail_layer();
        }
        SplitBeamModel::new(config, &mut rng)
    }

    fn payloads_for(model: &SplitBeamModel, count: usize, bits: u8) -> Vec<QuantizedFeedback> {
        let dim = model.bottleneck_dim();
        (0..count)
            .map(|i| {
                let values: Vec<f32> = (0..dim)
                    .map(|j| ((i * dim + j) as f32 * 0.173).sin() * 0.4)
                    .collect();
                quantize_bottleneck(&values, bits)
            })
            .collect()
    }

    fn kernels() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar];
        if avx2_fma_available() {
            ks.push(Kernel::Avx2Fma);
        }
        ks
    }

    /// Reference: dequantize then run the tail per payload with the same
    /// explicit kernel.
    fn unfused(model: &SplitBeamModel, payload: &QuantizedFeedback, kern: Kernel) -> Vec<f32> {
        let bottleneck = dequantize_bottleneck(payload);
        let mut x = Matrix::row_vector(&bottleneck);
        let mut out = Matrix::zeros(1, 1);
        for layer in model.tail().layers() {
            layer.infer_into_with(&x, &mut out, kern);
            std::mem::swap(&mut x, &mut out);
        }
        x.as_slice().to_vec()
    }

    #[test]
    fn fused_matches_dequantize_then_matmul_bitwise_per_kernel() {
        for deeper in [false, true] {
            let m = model(11, deeper);
            let payloads = payloads_for(&m, 5, 6);
            let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
            for kern in kernels() {
                let mut scratch = TailScratch::new();
                let out = m
                    .reconstruct_quantized_batch_iter_into(
                        refs.iter().copied(),
                        refs.len(),
                        &mut scratch,
                        kern,
                    )
                    .unwrap();
                assert_eq!(out.rows(), 5);
                for (i, payload) in payloads.iter().enumerate() {
                    let want = unfused(&m, payload, kern);
                    let got = &out.as_slice()[i * out.cols()..(i + 1) * out.cols()];
                    assert_eq!(got, &want[..], "kern {kern:?} deeper={deeper} row {i}");
                }
            }
        }
    }

    #[test]
    fn fused_dispatch_matches_public_reconstruct_quantized() {
        // The dispatched entry point must agree bit-for-bit with the
        // single-payload public path (which dispatches the same backend).
        let m = model(13, false);
        let payloads = payloads_for(&m, 3, 12);
        let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
        let mut scratch = TailScratch::new();
        let out = m
            .reconstruct_quantized_batch_into(&refs, &mut scratch)
            .unwrap();
        for (i, payload) in payloads.iter().enumerate() {
            let want = m.reconstruct_quantized(payload).unwrap();
            let got = &out.as_slice()[i * out.cols()..(i + 1) * out.cols()];
            assert_eq!(got, &want[..], "row {i}");
        }
    }

    #[test]
    fn fused_batch_validation() {
        let m = model(17, false);
        let mut scratch = TailScratch::new();
        assert!(matches!(
            m.reconstruct_quantized_batch_into(&[], &mut scratch),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        let short = quantize_bottleneck(&[0.5; 3], 8);
        assert!(matches!(
            m.reconstruct_quantized_batch_into(&[&short], &mut scratch),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        // A declared batch smaller or larger than the iterator is an error,
        // never a silent truncation.
        let payloads = payloads_for(&m, 3, 8);
        for declared in [2usize, 5] {
            assert!(
                matches!(
                    m.reconstruct_quantized_batch_iter_into(
                        payloads.iter(),
                        declared,
                        &mut scratch,
                        Kernel::Scalar,
                    ),
                    Err(SplitBeamError::DimensionMismatch(_))
                ),
                "declared {declared} vs 3 yielded must error"
            );
        }
    }

    #[test]
    fn scratch_is_reused_across_rounds() {
        let m = model(19, false);
        let payloads = payloads_for(&m, 4, 8);
        let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
        let mut scratch = TailScratch::new();
        m.reconstruct_quantized_batch_into(&refs, &mut scratch)
            .unwrap();
        let strip_ptr = scratch.strip.as_slice().as_ptr();
        let ping_ptr = scratch.ping.as_slice().as_ptr();
        m.reconstruct_quantized_batch_into(&refs, &mut scratch)
            .unwrap();
        assert_eq!(
            scratch.strip.as_slice().as_ptr(),
            strip_ptr,
            "strip must be reused"
        );
        assert_eq!(
            scratch.ping.as_slice().as_ptr(),
            ping_ptr,
            "layer buffer must be reused"
        );
    }

    fn int8_backends() -> Vec<Int8Kernel> {
        use mimo_math::kernel::int8;
        let mut ks = vec![Int8Kernel::Scalar];
        if int8::avx2_available() {
            ks.push(Int8Kernel::Avx2Maddubs);
        }
        if int8::avx512_vnni_available() {
            ks.push(Int8Kernel::Avx512Vnni);
        }
        ks
    }

    #[test]
    fn tail_weights_knob_parses_defensively() {
        assert_eq!(TailWeights::default(), TailWeights::F32);
        assert_eq!(TailWeights::F32.name(), "f32");
        assert_eq!(TailWeights::Int8.name(), "int8");
        std::env::set_var("SPLITBEAM_TAIL_WEIGHTS", " INT8 ");
        assert_eq!(TailWeights::from_env(), TailWeights::Int8);
        // f32, typos, and blank all fall back to the bit-exact default.
        for v in ["f32", "int9", "quantized", ""] {
            std::env::set_var("SPLITBEAM_TAIL_WEIGHTS", v);
            assert_eq!(TailWeights::from_env(), TailWeights::F32, "value {v:?}");
        }
        std::env::remove_var("SPLITBEAM_TAIL_WEIGHTS");
        assert_eq!(TailWeights::from_env(), TailWeights::F32);
    }

    #[test]
    fn quantized_tail_tracks_the_f32_tail() {
        // Accuracy sanity at one point: int8-weight reconstruction stays
        // close to the f32 reconstruction of the same payload.
        let m = model(41, true);
        let tail = QuantizedTail::bind(&m);
        assert_eq!(tail.bottleneck_dim(), m.bottleneck_dim());
        assert!(tail.weight_bytes() > 0);
        let payloads = payloads_for(&m, 4, 10);
        let mut scratch = TailScratch::new();
        let out = tail
            .reconstruct_quantized_batch_iter_into(
                payloads.iter(),
                payloads.len(),
                &mut scratch,
                Int8Kernel::Scalar,
            )
            .unwrap();
        assert_eq!(out.cols(), tail.output_dim());
        for (i, payload) in payloads.iter().enumerate() {
            let want = m.reconstruct_quantized(payload).unwrap();
            let got = &out.as_slice()[i * out.cols()..(i + 1) * out.cols()];
            let err: f32 = got
                .iter()
                .zip(want.iter())
                .map(|(g, w)| (g - w).abs())
                .fold(0.0, f32::max);
            assert!(err < 0.05, "payload {i}: max abs int8-vs-f32 error {err}");
        }
    }

    #[test]
    fn quantized_batch_validation_matches_f32_path() {
        let m = model(43, false);
        let tail = QuantizedTail::bind(&m);
        let mut scratch = TailScratch::new();
        assert!(matches!(
            tail.reconstruct_quantized_batch_iter_into(
                std::iter::empty(),
                0,
                &mut scratch,
                Int8Kernel::Scalar
            ),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        let short = quantize_bottleneck(&[0.5; 3], 8);
        assert!(matches!(
            tail.reconstruct_quantized(&short, Int8Kernel::Scalar),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Fused == dequantize-then-matmul across quantizer widths 1..=16 and
        /// batch sizes, for every available kernel backend.
        #[test]
        fn prop_fused_parity_across_widths(bits in 1u8..=16, batch in 1usize..6, seed in 0u64..100) {
            let m = model(seed.wrapping_add(29), seed % 2 == 0);
            let payloads = payloads_for(&m, batch, bits);
            let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
            for kern in kernels() {
                let mut scratch = TailScratch::new();
                let out = m.reconstruct_quantized_batch_iter_into(
                    refs.iter().copied(), batch, &mut scratch, kern,
                ).unwrap();
                for (i, payload) in payloads.iter().enumerate() {
                    let want = unfused(&m, payload, kern);
                    let got = &out.as_slice()[i * out.cols()..(i + 1) * out.cols()];
                    prop_assert_eq!(got, &want[..]);
                }
            }
        }

        /// Int8-weight reconstruction matches the scalar int8 reference
        /// bit-exactly across every available integer backend, quantizer
        /// widths 1..=16, batch sizes and tail depths — and is independent of
        /// batch shape (batch-of-N equals N batches-of-one).
        #[test]
        fn prop_int8_reconstruction_bit_exact_across_backends(
            bits in 1u8..=16, batch in 1usize..6, seed in 0u64..100,
        ) {
            let m = model(seed.wrapping_add(57), seed % 2 == 1);
            let tail = QuantizedTail::bind(&m);
            let payloads = payloads_for(&m, batch, bits);
            let mut scratch = TailScratch::new();
            let want: Vec<u32> = tail
                .reconstruct_quantized_batch_iter_into(
                    payloads.iter(), batch, &mut scratch, Int8Kernel::Scalar,
                )
                .unwrap()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            for backend in int8_backends() {
                let got: Vec<u32> = tail
                    .reconstruct_quantized_batch_iter_into(
                        payloads.iter(), batch, &mut scratch, backend,
                    )
                    .unwrap()
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                prop_assert_eq!(&got, &want, "backend {:?}", backend);
                // Serial (batch-of-one) reference agrees bitwise too.
                let n = want.len() / batch;
                for (i, payload) in payloads.iter().enumerate() {
                    let row: Vec<u32> = tail
                        .reconstruct_quantized(payload, backend)
                        .unwrap()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    prop_assert_eq!(&row[..], &want[i * n..(i + 1) * n], "row {}", i);
                }
            }
        }
    }
}
