//! Fused dequantize→tail-inference kernel.
//!
//! The AP's per-round hot path used to be: dequantize every payload into a
//! fresh `Vec<f32>`, stack the vectors into a freshly allocated batch matrix,
//! then run the tail network layer by layer with intermediate matrices. This
//! module fuses the chain: payload codes are dequantized straight into one
//! arena-owned strip (a `batch x bottleneck` block that is reused round after
//! round — no per-payload heap `Vec`), the first tail layer runs as a single
//! panel-blocked GEMM over that strip with the bias + activation epilogue in
//! the same pass, and the remaining tail layers ping-pong between two
//! reusable matrices.
//!
//! **Exactness.** The dequantized strip is computed by
//! [`dequantize_bottleneck_into`] (bit-identical to the allocating
//! dequantizer), and the first layer runs through the very
//! [`neural::Matrix::matmul_bias_act_into_with`] kernel the unfused
//! per-payload path uses, whose per-element accumulation is independent of
//! the batch shape under every backend — so a fused batched reconstruction
//! is bit-identical to dequantize-then-reconstruct, payload by payload, for
//! both the scalar and the AVX2 backend. The batched-equals-serial property
//! of the serving layer therefore survives kernel dispatch unchanged.

use crate::model::SplitBeamModel;
use crate::quantization::{dequantize_bottleneck_into, QuantizedFeedback};
use crate::SplitBeamError;
use mimo_math::kernel::{self, Kernel};
use neural::Matrix;

/// Reusable buffers for one fused batched tail reconstruction: the
/// one-payload dequantization strip and the two layer-output ping-pong
/// matrices. Hold one per serving loop; after the first round at the largest
/// batch size a reconstruction performs no heap allocation.
#[derive(Debug, Clone)]
pub struct TailScratch {
    /// Dequantized bottleneck strip for the whole batch (`batch x bottleneck`).
    strip: Matrix,
    ping: Matrix,
    pong: Matrix,
}

impl TailScratch {
    /// Creates an empty scratch; buffers grow to their high-water marks on use.
    pub fn new() -> Self {
        Self {
            strip: Matrix::zeros(1, 1),
            ping: Matrix::zeros(1, 1),
            pong: Matrix::zeros(1, 1),
        }
    }
}

impl Default for TailScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SplitBeamModel {
    /// **AP side, batched + fused**: reconstructs many quantized payloads with
    /// the dequantization fused into the first tail-layer GEMM, using the
    /// runtime-selected kernel backend. Returns the `batch x output_dim`
    /// matrix held by `scratch` (row `i` is payload `i`'s reconstruction).
    ///
    /// Results are bit-identical to
    /// [`SplitBeamModel::reconstruct_quantized`] applied per payload.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the batch is empty
    /// or a payload's code count differs from the bottleneck width.
    pub fn reconstruct_quantized_batch_into<'a>(
        &self,
        payloads: &[&QuantizedFeedback],
        scratch: &'a mut TailScratch,
    ) -> Result<&'a Matrix, SplitBeamError> {
        self.reconstruct_quantized_batch_iter_into(
            payloads.iter().copied(),
            payloads.len(),
            scratch,
            kernel::selected(),
        )
    }

    /// Iterator form of [`SplitBeamModel::reconstruct_quantized_batch_into`]
    /// with an explicit kernel backend — the allocation-free seam the serving
    /// layer drives (no payload-reference slice needs materializing) and the
    /// entry point the dispatch-parity tests pin.
    ///
    /// `batch` must equal the iterator's length.
    ///
    /// # Errors
    /// Returns [`SplitBeamError::DimensionMismatch`] when the batch is empty,
    /// the iterator yields fewer than `batch` payloads, or a payload's code
    /// count differs from the bottleneck width.
    pub fn reconstruct_quantized_batch_iter_into<'a, 'p, I>(
        &self,
        payloads: I,
        batch: usize,
        scratch: &'a mut TailScratch,
        kern: Kernel,
    ) -> Result<&'a Matrix, SplitBeamError>
    where
        I: Iterator<Item = &'p QuantizedFeedback>,
    {
        if batch == 0 {
            return Err(SplitBeamError::DimensionMismatch(
                "empty fused reconstruction batch".into(),
            ));
        }
        let tail = self.tail();
        let dim = tail.input_dim();
        let layers = tail.layers();
        let first = &layers[0];

        // Dequantize every payload straight into the arena strip (row r is
        // payload r's bottleneck) — the only materialization of the batch,
        // in storage that is reused round after round.
        let mut payloads = payloads;
        scratch.strip.reshape_zeroed(batch, dim);
        let mut rows = 0usize;
        // Chunks drive the zip so it never consumes a payload beyond `batch`
        // (zip pulls from its first iterator before checking the second).
        for (strip_row, payload) in scratch
            .strip
            .as_mut_slice()
            .chunks_exact_mut(dim)
            .zip(&mut payloads)
        {
            if payload.codes.len() != dim {
                return Err(SplitBeamError::DimensionMismatch(format!(
                    "payload carries {} codes, bottleneck width is {dim}",
                    payload.codes.len()
                )));
            }
            dequantize_bottleneck_into(payload, strip_row);
            rows += 1;
        }
        if rows != batch || payloads.next().is_some() {
            return Err(SplitBeamError::DimensionMismatch(format!(
                "fused batch declared {batch} payloads, iterator yielded {}",
                if rows != batch {
                    rows.to_string()
                } else {
                    format!("more than {batch}")
                }
            )));
        }

        // First layer: one blocked GEMM over the strip with the bias +
        // activation epilogue fused — the very kernel the unfused per-payload
        // path runs, so fused == unfused bit-for-bit under every backend.
        scratch.strip.matmul_bias_act_into_with(
            &first.weights,
            &first.bias,
            first.activation,
            &mut scratch.ping,
            kern,
        );

        // Remaining tail layers ping-pong between the two scratch matrices.
        let mut cur = &mut scratch.ping;
        let mut next = &mut scratch.pong;
        for layer in &layers[1..] {
            layer.infer_into_with(cur, next, kern);
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompressionLevel, SplitBeamConfig};
    use crate::quantization::{dequantize_bottleneck, quantize_bottleneck};
    use mimo_math::kernel::avx2_fma_available;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn model(seed: u64, deeper: bool) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut config = SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        );
        if deeper {
            config = config.with_extra_tail_layer();
        }
        SplitBeamModel::new(config, &mut rng)
    }

    fn payloads_for(model: &SplitBeamModel, count: usize, bits: u8) -> Vec<QuantizedFeedback> {
        let dim = model.bottleneck_dim();
        (0..count)
            .map(|i| {
                let values: Vec<f32> = (0..dim)
                    .map(|j| ((i * dim + j) as f32 * 0.173).sin() * 0.4)
                    .collect();
                quantize_bottleneck(&values, bits)
            })
            .collect()
    }

    fn kernels() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar];
        if avx2_fma_available() {
            ks.push(Kernel::Avx2Fma);
        }
        ks
    }

    /// Reference: dequantize then run the tail per payload with the same
    /// explicit kernel.
    fn unfused(model: &SplitBeamModel, payload: &QuantizedFeedback, kern: Kernel) -> Vec<f32> {
        let bottleneck = dequantize_bottleneck(payload);
        let mut x = Matrix::row_vector(&bottleneck);
        let mut out = Matrix::zeros(1, 1);
        for layer in model.tail().layers() {
            layer.infer_into_with(&x, &mut out, kern);
            std::mem::swap(&mut x, &mut out);
        }
        x.as_slice().to_vec()
    }

    #[test]
    fn fused_matches_dequantize_then_matmul_bitwise_per_kernel() {
        for deeper in [false, true] {
            let m = model(11, deeper);
            let payloads = payloads_for(&m, 5, 6);
            let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
            for kern in kernels() {
                let mut scratch = TailScratch::new();
                let out = m
                    .reconstruct_quantized_batch_iter_into(
                        refs.iter().copied(),
                        refs.len(),
                        &mut scratch,
                        kern,
                    )
                    .unwrap();
                assert_eq!(out.rows(), 5);
                for (i, payload) in payloads.iter().enumerate() {
                    let want = unfused(&m, payload, kern);
                    let got = &out.as_slice()[i * out.cols()..(i + 1) * out.cols()];
                    assert_eq!(got, &want[..], "kern {kern:?} deeper={deeper} row {i}");
                }
            }
        }
    }

    #[test]
    fn fused_dispatch_matches_public_reconstruct_quantized() {
        // The dispatched entry point must agree bit-for-bit with the
        // single-payload public path (which dispatches the same backend).
        let m = model(13, false);
        let payloads = payloads_for(&m, 3, 12);
        let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
        let mut scratch = TailScratch::new();
        let out = m
            .reconstruct_quantized_batch_into(&refs, &mut scratch)
            .unwrap();
        for (i, payload) in payloads.iter().enumerate() {
            let want = m.reconstruct_quantized(payload).unwrap();
            let got = &out.as_slice()[i * out.cols()..(i + 1) * out.cols()];
            assert_eq!(got, &want[..], "row {i}");
        }
    }

    #[test]
    fn fused_batch_validation() {
        let m = model(17, false);
        let mut scratch = TailScratch::new();
        assert!(matches!(
            m.reconstruct_quantized_batch_into(&[], &mut scratch),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        let short = quantize_bottleneck(&[0.5; 3], 8);
        assert!(matches!(
            m.reconstruct_quantized_batch_into(&[&short], &mut scratch),
            Err(SplitBeamError::DimensionMismatch(_))
        ));
        // A declared batch smaller or larger than the iterator is an error,
        // never a silent truncation.
        let payloads = payloads_for(&m, 3, 8);
        for declared in [2usize, 5] {
            assert!(
                matches!(
                    m.reconstruct_quantized_batch_iter_into(
                        payloads.iter(),
                        declared,
                        &mut scratch,
                        Kernel::Scalar,
                    ),
                    Err(SplitBeamError::DimensionMismatch(_))
                ),
                "declared {declared} vs 3 yielded must error"
            );
        }
    }

    #[test]
    fn scratch_is_reused_across_rounds() {
        let m = model(19, false);
        let payloads = payloads_for(&m, 4, 8);
        let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
        let mut scratch = TailScratch::new();
        m.reconstruct_quantized_batch_into(&refs, &mut scratch)
            .unwrap();
        let strip_ptr = scratch.strip.as_slice().as_ptr();
        let ping_ptr = scratch.ping.as_slice().as_ptr();
        m.reconstruct_quantized_batch_into(&refs, &mut scratch)
            .unwrap();
        assert_eq!(
            scratch.strip.as_slice().as_ptr(),
            strip_ptr,
            "strip must be reused"
        );
        assert_eq!(
            scratch.ping.as_slice().as_ptr(),
            ping_ptr,
            "layer buffer must be reused"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Fused == dequantize-then-matmul across quantizer widths 1..=16 and
        /// batch sizes, for every available kernel backend.
        #[test]
        fn prop_fused_parity_across_widths(bits in 1u8..=16, batch in 1usize..6, seed in 0u64..100) {
            let m = model(seed.wrapping_add(29), seed % 2 == 0);
            let payloads = payloads_for(&m, batch, bits);
            let refs: Vec<&QuantizedFeedback> = payloads.iter().collect();
            for kern in kernels() {
                let mut scratch = TailScratch::new();
                let out = m.reconstruct_quantized_batch_iter_into(
                    refs.iter().copied(), batch, &mut scratch, kern,
                ).unwrap();
                for (i, payload) in payloads.iter().enumerate() {
                    let want = unfused(&m, payload, kern);
                    let got = &out.as_slice()[i * out.cols()..(i + 1) * out.cols()];
                    prop_assert_eq!(got, &want[..]);
                }
            }
        }
    }
}
