//! SplitBeam: split-computing beamforming feedback for Wi-Fi MU-MIMO.
//!
//! This crate is the reproduction of the paper's primary contribution. A single
//! task-specific DNN maps the station's estimated CSI tensor `H` directly to
//! the beamforming feedback `V`. A deliberately narrow **bottleneck** layer
//! splits the DNN into a **head** (run by the station) and a **tail** (run by
//! the access point): the head's output is the compressed feedback transmitted
//! over the air, `K < 1` times smaller than the CSI, and the tail reconstructs
//! `V̂` at the AP.
//!
//! Modules:
//!
//! * [`config`] — compression levels and model architecture derivation,
//! * [`model`] — the split head/tail model, inference and feedback round trip,
//! * [`quantization`] — fixed-point quantization of the bottleneck activations
//!   for over-the-air transport,
//! * [`fused`] — the fused dequantize→tail kernel and its reusable
//!   [`TailScratch`] buffers (the AP serving layer's batched hot path),
//! * [`wire`] — the bit-packed wire format carrying a quantized payload at its
//!   true per-code width (shares `dot11-bfi`'s packing primitives),
//! * [`training`] — the supervised H → V training procedure of Section IV-D,
//! * [`bop`] — the Bottleneck Optimization Problem (Eq. 7) and the heuristic
//!   solver of Section IV-C,
//! * [`complexity`] — FLOP models and the 802.11 comparison ratios (Fig. 6),
//! * [`airtime`] — feedback-size models and ratios (Fig. 7).
//!
//! # Example: train a tiny SplitBeam model and run the feedback round trip
//!
//! ```
//! use splitbeam::config::{CompressionLevel, SplitBeamConfig};
//! use splitbeam::model::SplitBeamModel;
//! use splitbeam::training::{TrainingData, train_model, TrainingOptions};
//! use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
//! use wifi_phy::ofdm::{Bandwidth, MimoConfig};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mimo = MimoConfig::symmetric(2, Bandwidth::Mhz20);
//! let config = SplitBeamConfig::new(mimo, CompressionLevel::OneEighth);
//!
//! // Build a very small training set straight from the channel simulator.
//! let model_channel = ChannelModel::from_config(EnvironmentProfile::e1(), &mimo);
//! let mut data = TrainingData::new(config.clone());
//! for _ in 0..24 {
//!     let snap = model_channel.sample(&mut rng);
//!     data.push_snapshot(&snap);
//! }
//! let (train, val) = data.split(0.75);
//! let options = TrainingOptions { epochs: 3, ..TrainingOptions::default() };
//! let (model, _history) = train_model(&config, &train, &val, &options, &mut rng);
//!
//! // Online use: station compresses, AP reconstructs.
//! let snap = model_channel.sample(&mut rng);
//! let feedback = model.feedback_for_user(&snap, 0).unwrap();
//! assert_eq!(feedback.len(), 56);
//! assert_eq!(feedback[0].shape(), (2, 1));
//! # let _ = model;
//! ```

pub mod airtime;
pub mod bop;
pub mod complexity;
pub mod config;
pub mod fused;
pub mod model;
pub mod quantization;
pub mod training;
pub mod wire;

pub use config::{CompressionLevel, SplitBeamConfig};
pub use fused::{QuantizedTail, TailScratch, TailWeights};
pub use model::SplitBeamModel;

/// Errors produced by the SplitBeam pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitBeamError {
    /// Input dimensions do not match the model's configuration.
    DimensionMismatch(String),
    /// The heuristic BOP search exhausted every candidate without satisfying
    /// the constraints.
    ConstraintsUnsatisfiable(String),
    /// A wire frame failed its CRC-32 integrity check: the bytes were damaged
    /// in flight and must not be decoded into plausible garbage.
    CorruptFrame(String),
}

impl std::fmt::Display for SplitBeamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitBeamError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            SplitBeamError::ConstraintsUnsatisfiable(msg) => {
                write!(
                    f,
                    "bottleneck optimization constraints unsatisfiable: {msg}"
                )
            }
            SplitBeamError::CorruptFrame(msg) => write!(f, "corrupt wire frame: {msg}"),
        }
    }
}

impl std::error::Error for SplitBeamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(
            format!("{}", SplitBeamError::DimensionMismatch("448 vs 224".into())).contains("448")
        );
        assert!(
            format!("{}", SplitBeamError::ConstraintsUnsatisfiable("BER".into())).contains("BER")
        );
        assert!(format!("{}", SplitBeamError::CorruptFrame("CRC".into())).contains("corrupt"));
    }
}
