//! Feedback-size models and the 802.11 comparison ratios (Fig. 7).
//!
//! SplitBeam's feedback is the quantized bottleneck: `|B| * bits_per_value`
//! bits, where `|B| = K * Nt * Nr * S` (complex convention). Its compression
//! rate is therefore the constant `K`, independent of how the 802.11 feedback
//! grows with antennas and bandwidth — the paper's key airtime argument.

use crate::config::SplitBeamConfig;
use crate::quantization::DEFAULT_BITS_PER_VALUE;
use dot11_bfi::feedback::paper_report_bits;
use serde::{Deserialize, Serialize};
use wifi_phy::sounding::{feedback_frame_airtime_s, sounding_round_airtime, SoundingConfig};

/// SplitBeam feedback size in bits for an `nt x nr` configuration with `s`
/// subcarriers at compression `k`, counting `bits_per_value` bits per
/// (complex) bottleneck value.
///
/// The complex value count is derived exactly the way a configured model
/// derives it: round the *real-interleaved* bottleneck width
/// `2 * nt * nr * s * k` first, then halve — not the other way around. The
/// two orders disagree whenever the rounded real width is odd (e.g.
/// `3x3 x 242` at `K = 1/32` rounds to 136 real values = 68 complex, while
/// rounding the complex count directly gives 68.0625 → 68 only by luck; at
/// other operating points they differ by one value), and Fig. 7 must report
/// the sizes the wire actually carries ([`model_feedback_bits`]).
pub fn splitbeam_feedback_bits(
    nt: usize,
    nr: usize,
    s: usize,
    k: f64,
    bits_per_value: u8,
) -> usize {
    let real_dim = (((2 * nt * nr * s) as f64 * k).round() as usize).max(1);
    complex_feedback_bits(real_dim, bits_per_value)
}

/// Feedback size of a configured model (uses the model's actual bottleneck width).
pub fn model_feedback_bits(config: &SplitBeamConfig, bits_per_value: u8) -> usize {
    complex_feedback_bits(config.bottleneck_dim(), bits_per_value)
}

/// Shared complex-convention accounting: `bottleneck_dim` real-interleaved
/// values make `bottleneck_dim / 2` complex values (at least one), each
/// carrying `bits_per_value` bits.
fn complex_feedback_bits(bottleneck_dim: usize, bits_per_value: u8) -> usize {
    (bottleneck_dim / 2).max(1) * bits_per_value as usize
}

/// On-air feedback size in bits for a bottleneck of `bottleneck_dim` (real)
/// values: the bit-packed codes plus the fixed v2 wire-frame header and CRC-32
/// trailer the codec in [`crate::wire`] emits. This is the number the airtime
/// model should use when it must match actual transmitted bytes:
/// `8 * encoded_len == ` this value rounded up to a whole byte.
pub fn feedback_bits_on_air(bottleneck_dim: usize, bits_per_value: u8) -> usize {
    crate::wire::WIRE_HEADER_BITS
        + crate::quantization::feedback_bits(bottleneck_dim, bits_per_value)
        + crate::wire::WIRE_TRAILER_BITS
}

/// The Fig. 7 quantity: SplitBeam feedback size as a percentage of the 802.11
/// compressed beamforming report size (paper accounting convention).
pub fn bf_size_ratio_percent(nt: usize, nr: usize, s: usize, k: f64) -> f64 {
    100.0 * splitbeam_feedback_bits(nt, nr, s, k, DEFAULT_BITS_PER_VALUE) as f64
        / paper_report_bits(nt, s) as f64
}

/// One row of the Fig. 7 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BfSizePoint {
    /// MIMO order (`Nt = Nr = n`).
    pub mimo_order: usize,
    /// Number of subcarriers.
    pub subcarriers: usize,
    /// Compression level `K`.
    pub k: f64,
    /// SplitBeam feedback bits.
    pub splitbeam_bits: usize,
    /// 802.11 report bits (paper convention).
    pub dot11_bits: usize,
    /// Ratio in percent.
    pub ratio_percent: f64,
}

/// Computes the full Fig. 7 grid.
pub fn bf_size_grid(
    mimo_orders: &[usize],
    subcarrier_counts: &[usize],
    compression_levels: &[f64],
) -> Vec<BfSizePoint> {
    let mut out = Vec::new();
    for &n in mimo_orders {
        for &s in subcarrier_counts {
            for &k in compression_levels {
                let sb = splitbeam_feedback_bits(n, n, s, k, DEFAULT_BITS_PER_VALUE);
                let dot11 = paper_report_bits(n, s);
                out.push(BfSizePoint {
                    mimo_order: n,
                    subcarriers: s,
                    k,
                    splitbeam_bits: sb,
                    dot11_bits: dot11,
                    ratio_percent: 100.0 * sb as f64 / dot11 as f64,
                });
            }
        }
    }
    out
}

/// Average airtime saving in percent over a grid (the "reduces the airtime
/// overhead by 75% on average" number of Section IV-E2).
pub fn average_airtime_saving_percent(grid: &[BfSizePoint]) -> f64 {
    if grid.is_empty() {
        return 0.0;
    }
    let mean_ratio: f64 =
        grid.iter().map(|p| p.ratio_percent.min(100.0)).sum::<f64>() / grid.len() as f64;
    100.0 - mean_ratio
}

/// Airtime of one full sounding round when the stations reply with SplitBeam
/// feedback instead of 802.11 compressed reports, in seconds.
pub fn splitbeam_sounding_airtime_s(
    config: &SplitBeamConfig,
    sounding: &SoundingConfig,
    bits_per_value: u8,
) -> f64 {
    let bits = model_feedback_bits(config, bits_per_value);
    sounding_round_airtime(sounding, bits).total_s()
}

/// On-air duration of **one** station's SplitBeam feedback frame (PHY/MAC
/// overhead plus the quantized bottleneck payload at the sounding config's
/// feedback rate), in seconds.
///
/// This is the same per-frame primitive
/// ([`wifi_phy::sounding::feedback_frame_airtime_s`]) that
/// [`splitbeam_sounding_airtime_s`] sums per polled station, so a shared-medium
/// model charging this duration per serialized frame can never drift from the
/// round-level airtime math.
pub fn splitbeam_frame_airtime_s(
    config: &SplitBeamConfig,
    sounding: &SoundingConfig,
    bits_per_value: u8,
) -> f64 {
    feedback_frame_airtime_s(
        model_feedback_bits(config, bits_per_value),
        sounding.feedback_rate_mbps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompressionLevel;
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    #[test]
    fn feedback_bits_scale_with_k() {
        let small = splitbeam_feedback_bits(3, 3, 242, 1.0 / 32.0, 16);
        let large = splitbeam_feedback_bits(3, 3, 242, 1.0 / 4.0, 16);
        assert!(large > small);
        let ratio = large as f64 / small as f64;
        assert!(
            (ratio - 8.0).abs() < 0.1,
            "ratio {ratio} should be ~8 (up to rounding)"
        );
    }

    #[test]
    fn on_air_bits_match_wire_codec() {
        use crate::quantization::quantize_bottleneck;
        let values: Vec<f32> = (0..114).map(|i| (i as f32 * 0.11).sin()).collect();
        for bits in [1u8, 4, 7, 16] {
            let payload = quantize_bottleneck(&values, bits);
            let frame = crate::wire::encode_feedback(&payload).unwrap();
            let predicted = feedback_bits_on_air(values.len(), bits);
            assert_eq!(payload.size_bits(), predicted);
            assert_eq!(frame.len(), predicted.div_ceil(8), "bits={bits}");
        }
    }

    #[test]
    fn model_feedback_matches_formula() {
        let config = SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        );
        // bottleneck 56 reals = 28 complex values -> 28 * 16 bits.
        assert_eq!(model_feedback_bits(&config, 16), 28 * 16);
        assert_eq!(splitbeam_feedback_bits(2, 2, 56, 0.125, 16), 28 * 16);
    }

    /// Regression test: the analytic Fig. 7 form used to round the complex
    /// count directly while the model rounds the real-interleaved width and
    /// halves, so the figure disagreed with actual wire sizes whenever the
    /// rounded real width was odd. The two paths must now agree for every
    /// standard compression level, bandwidth and MIMO order (and for odd
    /// custom ratios that force an odd rounded width).
    #[test]
    fn analytic_bits_match_model_bits_across_grid() {
        let bandwidths = [
            Bandwidth::Mhz20,
            Bandwidth::Mhz40,
            Bandwidth::Mhz80,
            Bandwidth::Mhz160,
        ];
        let mut levels = CompressionLevel::STANDARD.to_vec();
        // Ratios engineered to produce odd rounded real widths.
        levels.push(CompressionLevel::Custom(0.123));
        levels.push(CompressionLevel::Custom(1.0 / 3.0));
        for &n in &[2usize, 3, 4, 8] {
            for &bw in &bandwidths {
                for &level in &levels {
                    let config = SplitBeamConfig::new(MimoConfig::symmetric(n, bw), level);
                    let s = config.mimo.subcarriers();
                    for bits in [8u8, 16] {
                        assert_eq!(
                            splitbeam_feedback_bits(n, n, s, level.ratio(), bits),
                            model_feedback_bits(&config, bits),
                            "{n}x{n}, {s} subcarriers, {level}, {bits} bits/value"
                        );
                    }
                }
            }
        }
        // An odd rounded real width exercises the halve-after-round order
        // (448 * 0.123 rounds to 55; the old complex-first rounding gave 28
        // complex values where the model actually carries 27).
        let odd = SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::Custom(0.123),
        );
        assert_eq!(odd.bottleneck_dim() % 2, 1, "test must cover an odd width");
        assert_eq!(splitbeam_feedback_bits(2, 2, 56, 0.123, 16), 27 * 16);
    }

    #[test]
    fn ratio_well_below_100_for_high_order_mimo() {
        // Fig. 7: "SplitBeam reduces the size of the feedback overhead by 91%
        // and 93% in 4x4 and 8x8 configurations with 80 MHz channel" (K = 1/8).
        let r4 = bf_size_ratio_percent(4, 4, 242, 0.125);
        let r8 = bf_size_ratio_percent(8, 8, 242, 0.125);
        assert!(r4 < 20.0, "4x4 ratio {r4}% should be far below 100%");
        assert!(r8 < r4, "8x8 ratio {r8}% should be below 4x4 {r4}%");
    }

    #[test]
    fn grid_and_average_saving() {
        let grid = bf_size_grid(
            &[4, 8],
            &[56, 114, 242],
            &[1.0 / 32.0, 1.0 / 16.0, 0.125, 0.25],
        );
        assert_eq!(grid.len(), 24);
        let saving = average_airtime_saving_percent(&grid);
        assert!(
            saving > 60.0,
            "average airtime saving {saving}% should be large"
        );
        assert_eq!(average_airtime_saving_percent(&[]), 0.0);
    }

    /// Satellite consistency test: the per-frame airtime primitive and the
    /// round-level sounding airtime must agree — `num_stations` copies of the
    /// frame primitive is exactly the round's feedback component — across
    /// bandwidths × MIMO orders × quantizer widths. The shared-medium model of
    /// the event-driven simulator charges the frame primitive per transmission,
    /// so this pins the two against drifting apart.
    #[test]
    fn frame_airtime_matches_round_airtime_across_grid() {
        let bandwidths = [
            Bandwidth::Mhz20,
            Bandwidth::Mhz40,
            Bandwidth::Mhz80,
            Bandwidth::Mhz160,
        ];
        for &n in &[2usize, 3, 4] {
            for &bw in &bandwidths {
                for bits in [1u8, 4, 8, 16] {
                    let config = SplitBeamConfig::new(
                        MimoConfig::symmetric(n, bw),
                        CompressionLevel::OneEighth,
                    );
                    let sounding = wifi_phy::sounding::SoundingConfig::new(bw, n);
                    let frame = splitbeam_frame_airtime_s(&config, &sounding, bits);
                    let round = wifi_phy::sounding::sounding_round_airtime(
                        &sounding,
                        model_feedback_bits(&config, bits),
                    );
                    assert!(
                        (round.feedback_s - n as f64 * frame).abs() < 1e-15,
                        "{n}x{n} @ {bw:?}, {bits} bits/value"
                    );
                    assert!(
                        (splitbeam_sounding_airtime_s(&config, &sounding, bits)
                            - (round.protocol_s + n as f64 * frame))
                            .abs()
                            < 1e-15,
                        "{n}x{n} @ {bw:?}, {bits} bits/value: round total must decompose"
                    );
                }
            }
        }
    }

    #[test]
    fn sounding_airtime_reasonable() {
        let config = SplitBeamConfig::new(
            MimoConfig::symmetric(3, Bandwidth::Mhz80),
            CompressionLevel::OneEighth,
        );
        let sounding = SoundingConfig::new(Bandwidth::Mhz80, 3);
        let t = splitbeam_sounding_airtime_s(&config, &sounding, 16);
        assert!(
            t > 0.0 && t < 0.01,
            "sounding airtime {t}s should be below 10 ms"
        );
    }
}
