//! SplitBeam model configuration: compression levels and architecture derivation.

use neural::layer::Activation;
use neural::network::LayerSpec;
use serde::{Deserialize, Serialize};
use wifi_phy::ofdm::MimoConfig;

/// The bottleneck compression level `K = |V'| / |H|` — the ratio between the
/// bottleneck width and the CSI input width. The paper evaluates the four
/// discrete levels below; [`CompressionLevel::Custom`] supports ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CompressionLevel {
    /// `K = 1/32` — the most aggressive compression evaluated.
    OneThirtySecond,
    /// `K = 1/16`.
    OneSixteenth,
    /// `K = 1/8` — the operating point the paper highlights (BER within ~1e-3
    /// of 802.11 while shrinking the feedback 4–5x).
    OneEighth,
    /// `K = 1/4` — the least aggressive standard level (lowest BER).
    OneQuarter,
    /// An arbitrary ratio in `(0, 1)`.
    Custom(f64),
}

impl CompressionLevel {
    /// The four standard levels evaluated in the paper, most compressed first
    /// (the order the BOP heuristic explores them in).
    pub const STANDARD: [CompressionLevel; 4] = [
        CompressionLevel::OneThirtySecond,
        CompressionLevel::OneSixteenth,
        CompressionLevel::OneEighth,
        CompressionLevel::OneQuarter,
    ];

    /// The numeric ratio `K`.
    pub fn ratio(self) -> f64 {
        match self {
            CompressionLevel::OneThirtySecond => 1.0 / 32.0,
            CompressionLevel::OneSixteenth => 1.0 / 16.0,
            CompressionLevel::OneEighth => 1.0 / 8.0,
            CompressionLevel::OneQuarter => 1.0 / 4.0,
            CompressionLevel::Custom(k) => k,
        }
    }

    /// A short label such as `"1/8"` used in reports and figures.
    pub fn label(self) -> String {
        match self {
            CompressionLevel::OneThirtySecond => "1/32".to_string(),
            CompressionLevel::OneSixteenth => "1/16".to_string(),
            CompressionLevel::OneEighth => "1/8".to_string(),
            CompressionLevel::OneQuarter => "1/4".to_string(),
            CompressionLevel::Custom(k) => format!("{k:.4}"),
        }
    }
}

impl std::fmt::Display for CompressionLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "K={}", self.label())
    }
}

/// Complete configuration of one SplitBeam model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitBeamConfig {
    /// The MU-MIMO network configuration the model is trained for.
    pub mimo: MimoConfig,
    /// Bottleneck compression level.
    pub compression: CompressionLevel,
    /// Widths of extra hidden layers inserted *after* the bottleneck (tail
    /// side). Empty for the heuristic's default 3-layer model; the BOP solver
    /// grows this list when the BER constraint cannot be met at the minimum
    /// compression level.
    pub extra_tail_layers: Vec<usize>,
    /// Hidden activation used by the model.
    pub hidden_activation: Activation,
}

impl SplitBeamConfig {
    /// Creates the default 3-layer (input – bottleneck – output) configuration
    /// produced by the heuristic of Section IV-C.
    pub fn new(mimo: MimoConfig, compression: CompressionLevel) -> Self {
        Self {
            mimo,
            compression,
            extra_tail_layers: Vec::new(),
            hidden_activation: Activation::Tanh,
        }
    }

    /// DNN input width: the real-interleaved CSI tensor, `2 * Nr * Nt * S`.
    pub fn input_dim(&self) -> usize {
        self.mimo.csi_real_dim()
    }

    /// DNN output width: the real-interleaved beamforming feedback,
    /// `2 * Nt * Nss * S`.
    pub fn output_dim(&self) -> usize {
        self.mimo.bf_real_dim()
    }

    /// Bottleneck width `|B| = max(1, round(K * input_dim))`.
    pub fn bottleneck_dim(&self) -> usize {
        ((self.input_dim() as f64 * self.compression.ratio()).round() as usize).max(1)
    }

    /// Layer specifications of the full (unsplit) DNN.
    pub fn layer_specs(&self) -> Vec<LayerSpec> {
        let mut dims = vec![self.input_dim(), self.bottleneck_dim()];
        dims.extend(self.extra_tail_layers.iter().copied());
        dims.push(self.output_dim());
        dims.windows(2)
            .enumerate()
            .map(|(i, pair)| {
                // The bottleneck output itself is linear (it is quantized and
                // transmitted); hidden tail layers use the configured activation;
                // the output layer is linear.
                let is_last = i == dims.len() - 2;
                let activation = if i == 0 || is_last {
                    Activation::Identity
                } else {
                    self.hidden_activation
                };
                LayerSpec::new(pair[0], pair[1], activation)
            })
            .collect()
    }

    /// Index of the layer *after* which the network is split: the head is the
    /// single input→bottleneck layer (the heuristic places the bottleneck
    /// immediately after the input, `e = 1`).
    pub fn split_index(&self) -> usize {
        1
    }

    /// Architecture summary string such as `"448-56-224"`.
    pub fn architecture_label(&self) -> String {
        let mut dims = vec![self.input_dim(), self.bottleneck_dim()];
        dims.extend(self.extra_tail_layers.iter().copied());
        dims.push(self.output_dim());
        dims.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("-")
    }

    /// Returns a copy with one more tail hidden layer (used by the BOP
    /// heuristic when the minimum compression level still violates the BER
    /// constraint). The new layer width matches the output dimension.
    pub fn with_extra_tail_layer(&self) -> Self {
        let mut next = self.clone();
        next.extra_tail_layers.push(self.output_dim());
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_phy::ofdm::Bandwidth;

    fn cfg(n: usize, bw: Bandwidth, k: CompressionLevel) -> SplitBeamConfig {
        SplitBeamConfig::new(MimoConfig::symmetric(n, bw), k)
    }

    #[test]
    fn ratios_and_labels() {
        assert!((CompressionLevel::OneEighth.ratio() - 0.125).abs() < 1e-12);
        assert_eq!(CompressionLevel::OneEighth.label(), "1/8");
        assert_eq!(CompressionLevel::STANDARD.len(), 4);
        assert!(CompressionLevel::STANDARD[0].ratio() < CompressionLevel::STANDARD[3].ratio());
        assert!((CompressionLevel::Custom(0.3).ratio() - 0.3).abs() < 1e-12);
        assert!(format!("{}", CompressionLevel::OneQuarter).contains("1/4"));
    }

    #[test]
    fn dimensions_for_2x2_20mhz() {
        let c = cfg(2, Bandwidth::Mhz20, CompressionLevel::OneEighth);
        assert_eq!(c.input_dim(), 448);
        assert_eq!(c.output_dim(), 224);
        assert_eq!(c.bottleneck_dim(), 56);
        assert_eq!(c.architecture_label(), "448-56-224");
    }

    #[test]
    fn layer_specs_chain() {
        let c = cfg(3, Bandwidth::Mhz40, CompressionLevel::OneQuarter);
        let specs = c.layer_specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].input_dim, c.input_dim());
        assert_eq!(specs[0].output_dim, c.bottleneck_dim());
        assert_eq!(specs[1].output_dim, c.output_dim());
        for pair in specs.windows(2) {
            assert_eq!(pair[0].output_dim, pair[1].input_dim);
        }
    }

    #[test]
    fn extra_tail_layers_extend_architecture() {
        let c = cfg(2, Bandwidth::Mhz20, CompressionLevel::OneThirtySecond);
        let deeper = c.with_extra_tail_layer();
        assert_eq!(deeper.layer_specs().len(), 3);
        assert_eq!(deeper.extra_tail_layers, vec![c.output_dim()]);
        assert!(deeper.architecture_label().split('-').count() == 4);
    }

    #[test]
    fn bottleneck_never_zero() {
        let c = SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::Custom(1e-6),
        );
        assert_eq!(c.bottleneck_dim(), 1);
    }

    #[test]
    fn split_index_is_one() {
        let c = cfg(2, Bandwidth::Mhz80, CompressionLevel::OneEighth);
        assert_eq!(c.split_index(), 1);
    }

    #[test]
    fn bottleneck_scales_with_bandwidth() {
        let narrow = cfg(2, Bandwidth::Mhz20, CompressionLevel::OneEighth).bottleneck_dim();
        let wide = cfg(2, Bandwidth::Mhz80, CompressionLevel::OneEighth).bottleneck_dim();
        assert!(wide > narrow);
    }
}
