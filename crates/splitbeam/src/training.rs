//! Supervised training of SplitBeam models (Section IV-D).
//!
//! Training examples pair a station's flattened CSI tensor `H` with the
//! corresponding ideal beamforming feedback `V` (obtained by SVD and
//! phase-canonicalized so the regression target is well defined — the SVD's
//! per-column phase is arbitrary, and the standard itself discards it).
//! Real and imaginary parts are decoupled into a double-length real vector,
//! exactly as described in the paper.

use crate::config::SplitBeamConfig;
use crate::model::SplitBeamModel;
use dot11_bfi::givens::canonicalize_column_phases;
use neural::loss::Loss;
use neural::network::Network;
use neural::optimizer::OptimizerKind;
use neural::trainer::{Example, TrainConfig, TrainHistory, Trainer};
use rand::Rng;
use serde::{Deserialize, Serialize};
use wifi_phy::channel::ChannelSnapshot;

/// A labelled dataset of (CSI, beamforming feedback) pairs for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingData {
    config: SplitBeamConfig,
    examples: Vec<Example>,
}

impl TrainingData {
    /// Creates an empty dataset for the given configuration.
    pub fn new(config: SplitBeamConfig) -> Self {
        Self {
            config,
            examples: Vec::new(),
        }
    }

    /// The configuration the examples belong to.
    pub fn config(&self) -> &SplitBeamConfig {
        &self.config
    }

    /// Number of examples collected so far.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Read-only view of the examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Adds one example per station of a channel snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot's dimensions do not match the configuration.
    pub fn push_snapshot(&mut self, snapshot: &ChannelSnapshot) {
        assert_eq!(snapshot.nt(), self.config.mimo.nt, "Nt mismatch");
        assert_eq!(
            snapshot.subcarriers(),
            self.config.mimo.subcarriers(),
            "subcarrier mismatch"
        );
        let ideal = snapshot.ideal_beamforming();
        for (user, ideal_user) in ideal.iter().enumerate().take(snapshot.num_users()) {
            let input: Vec<f32> = snapshot
                .csi_real_vector(user)
                .into_iter()
                .map(|v| v as f32)
                .collect();
            let mut target = Vec::with_capacity(self.config.output_dim());
            for v in ideal_user {
                let canonical = canonicalize_column_phases(v);
                target.extend(canonical.to_real_vec().into_iter().map(|v| v as f32));
            }
            debug_assert_eq!(input.len(), self.config.input_dim());
            debug_assert_eq!(target.len(), self.config.output_dim());
            self.examples.push((input, target));
        }
    }

    /// Adds an already-flattened example (used by the dataset crate, which owns
    /// its own capture-artifact pipeline).
    ///
    /// # Panics
    /// Panics if the lengths do not match the configuration.
    pub fn push_example(&mut self, input: Vec<f32>, target: Vec<f32>) {
        assert_eq!(
            input.len(),
            self.config.input_dim(),
            "input length mismatch"
        );
        assert_eq!(
            target.len(),
            self.config.output_dim(),
            "target length mismatch"
        );
        self.examples.push((input, target));
    }

    /// Splits the dataset into two contiguous parts; `fraction` goes to the first.
    ///
    /// Whenever the dataset holds at least two examples the cut is clamped so
    /// *both* sides are non-empty: rounding must not silently hand
    /// `train_model` an empty validation (or training) split — e.g. `len = 3`
    /// with `fraction = 0.9` used to round the cut to 3 and train with no
    /// validation loss at all.
    pub fn split(&self, fraction: f64) -> (Vec<Example>, Vec<Example>) {
        let len = self.examples.len();
        let cut = ((len as f64) * fraction).round() as usize;
        let cut = if len >= 2 {
            cut.clamp(1, len - 1)
        } else {
            cut.min(len)
        };
        (self.examples[..cut].to_vec(), self.examples[cut..].to_vec())
    }

    /// Splits into train/validation/test with the paper's 8:1:1 ratio.
    pub fn split_train_val_test(&self) -> (Vec<Example>, Vec<Example>, Vec<Example>) {
        let n = self.examples.len();
        let train_end = n * 8 / 10;
        let val_end = n * 9 / 10;
        (
            self.examples[..train_end].to_vec(),
            self.examples[train_end..val_end].to_vec(),
            self.examples[val_end..].to_vec(),
        )
    }
}

/// Hyper-parameters of a SplitBeam training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingOptions {
    /// Number of epochs (the paper uses 40).
    pub epochs: usize,
    /// Mini-batch size (the paper uses 16).
    pub batch_size: usize,
    /// Initial learning rate (the paper uses 1e-3).
    pub learning_rate: f32,
    /// Training objective (the paper's Eq. 8 normalized L1 by default).
    pub loss: Loss,
    /// Use Adam (`true`, used for measured datasets) or plain SGD (`false`,
    /// used for the synthetic datasets).
    pub use_adam: bool,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        Self {
            epochs: 40,
            batch_size: 16,
            learning_rate: 1e-3,
            loss: Loss::NormalizedL1,
            use_adam: true,
        }
    }
}

impl TrainingOptions {
    /// A drastically shortened configuration for unit tests and quick demos.
    pub fn quick() -> Self {
        Self {
            epochs: 4,
            ..Self::default()
        }
    }

    fn optimizer(&self) -> OptimizerKind {
        if self.use_adam {
            OptimizerKind::Adam {
                learning_rate: self.learning_rate,
            }
        } else {
            OptimizerKind::Sgd {
                learning_rate: self.learning_rate,
                momentum: 0.9,
            }
        }
    }
}

/// Trains a SplitBeam model for `config` on the given train/validation splits.
///
/// Returns the trained (best-validation) model and the training history.
pub fn train_model(
    config: &SplitBeamConfig,
    train: &[Example],
    validation: &[Example],
    options: &TrainingOptions,
    rng: &mut impl Rng,
) -> (SplitBeamModel, TrainHistory) {
    let mut network = Network::new(&config.layer_specs(), rng);
    let trainer = Trainer::new(
        TrainConfig {
            epochs: options.epochs,
            batch_size: options.batch_size,
            ..TrainConfig::default()
        },
        options.loss,
        options.optimizer(),
    );
    let history = trainer.fit(&mut network, train, validation, rng);
    (
        SplitBeamModel::from_full_network(config.clone(), network),
        history,
    )
}

/// Mean squared reconstruction error of a model over a set of examples — a
/// cheap proxy metric used by tests and the BOP heuristic before running the
/// full BER link simulation.
pub fn reconstruction_mse(model: &SplitBeamModel, examples: &[Example]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (input, target) in examples {
        if let Ok(pred) = model.infer(input) {
            for (p, t) in pred.iter().zip(target.iter()) {
                let d = (*p - *t) as f64;
                total += d * d;
            }
            count += target.len();
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompressionLevel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn config() -> SplitBeamConfig {
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneQuarter,
        )
    }

    fn build_dataset(seed: u64, snapshots: usize) -> TrainingData {
        let cfg = config();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let channel = ChannelModel::from_config(EnvironmentProfile::e1(), &cfg.mimo);
        let mut data = TrainingData::new(cfg);
        for _ in 0..snapshots {
            let snap = channel.sample(&mut rng);
            data.push_snapshot(&snap);
        }
        data
    }

    #[test]
    fn dataset_dimensions() {
        let data = build_dataset(1, 5);
        // 2 stations per snapshot.
        assert_eq!(data.len(), 10);
        let (input, target) = &data.examples()[0];
        assert_eq!(input.len(), 448);
        assert_eq!(target.len(), 224);
    }

    #[test]
    fn split_ratios() {
        let data = build_dataset(2, 10);
        let (a, b) = data.split(0.8);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 4);
        let (train, val, test) = data.split_train_val_test();
        assert_eq!(train.len(), 16);
        assert_eq!(val.len(), 2);
        assert_eq!(test.len(), 2);
    }

    #[test]
    fn split_never_returns_an_empty_side_for_two_plus_examples() {
        // Regression: len = 3, fraction = 0.9 rounded the cut to 3, leaving an
        // empty validation split.
        let cfg = config();
        let mut data = TrainingData::new(cfg.clone());
        for _ in 0..3 {
            data.push_example(vec![0.0; cfg.input_dim()], vec![0.0; cfg.output_dim()]);
        }
        let (train, val) = data.split(0.9);
        assert_eq!((train.len(), val.len()), (2, 1));
        let (train, val) = data.split(0.05);
        assert_eq!((train.len(), val.len()), (1, 2));
        // Degenerate sizes keep their old behavior.
        let mut tiny = TrainingData::new(cfg.clone());
        assert_eq!(tiny.split(0.9).0.len(), 0);
        tiny.push_example(vec![0.0; cfg.input_dim()], vec![0.0; cfg.output_dim()]);
        let (a, b) = tiny.split(0.9);
        assert_eq!((a.len(), b.len()), (1, 0));
    }

    #[test]
    fn training_improves_over_untrained_model() {
        let data = build_dataset(3, 30);
        let (train, val) = data.split(0.8);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let untrained = SplitBeamModel::new(data.config().clone(), &mut rng);
        let untrained_mse = reconstruction_mse(&untrained, &val);

        let options = TrainingOptions {
            epochs: 8,
            ..TrainingOptions::default()
        };
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        let (model, history) = train_model(data.config(), &train, &val, &options, &mut rng2);
        let trained_mse = reconstruction_mse(&model, &val);
        assert!(
            trained_mse < untrained_mse,
            "training should reduce reconstruction error ({trained_mse} vs {untrained_mse})"
        );
        assert_eq!(history.train_loss.len(), 8);
        assert!(history.final_train_loss() < history.initial_train_loss());
    }

    #[test]
    fn targets_are_unit_norm_per_subcarrier() {
        let data = build_dataset(6, 2);
        let (_, target) = &data.examples()[0];
        // Each subcarrier contributes 4 reals (2 complex) with unit total norm.
        for chunk in target.chunks(4) {
            let norm: f32 = chunk.iter().map(|v| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_example_length_panics() {
        let mut data = TrainingData::new(config());
        data.push_example(vec![0.0; 3], vec![0.0; 224]);
    }

    #[test]
    fn reconstruction_mse_empty_is_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let model = SplitBeamModel::new(config(), &mut rng);
        assert_eq!(reconstruction_mse(&model, &[]), 0.0);
    }

    #[test]
    fn quick_options_are_shorter() {
        assert!(TrainingOptions::quick().epochs < TrainingOptions::default().epochs);
        assert_eq!(TrainingOptions::default().epochs, 40);
        assert_eq!(TrainingOptions::default().batch_size, 16);
    }
}
