//! The Bottleneck Optimization Problem (BOP) and its heuristic solver.
//!
//! Equation (7) of the paper selects the bottleneck placement `e` and size `N`
//! that minimize a weighted sum of station overhead and feedback airtime,
//! subject to a BER ceiling (7c) and an end-to-end delay ceiling (7d). Solving
//! it exactly is a neural-architecture-search problem, so Section IV-C uses a
//! heuristic:
//!
//! 1. place the bottleneck right after the input (`e = 1`),
//! 2. use a single tail layer (3-layer network),
//! 3. start from the most aggressive compression level and train,
//! 4. if the BER constraint fails, move to the next (less aggressive) level;
//!    once the least aggressive level also fails, add a tail layer and repeat.
//!
//! Training and BER evaluation are supplied by the caller as closures, so the
//! solver is independent of the dataset and link-simulation machinery (and unit
//! tests can drive it with synthetic cost functions).

use crate::config::{CompressionLevel, SplitBeamConfig};
use crate::model::SplitBeamModel;
use crate::SplitBeamError;
use serde::{Deserialize, Serialize};

/// The application constraints of the BOP (Eqs. 7b–7d).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BopConstraints {
    /// Maximum tolerated bit error rate `gamma` (Eq. 7c).
    pub max_ber: f64,
    /// Maximum tolerated end-to-end feedback delay `tau` in seconds (Eq. 7d).
    pub max_delay_s: f64,
    /// Trade-off weight `mu` between station overhead and airtime (Eq. 7a);
    /// must lie strictly between 0 and 1 (Eq. 7b).
    pub mu: f64,
}

impl Default for BopConstraints {
    fn default() -> Self {
        Self {
            max_ber: 0.02,
            max_delay_s: 0.01,
            mu: 0.5,
        }
    }
}

impl BopConstraints {
    /// Validates Eq. (7b).
    ///
    /// # Errors
    /// Returns [`SplitBeamError::ConstraintsUnsatisfiable`] when `mu` is not in `(0, 1)`
    /// or the ceilings are non-positive.
    pub fn validate(&self) -> Result<(), SplitBeamError> {
        if !(self.mu > 0.0 && self.mu < 1.0) {
            return Err(SplitBeamError::ConstraintsUnsatisfiable(format!(
                "mu must be in (0, 1), got {}",
                self.mu
            )));
        }
        if self.max_ber <= 0.0 || self.max_delay_s <= 0.0 {
            return Err(SplitBeamError::ConstraintsUnsatisfiable(
                "BER and delay ceilings must be positive".into(),
            ));
        }
        Ok(())
    }

    /// The BOP objective (Eq. 7a) for one station given its computational
    /// overhead and feedback airtime (both already normalized by the caller).
    pub fn objective(&self, sta_overhead: f64, feedback_airtime: f64) -> f64 {
        self.mu * sta_overhead + (1.0 - self.mu) * feedback_airtime
    }
}

/// Result of one candidate evaluation inside the heuristic search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BopCandidate {
    /// The candidate configuration.
    pub config: SplitBeamConfig,
    /// Measured BER of the trained candidate.
    pub ber: f64,
    /// Estimated end-to-end delay of the candidate in seconds.
    pub delay_s: f64,
    /// Whether the candidate satisfied both constraints.
    pub feasible: bool,
}

/// Outcome of the heuristic BOP search.
#[derive(Debug, Clone)]
pub struct BopSolution {
    /// The selected model (trained by the caller-provided closure).
    pub model: SplitBeamModel,
    /// The candidate record of the selected model.
    pub selected: BopCandidate,
    /// Every candidate evaluated, in search order.
    pub explored: Vec<BopCandidate>,
}

/// Runs the heuristic BOP solver of Section IV-C.
///
/// * `base` — the MIMO/bandwidth configuration (its compression level and extra
///   layers are overwritten during the search).
/// * `constraints` — BER/delay ceilings and the trade-off weight.
/// * `max_extra_layers` — how many times the heuristic may deepen the tail
///   after exhausting the compression levels.
/// * `train` — trains a model for a candidate configuration.
/// * `evaluate_ber` — measures the BER of a trained candidate.
/// * `estimate_delay` — estimates the end-to-end feedback delay of a candidate.
///
/// # Errors
/// Returns [`SplitBeamError::ConstraintsUnsatisfiable`] when no candidate within
/// the search budget satisfies the constraints, or when the constraints
/// themselves are invalid.
pub fn solve_bop<T, B, D>(
    base: &SplitBeamConfig,
    constraints: &BopConstraints,
    max_extra_layers: usize,
    mut train: T,
    mut evaluate_ber: B,
    mut estimate_delay: D,
) -> Result<BopSolution, SplitBeamError>
where
    T: FnMut(&SplitBeamConfig) -> SplitBeamModel,
    B: FnMut(&SplitBeamModel) -> f64,
    D: FnMut(&SplitBeamConfig) -> f64,
{
    constraints.validate()?;
    let mut explored = Vec::new();
    let mut current_base = SplitBeamConfig {
        extra_tail_layers: Vec::new(),
        ..base.clone()
    };

    for depth in 0..=max_extra_layers {
        // Step 3: explore compression levels from the most aggressive one.
        for level in CompressionLevel::STANDARD {
            let candidate_config = SplitBeamConfig {
                compression: level,
                ..current_base.clone()
            };
            let delay = estimate_delay(&candidate_config);
            if delay >= constraints.max_delay_s {
                // A candidate that already violates the delay ceiling is not trained.
                explored.push(BopCandidate {
                    config: candidate_config,
                    ber: f64::NAN,
                    delay_s: delay,
                    feasible: false,
                });
                continue;
            }
            let model = train(&candidate_config);
            let ber = evaluate_ber(&model);
            let feasible = ber <= constraints.max_ber;
            let candidate = BopCandidate {
                config: candidate_config,
                ber,
                delay_s: delay,
                feasible,
            };
            explored.push(candidate.clone());
            if feasible {
                return Ok(BopSolution {
                    model,
                    selected: candidate,
                    explored,
                });
            }
        }
        // Step 4: every compression level failed; insert another tail layer.
        if depth < max_extra_layers {
            current_base = current_base.with_extra_tail_layer();
        }
    }

    Err(SplitBeamError::ConstraintsUnsatisfiable(format!(
        "no candidate met BER <= {} and delay < {} s after exploring {} candidates",
        constraints.max_ber,
        constraints.max_delay_s,
        explored.len()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn base_config() -> SplitBeamConfig {
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneThirtySecond,
        )
    }

    fn dummy_train(config: &SplitBeamConfig) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        SplitBeamModel::new(config.clone(), &mut rng)
    }

    #[test]
    fn selects_first_level_meeting_the_ber_constraint() {
        // BER improves (drops) as the bottleneck widens; pretend only K >= 1/8 meets 0.02.
        let constraints = BopConstraints::default();
        let solution = solve_bop(
            &base_config(),
            &constraints,
            0,
            dummy_train,
            |model| match model.bottleneck_dim() {
                d if d >= 56 => 0.01, // K = 1/8 and 1/4
                d if d >= 28 => 0.05, // K = 1/16
                _ => 0.10,            // K = 1/32
            },
            |_| 0.001,
        )
        .unwrap();
        assert_eq!(
            solution.selected.config.compression.label(),
            "1/8",
            "the first feasible (most compressed) level should be selected"
        );
        // 1/32 and 1/16 were explored and found infeasible first.
        assert_eq!(solution.explored.len(), 3);
        assert!(!solution.explored[0].feasible);
        assert!(solution.explored[2].feasible);
    }

    #[test]
    fn adds_tail_layer_when_no_level_is_feasible() {
        // Flat 3-layer models never meet the constraint; deeper ones do.
        let constraints = BopConstraints {
            max_ber: 0.02,
            ..BopConstraints::default()
        };
        let solution = solve_bop(
            &base_config(),
            &constraints,
            2,
            dummy_train,
            |model| {
                if model.tail().layers().len() > 1 {
                    0.005
                } else {
                    0.5
                }
            },
            |_| 0.001,
        )
        .unwrap();
        assert!(!solution.selected.config.extra_tail_layers.is_empty());
        assert!(solution.explored.len() > 4);
    }

    #[test]
    fn unsatisfiable_search_reports_error() {
        let err = solve_bop(
            &base_config(),
            &BopConstraints::default(),
            1,
            dummy_train,
            |_| 1.0,
            |_| 0.001,
        )
        .unwrap_err();
        assert!(matches!(err, SplitBeamError::ConstraintsUnsatisfiable(_)));
    }

    #[test]
    fn delay_violations_skip_training() {
        let mut trained = 0usize;
        let result = solve_bop(
            &base_config(),
            &BopConstraints::default(),
            0,
            |config| {
                trained += 1;
                dummy_train(config)
            },
            |_| 0.0,
            |_| 1.0, // every candidate violates the 10 ms delay ceiling
        );
        assert!(result.is_err());
        assert_eq!(
            trained, 0,
            "no candidate should be trained when delay always fails"
        );
    }

    #[test]
    fn constraint_validation() {
        assert!(BopConstraints {
            mu: 0.0,
            ..BopConstraints::default()
        }
        .validate()
        .is_err());
        assert!(BopConstraints {
            mu: 1.0,
            ..BopConstraints::default()
        }
        .validate()
        .is_err());
        assert!(BopConstraints {
            max_ber: -1.0,
            ..BopConstraints::default()
        }
        .validate()
        .is_err());
        assert!(BopConstraints::default().validate().is_ok());
    }

    #[test]
    fn objective_weights_terms() {
        let c = BopConstraints {
            mu: 0.25,
            ..BopConstraints::default()
        };
        assert!((c.objective(4.0, 8.0) - (0.25 * 4.0 + 0.75 * 8.0)).abs() < 1e-12);
    }
}
