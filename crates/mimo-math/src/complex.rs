//! Complex scalar arithmetic.
//!
//! [`Complex64`] is a minimal `f64`-based complex number. It intentionally only
//! implements the operations the rest of the workspace needs (arithmetic,
//! conjugation, modulus, argument, polar construction) rather than mirroring a
//! full `num-complex` API.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use mimo_math::Complex64;
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// assert_eq!((a + b).re, 4.0);
/// assert_eq!((a * b).im, 5.0);
/// ```
/// The layout is `repr(C)` — `re` then `im` — so a `&[Complex64]` can be
/// viewed as interleaved `re, im` `f64` memory by the SIMD kernels of
/// [`crate::kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    ///
    /// ```
    /// use mimo_math::Complex64;
    /// let c = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(c.re.abs() < 1e-12);
    /// assert!((c.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{i theta}` — a unit-modulus complex exponential.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus, cheaper than [`Complex64::abs`] when only comparisons are needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns [`Complex64::ZERO`] when `self` is exactly zero; callers that need to
    /// distinguish that case should check [`Complex64::norm_sqr`] first.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        if d == 0.0 {
            Self::ZERO
        } else {
            Self {
                re: self.re / d,
                im: -self.im / d,
            }
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Division really is multiplication by the reciprocal here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn division_and_reciprocal() {
        let a = Complex64::new(1.0, 2.0);
        let one = a * a.recip();
        assert!((one.re - 1.0).abs() < 1e-12);
        assert!(one.im.abs() < 1e-12);
        let q = a / a;
        assert!((q.re - 1.0).abs() < 1e-12);
        assert!(q.im.abs() < 1e-12);
        assert_eq!(Complex64::ZERO.recip(), Complex64::ZERO);
    }

    #[test]
    fn modulus_argument_polar_roundtrip() {
        let c = Complex64::from_polar(2.5, 0.7);
        assert!((c.abs() - 2.5).abs() < 1e-12);
        assert!((c.arg() - 0.7).abs() < 1e-12);
        let unit = Complex64::cis(-1.2);
        assert!((unit.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(3.0, -5.0);
        assert_eq!(a.conj().conj(), a);
        let prod = a * a.conj();
        assert!((prod.re - a.norm_sqr()).abs() < 1e-12);
        assert!(prod.im.abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        let a = Complex64::new(-3.0, 4.0);
        let s = a.sqrt();
        let sq = s * s;
        assert!((sq.re - a.re).abs() < 1e-10);
        assert!((sq.im - a.im).abs() < 1e-10);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        let s = format!("{}", Complex64::new(1.0, -2.0));
        assert!(s.contains('-'));
        let s2 = format!("{}", Complex64::new(1.0, 2.0));
        assert!(s2.contains('+'));
    }

    proptest! {
        #[test]
        fn prop_mul_commutes(a_re in -1e3f64..1e3, a_im in -1e3f64..1e3,
                             b_re in -1e3f64..1e3, b_im in -1e3f64..1e3) {
            let a = Complex64::new(a_re, a_im);
            let b = Complex64::new(b_re, b_im);
            let ab = a * b;
            let ba = b * a;
            prop_assert!((ab.re - ba.re).abs() < 1e-6);
            prop_assert!((ab.im - ba.im).abs() < 1e-6);
        }

        #[test]
        fn prop_abs_multiplicative(a_re in -1e2f64..1e2, a_im in -1e2f64..1e2,
                                   b_re in -1e2f64..1e2, b_im in -1e2f64..1e2) {
            let a = Complex64::new(a_re, a_im);
            let b = Complex64::new(b_re, b_im);
            prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6);
        }

        #[test]
        fn prop_conj_distributes_over_mul(a_re in -1e2f64..1e2, a_im in -1e2f64..1e2,
                                          b_re in -1e2f64..1e2, b_im in -1e2f64..1e2) {
            let a = Complex64::new(a_re, a_im);
            let b = Complex64::new(b_re, b_im);
            let lhs = (a * b).conj();
            let rhs = a.conj() * b.conj();
            prop_assert!((lhs.re - rhs.re).abs() < 1e-6);
            prop_assert!((lhs.im - rhs.im).abs() < 1e-6);
        }
    }
}
