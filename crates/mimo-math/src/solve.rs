//! Linear solves, inverses and pseudo-inverses for small complex systems.
//!
//! The zero-forcing precoder of the BER link simulation needs
//! `W = H_eq (H_eq^H H_eq)^{-1}` (Section 5.2.1 of the paper); the Gram matrix
//! there is at most `Ns x Ns` with `Ns <= 8`, so partial-pivoting LU is exact
//! enough and trivially fast.

use crate::complex::Complex64;
use crate::kernel;
use crate::matrix::CMatrix;
use crate::workspace::Workspace;

/// Error produced by linear solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (or numerically so) and cannot be inverted.
    Singular,
    /// The operands have incompatible shapes.
    ShapeMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::ShapeMismatch => write!(f, "operand shapes are incompatible"),
        }
    }
}

impl std::error::Error for SolveError {}

/// The LU elimination and back-substitution core shared by the allocating and
/// workspace entry points.
///
/// `lu` must hold a row-major copy of the `n x n` system matrix and `rhs` a
/// row-major copy of the `n x m` right-hand side; both are destroyed. The
/// solution is written into `out` (reshaped, storage reused). The elimination
/// row updates dispatch through [`kernel::caxpy_sub`]; under the scalar
/// backend the sweep is the original partial-pivoting arithmetic, so results
/// are bit-identical to the historical allocating implementation.
fn lu_solve_core(
    lu: &mut [Complex64],
    rhs: &mut [Complex64],
    n: usize,
    m: usize,
    out: &mut CMatrix,
) -> Result<(), SolveError> {
    let kern = kernel::selected();
    for k in 0..n {
        // Pivot selection.
        let mut pivot_row = k;
        let mut pivot_mag = lu[k * n + k].abs();
        for r in (k + 1)..n {
            let mag = lu[r * n + k].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag < 1e-300 {
            return Err(SolveError::Singular);
        }
        if pivot_row != k {
            for c in 0..n {
                lu.swap(k * n + c, pivot_row * n + c);
            }
            for c in 0..m {
                rhs.swap(k * m + c, pivot_row * m + c);
            }
        }
        let pivot = lu[k * n + k];
        for r in (k + 1)..n {
            let factor = lu[r * n + k] / pivot;
            if factor.norm_sqr() == 0.0 {
                continue;
            }
            // Row r lies strictly after row k, so splitting at r's start
            // yields disjoint views of the pivot row and the updated row.
            let (lu_head, lu_tail) = lu.split_at_mut(r * n);
            kernel::caxpy_sub(
                kern,
                factor,
                &lu_head[k * n + k..(k + 1) * n],
                &mut lu_tail[k..n],
            );
            let (rhs_head, rhs_tail) = rhs.split_at_mut(r * m);
            kernel::caxpy_sub(
                kern,
                factor,
                &rhs_head[k * m..(k + 1) * m],
                &mut rhs_tail[..m],
            );
        }
    }

    // Back substitution.
    out.reshape_zeroed(n, m);
    for c in 0..m {
        for r in (0..n).rev() {
            let mut acc = rhs[r * m + c];
            for k in (r + 1)..n {
                acc -= lu[r * n + k] * out[(k, c)];
            }
            out[(r, c)] = acc / lu[r * n + r];
        }
    }
    Ok(())
}

/// Solves `A X = B` for a square `A` using LU decomposition with partial pivoting.
///
/// Allocates scratch and result internally; hot loops should hold a
/// [`Workspace`] and call [`solve_into`] instead.
///
/// # Errors
/// Returns [`SolveError::ShapeMismatch`] if `A` is not square or the row counts
/// differ, and [`SolveError::Singular`] when a pivot underflows.
pub fn solve(a: &CMatrix, b: &CMatrix) -> Result<CMatrix, SolveError> {
    let mut ws = Workspace::new();
    let mut out = CMatrix::zeros(1, 1);
    solve_into(a, b, &mut ws, &mut out)?;
    Ok(out)
}

/// Solves `A X = B` into `out`, drawing all scratch from `ws`.
///
/// After warm-up the call performs no heap allocation. Results are
/// bit-identical to [`solve`].
///
/// # Errors
/// Same contract as [`solve`].
pub fn solve_into(
    a: &CMatrix,
    b: &CMatrix,
    ws: &mut Workspace,
    out: &mut CMatrix,
) -> Result<(), SolveError> {
    let n = a.rows();
    if a.cols() != n || b.rows() != n {
        return Err(SolveError::ShapeMismatch);
    }
    let m = b.cols();
    let lu = Workspace::grab(&mut ws.lu, n * n);
    lu.copy_from_slice(a.as_slice());
    let rhs = Workspace::grab(&mut ws.rhs, n * m);
    rhs.copy_from_slice(b.as_slice());
    lu_solve_core(lu, rhs, n, m, out)
}

/// Inverts the square matrix `src` into `out` using the given LU scratch
/// buffers: copy into `lu`, identity right-hand side in `rhs`, one
/// [`lu_solve_core`] pass. Shared by every `_into` entry point that needs an
/// inverse so the scratch-setup sequence exists exactly once.
fn invert_core(
    src: &CMatrix,
    lu: &mut Vec<Complex64>,
    rhs: &mut Vec<Complex64>,
    out: &mut CMatrix,
) -> Result<(), SolveError> {
    let n = src.rows();
    let lu_buf = Workspace::grab(lu, n * n);
    lu_buf.copy_from_slice(src.as_slice());
    let rhs_buf = Workspace::grab(rhs, n * n);
    for i in 0..n {
        rhs_buf[i * n + i] = Complex64::ONE;
    }
    lu_solve_core(lu_buf, rhs_buf, n, n, out)
}

/// Inverse of a square complex matrix.
///
/// # Errors
/// Returns [`SolveError::Singular`] for singular inputs and
/// [`SolveError::ShapeMismatch`] for non-square inputs.
pub fn inverse(a: &CMatrix) -> Result<CMatrix, SolveError> {
    let mut ws = Workspace::new();
    let mut out = CMatrix::zeros(1, 1);
    inverse_into(a, &mut ws, &mut out)?;
    Ok(out)
}

/// Inverse of a square complex matrix into `out`, drawing scratch from `ws`.
///
/// The identity right-hand side is materialized directly in the workspace, so
/// the call performs no heap allocation after warm-up.
///
/// # Errors
/// Same contract as [`inverse`].
pub fn inverse_into(a: &CMatrix, ws: &mut Workspace, out: &mut CMatrix) -> Result<(), SolveError> {
    if a.cols() != a.rows() {
        return Err(SolveError::ShapeMismatch);
    }
    invert_core(a, &mut ws.lu, &mut ws.rhs, out)
}

/// Right Moore–Penrose style pseudo-inverse used by the zero-forcing precoder:
/// `pinv(A) = A (A^H A)^{-1}` for a tall full-column-rank `A` — note this is the
/// *paper's* ZF expression `W = H_eq (H_eq^H H_eq)^{-1}` applied verbatim.
///
/// # Errors
/// Returns [`SolveError::Singular`] when `A^H A` is singular (rank-deficient `A`).
pub fn zf_pseudo_inverse(a: &CMatrix) -> Result<CMatrix, SolveError> {
    let mut ws = Workspace::new();
    let mut out = CMatrix::zeros(1, 1);
    zf_pseudo_inverse_into(a, &mut ws, &mut out)?;
    Ok(out)
}

/// Zero-forcing pseudo-inverse into `out`, drawing every intermediate (Gram
/// matrix, its inverse, LU scratch) from `ws`.
///
/// This is the per-subcarrier precoder hot path: with a long-lived workspace
/// the whole `W = A (A^H A)^{-1}` computation allocates nothing after warm-up.
///
/// # Errors
/// Same contract as [`zf_pseudo_inverse`].
pub fn zf_pseudo_inverse_into(
    a: &CMatrix,
    ws: &mut Workspace,
    out: &mut CMatrix,
) -> Result<(), SolveError> {
    let Workspace {
        ma, mb, lu, rhs, ..
    } = ws;
    a.hermitian_matmul_into(a, ma);
    invert_core(ma, lu, rhs, mb)?;
    a.matmul_into(mb, out);
    Ok(())
}

/// Linear MMSE receive filter `(G^H G + sigma^2 I)^{-1} G^H` into `out`,
/// drawing every intermediate from `ws`.
///
/// `g` is the effective channel (`rx x streams`); the regularizer is
/// `max(noise_variance, 1e-9)` to keep the Gram matrix invertible at very high
/// SNR. This is the per-subcarrier equalizer hot path of the link simulator.
///
/// # Errors
/// Returns [`SolveError::Singular`] when the regularized Gram matrix is
/// numerically singular.
pub fn mmse_filter_into(
    g: &CMatrix,
    noise_variance: f64,
    ws: &mut Workspace,
    out: &mut CMatrix,
) -> Result<(), SolveError> {
    let Workspace {
        ma, mb, lu, rhs, ..
    } = ws;
    g.hermitian_matmul_into(g, ma);
    let n = ma.rows();
    for i in 0..n {
        ma[(i, i)] += Complex64::from_real(noise_variance.max(1e-9));
    }
    invert_core(ma, lu, rhs, mb)?;
    // out = inv * G^H, computed without materializing G^H:
    // out[r, c] = sum_k inv[r, k] * conj(g[c, k]) — a conjugated dot product
    // of two contiguous rows, dispatched through the kernel backend.
    let kern = kernel::selected();
    out.reshape_zeroed(n, g.rows());
    for r in 0..n {
        let inv_row = &mb.as_slice()[r * n..(r + 1) * n];
        for c in 0..g.rows() {
            let g_row = &g.as_slice()[c * n..(c + 1) * n];
            out[(r, c)] = kernel::cdotc(kern, inv_row, g_row);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_matrix(rng: &mut impl rand::Rng, m: usize, n: usize) -> CMatrix {
        CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_matrix(&mut rng, 4, 4);
        let x_true = random_matrix(&mut rng, 4, 2);
        let b = a.matmul(&x_true);
        let x = solve(&a, &b).expect("solvable");
        assert!(x.sub(&x_true).max_abs() < 1e-9);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(19);
        for n in 1..=5 {
            let a = random_matrix(&mut rng, n, n);
            let inv = inverse(&a).expect("invertible with overwhelming probability");
            let prod = a.matmul(&inv);
            assert!(prod.sub(&CMatrix::identity(n)).max_abs() < 1e-8, "n={n}");
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = CMatrix::from_fn(2, 2, |_, _| Complex64::ONE);
        assert_eq!(inverse(&a).unwrap_err(), SolveError::Singular);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = CMatrix::zeros(2, 3);
        assert_eq!(inverse(&a).unwrap_err(), SolveError::ShapeMismatch);
        let b = CMatrix::zeros(3, 1);
        let sq = CMatrix::identity(2);
        assert_eq!(solve(&sq, &b).unwrap_err(), SolveError::ShapeMismatch);
    }

    #[test]
    fn zf_pinv_inverts_square_matrices() {
        // For an invertible square A, A (A^H A)^{-1} = A^{-H}; check A^H * pinv = I.
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_matrix(&mut rng, 3, 3);
        let w = zf_pseudo_inverse(&a).expect("full rank");
        let prod = a.hermitian().matmul(&w);
        assert!(prod.sub(&CMatrix::identity(3)).max_abs() < 1e-8);
    }

    #[test]
    fn zf_pinv_zero_forces_tall_matrix() {
        // For tall full-rank A (m x n, m > n), A^H * (A (A^H A)^{-1}) = I_n.
        let mut rng = StdRng::seed_from_u64(29);
        let a = random_matrix(&mut rng, 5, 3);
        let w = zf_pseudo_inverse(&a).expect("full column rank");
        let prod = a.hermitian().matmul(&w);
        assert!(prod.sub(&CMatrix::identity(3)).max_abs() < 1e-8);
    }

    #[test]
    fn workspace_variants_match_allocating_versions() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ws = Workspace::new();
        let mut out = CMatrix::zeros(1, 1);
        for n in 1..=5 {
            let a = random_matrix(&mut rng, n, n);
            let b = random_matrix(&mut rng, n, 2);
            solve_into(&a, &b, &mut ws, &mut out).unwrap();
            assert_eq!(out, solve(&a, &b).unwrap(), "solve n={n}");
            inverse_into(&a, &mut ws, &mut out).unwrap();
            assert_eq!(out, inverse(&a).unwrap(), "inverse n={n}");
            let tall = random_matrix(&mut rng, n + 2, n);
            zf_pseudo_inverse_into(&tall, &mut ws, &mut out).unwrap();
            assert_eq!(out, zf_pseudo_inverse(&tall).unwrap(), "zf n={n}");
        }
    }

    #[test]
    fn mmse_filter_matches_composed_expression() {
        let mut rng = StdRng::seed_from_u64(37);
        let g = random_matrix(&mut rng, 4, 2);
        let mut ws = Workspace::new();
        let mut out = CMatrix::zeros(1, 1);
        mmse_filter_into(&g, 0.01, &mut ws, &mut out).unwrap();
        let gram = g.hermitian().matmul(&g);
        let regularized = gram.add(&CMatrix::identity(2).scale_real(0.01));
        let expect = inverse(&regularized).unwrap().matmul(&g.hermitian());
        assert!(out.sub(&expect).max_abs() < 1e-10);
        assert_eq!(out.shape(), (2, 4));
    }

    #[test]
    fn error_display_strings() {
        assert!(format!("{}", SolveError::Singular).contains("singular"));
        assert!(format!("{}", SolveError::ShapeMismatch).contains("shape"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_solve_consistency(n in 1usize..5, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, n, n);
            let b = random_matrix(&mut rng, n, 1);
            if let Ok(x) = solve(&a, &b) {
                let residual = a.matmul(&x).sub(&b).max_abs();
                prop_assert!(residual < 1e-7);
            }
        }

        #[test]
        fn prop_inverse_involution(n in 1usize..5, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, n, n);
            if let Ok(inv) = inverse(&a) {
                if let Ok(back) = inverse(&inv) {
                    prop_assert!(back.sub(&a).max_abs() < 1e-6);
                }
            }
        }
    }
}
