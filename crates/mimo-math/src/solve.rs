//! Linear solves, inverses and pseudo-inverses for small complex systems.
//!
//! The zero-forcing precoder of the BER link simulation needs
//! `W = H_eq (H_eq^H H_eq)^{-1}` (Section 5.2.1 of the paper); the Gram matrix
//! there is at most `Ns x Ns` with `Ns <= 8`, so partial-pivoting LU is exact
//! enough and trivially fast.

use crate::matrix::CMatrix;

/// Error produced by linear solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (or numerically so) and cannot be inverted.
    Singular,
    /// The operands have incompatible shapes.
    ShapeMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::ShapeMismatch => write!(f, "operand shapes are incompatible"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves `A X = B` for a square `A` using LU decomposition with partial pivoting.
///
/// # Errors
/// Returns [`SolveError::ShapeMismatch`] if `A` is not square or the row counts
/// differ, and [`SolveError::Singular`] when a pivot underflows.
pub fn solve(a: &CMatrix, b: &CMatrix) -> Result<CMatrix, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.rows() != n {
        return Err(SolveError::ShapeMismatch);
    }
    let m = b.cols();

    // Augmented Gaussian elimination with partial pivoting on |.|.
    let mut lu = a.clone();
    let mut rhs = b.clone();
    for k in 0..n {
        // Pivot selection.
        let mut pivot_row = k;
        let mut pivot_mag = lu[(k, k)].abs();
        for r in (k + 1)..n {
            let mag = lu[(r, k)].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag < 1e-300 {
            return Err(SolveError::Singular);
        }
        if pivot_row != k {
            for c in 0..n {
                let tmp = lu[(k, c)];
                lu[(k, c)] = lu[(pivot_row, c)];
                lu[(pivot_row, c)] = tmp;
            }
            for c in 0..m {
                let tmp = rhs[(k, c)];
                rhs[(k, c)] = rhs[(pivot_row, c)];
                rhs[(pivot_row, c)] = tmp;
            }
        }
        let pivot = lu[(k, k)];
        for r in (k + 1)..n {
            let factor = lu[(r, k)] / pivot;
            if factor.norm_sqr() == 0.0 {
                continue;
            }
            for c in k..n {
                let sub = factor * lu[(k, c)];
                lu[(r, c)] -= sub;
            }
            for c in 0..m {
                let sub = factor * rhs[(k, c)];
                rhs[(r, c)] -= sub;
            }
        }
    }

    // Back substitution.
    let mut x = CMatrix::zeros(n, m);
    for c in 0..m {
        for r in (0..n).rev() {
            let mut acc = rhs[(r, c)];
            for k in (r + 1)..n {
                acc -= lu[(r, k)] * x[(k, c)];
            }
            x[(r, c)] = acc / lu[(r, r)];
        }
    }
    Ok(x)
}

/// Inverse of a square complex matrix.
///
/// # Errors
/// Returns [`SolveError::Singular`] for singular inputs and
/// [`SolveError::ShapeMismatch`] for non-square inputs.
pub fn inverse(a: &CMatrix) -> Result<CMatrix, SolveError> {
    if a.rows() != a.cols() {
        return Err(SolveError::ShapeMismatch);
    }
    solve(a, &CMatrix::identity(a.rows()))
}

/// Right Moore–Penrose style pseudo-inverse used by the zero-forcing precoder:
/// `pinv(A) = A (A^H A)^{-1}` for a tall full-column-rank `A` — note this is the
/// *paper's* ZF expression `W = H_eq (H_eq^H H_eq)^{-1}` applied verbatim.
///
/// # Errors
/// Returns [`SolveError::Singular`] when `A^H A` is singular (rank-deficient `A`).
pub fn zf_pseudo_inverse(a: &CMatrix) -> Result<CMatrix, SolveError> {
    let gram = a.hermitian().matmul(a);
    let gram_inv = inverse(&gram)?;
    Ok(a.matmul(&gram_inv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_matrix(rng: &mut impl rand::Rng, m: usize, n: usize) -> CMatrix {
        CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_matrix(&mut rng, 4, 4);
        let x_true = random_matrix(&mut rng, 4, 2);
        let b = a.matmul(&x_true);
        let x = solve(&a, &b).expect("solvable");
        assert!(x.sub(&x_true).max_abs() < 1e-9);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(19);
        for n in 1..=5 {
            let a = random_matrix(&mut rng, n, n);
            let inv = inverse(&a).expect("invertible with overwhelming probability");
            let prod = a.matmul(&inv);
            assert!(prod.sub(&CMatrix::identity(n)).max_abs() < 1e-8, "n={n}");
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = CMatrix::from_fn(2, 2, |_, _| Complex64::ONE);
        assert_eq!(inverse(&a).unwrap_err(), SolveError::Singular);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = CMatrix::zeros(2, 3);
        assert_eq!(inverse(&a).unwrap_err(), SolveError::ShapeMismatch);
        let b = CMatrix::zeros(3, 1);
        let sq = CMatrix::identity(2);
        assert_eq!(solve(&sq, &b).unwrap_err(), SolveError::ShapeMismatch);
    }

    #[test]
    fn zf_pinv_inverts_square_matrices() {
        // For an invertible square A, A (A^H A)^{-1} = A^{-H}; check A^H * pinv = I.
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_matrix(&mut rng, 3, 3);
        let w = zf_pseudo_inverse(&a).expect("full rank");
        let prod = a.hermitian().matmul(&w);
        assert!(prod.sub(&CMatrix::identity(3)).max_abs() < 1e-8);
    }

    #[test]
    fn zf_pinv_zero_forces_tall_matrix() {
        // For tall full-rank A (m x n, m > n), A^H * (A (A^H A)^{-1}) = I_n.
        let mut rng = StdRng::seed_from_u64(29);
        let a = random_matrix(&mut rng, 5, 3);
        let w = zf_pseudo_inverse(&a).expect("full column rank");
        let prod = a.hermitian().matmul(&w);
        assert!(prod.sub(&CMatrix::identity(3)).max_abs() < 1e-8);
    }

    #[test]
    fn error_display_strings() {
        assert!(format!("{}", SolveError::Singular).contains("singular"));
        assert!(format!("{}", SolveError::ShapeMismatch).contains("shape"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_solve_consistency(n in 1usize..5, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, n, n);
            let b = random_matrix(&mut rng, n, 1);
            if let Ok(x) = solve(&a, &b) {
                let residual = a.matmul(&x).sub(&b).max_abs();
                prop_assert!(residual < 1e-7);
            }
        }

        #[test]
        fn prop_inverse_involution(n in 1usize..5, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, n, n);
            if let Ok(inv) = inverse(&a) {
                if let Ok(back) = inverse(&inv) {
                    prop_assert!(back.sub(&a).max_abs() < 1e-6);
                }
            }
        }
    }
}
