//! One-shot startup autotuning of GEMM blocking parameters.
//!
//! The f32 and int8 GEMM arms block their inner-dimension loop so the
//! streamed weight panel stays cache-resident across the batch, and the int8
//! arms optionally walk 4-row panels so one loaded weight vector feeds four
//! accumulators. The best block sizes depend on the host's cache hierarchy,
//! so instead of hard-coding them this module times a handful of candidates
//! on a representative tail-shaped GEMM **once per process** (lazily, at the
//! first dispatched GEMM) and pins the winner.
//!
//! `SPLITBEAM_TUNE=off` skips the probe and pins [`DEFAULT`] — the constants
//! the kernels shipped with — for strictly reproducible run-to-run perf. Any
//! other value (or unset) probes.
//!
//! Autotuning can never change *results*, only speed: the int8 arms
//! accumulate exact `i32` sums (associative), and the f32 AVX2 arm keeps one
//! FMA chain per output element whose accumulator round-trips memory
//! losslessly between blocks, so every candidate produces bit-identical
//! output. The kernel test suite pins both properties.

use std::sync::OnceLock;

/// Blocking parameters shared by the dispatched GEMM arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneParams {
    /// Inner-dimension rows per block of the f32 AVX2 GEMM.
    pub f32_k_block: usize,
    /// 4-deep k-groups per block of the int8 arms (a block spans
    /// `4 * int8_group_block` inner-dimension rows).
    pub int8_group_block: usize,
    /// Whether the int8 arms use the 4-row output panel (one weight load
    /// feeding four accumulators) or plain row-at-a-time panels.
    pub int8_panel4: bool,
    /// `true` when these values came from the startup probe, `false` when
    /// pinned to the shipped constants (`SPLITBEAM_TUNE=off`, non-SIMD hosts).
    pub probed: bool,
}

/// The shipped constants: the blocking the kernels used before autotuning.
pub const DEFAULT: TuneParams = TuneParams {
    f32_k_block: 16,
    int8_group_block: 8,
    int8_panel4: true,
    probed: false,
};

/// The process-wide blocking parameters: resolved by the one-shot probe on
/// first use (or pinned to [`DEFAULT`] under `SPLITBEAM_TUNE=off`), then a
/// cheap shared read forever after.
pub fn params() -> &'static TuneParams {
    static PARAMS: OnceLock<TuneParams> = OnceLock::new();
    PARAMS.get_or_init(|| compute(tuning_off()))
}

/// `SPLITBEAM_TUNE=off` (case-insensitive) pins the shipped constants; every
/// other value — including malformed ones — keeps the probe enabled.
fn tuning_off() -> bool {
    matches!(
        crate::env::raw("SPLITBEAM_TUNE")
            .map(|v| v.to_ascii_lowercase())
            .as_deref(),
        Some("off")
    )
}

/// Resolves the parameters: [`DEFAULT`] when disabled or on hosts without the
/// SIMD arms (the scalar loops take no blocking), otherwise the probe winner.
fn compute(disabled: bool) -> TuneParams {
    if disabled {
        return DEFAULT;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if super::avx2_fma_available() || super::int8::avx2_available() {
            return probe();
        }
    }
    DEFAULT
}

/// Times each candidate on a tail-shaped workload (best of three runs after a
/// warm-up) and returns the fastest blocking per arm.
#[cfg(target_arch = "x86_64")]
fn probe() -> TuneParams {
    use std::time::Instant;

    // Representative of the tail layers: a modest batch against a weight
    // panel much larger than L1 but smaller than L2, so blocking choices
    // actually move the needle without making the probe slow (a few ms
    // total).
    const ROWS: usize = 8;
    const K: usize = 384;
    const N: usize = 512;
    // Best-of-(REPS-1) per candidate (the first rep only warms caches): on a
    // busy single-core host a scheduler hiccup in a small sample can hand a
    // slow blocking a lucky minimum and pin it for the whole process, so
    // spend a few extra reps to make the winner stable.
    const REPS: usize = 10;

    let mut best = DEFAULT;
    best.probed = true;

    // Reps are interleaved round-robin across candidates (not candidate by
    // candidate), so frequency scaling or a background burst drifts over
    // every candidate equally instead of handing whichever candidate ran
    // during the quiet window a spuriously fast minimum.
    if super::avx2_fma_available() {
        const K_BLOCKS: [usize; 4] = [8, 16, 32, 64];
        let a: Vec<f32> = (0..ROWS * K)
            .map(|i| ((i % 251) as f32) * 0.01 - 1.2)
            .collect();
        let b: Vec<f32> = (0..K * N)
            .map(|i| ((i % 509) as f32) * 0.004 - 1.0)
            .collect();
        let mut out = vec![0.0f32; ROWS * N];
        let mut candidate_ns = [u128::MAX; K_BLOCKS.len()];
        for rep in 0..REPS {
            for (slot, &k_block) in candidate_ns.iter_mut().zip(&K_BLOCKS) {
                out.fill(0.0);
                let t = Instant::now();
                // SAFETY: this probe only runs after `avx2_fma_available()`
                // (checked by the caller); the buffers were sized ROWS*K,
                // K*N and ROWS*N above.
                unsafe { super::avx2::gemm_f32_avx2(&a, &b, &mut out, ROWS, K, N, k_block) };
                let ns = t.elapsed().as_nanos();
                if rep > 0 {
                    *slot = (*slot).min(ns);
                }
            }
        }
        let mut best_ns = u128::MAX;
        for (&ns, &k_block) in candidate_ns.iter().zip(&K_BLOCKS) {
            if ns < best_ns {
                best_ns = ns;
                best.f32_k_block = k_block;
            }
        }
    }

    if super::int8::avx2_available() {
        // `usize::MAX / 4` effectively disables k-blocking: one in-register
        // accumulation sweep per column tile, output folded exactly once.
        const GROUP_BLOCKS: [usize; 5] = [4, 8, 16, 64, usize::MAX / 4];
        const PANELS: [bool; 2] = [true, false];
        let k_pad = super::int8::padded_k(K);
        let a: Vec<u8> = (0..ROWS * k_pad).map(|i| (i % 128) as u8).collect();
        let b: Vec<i8> = (0..k_pad * N)
            .map(|i| ((i % 255) as i64 - 127) as i8)
            .collect();
        let mut out = vec![0i32; ROWS * N];
        let vnni = super::int8::avx512_vnni_available();
        let mut candidate_ns = [[u128::MAX; PANELS.len()]; GROUP_BLOCKS.len()];
        for rep in 0..REPS {
            for (row, &group_block) in candidate_ns.iter_mut().zip(&GROUP_BLOCKS) {
                for (slot, &panel4) in row.iter_mut().zip(&PANELS) {
                    out.fill(0);
                    let t = Instant::now();
                    // SAFETY: the caller checked `avx2_available()` and
                    // `vnni` selects the VNNI body only when
                    // `avx512_vnni_available()`; buffer shapes match the
                    // ROWS/k_pad/N sizing above.
                    unsafe {
                        if vnni {
                            super::int8::x86::gemm_vnni(
                                &a,
                                &b,
                                &mut out,
                                ROWS,
                                k_pad,
                                N,
                                group_block,
                                panel4,
                            );
                        } else {
                            super::int8::x86::gemm_avx2(
                                &a,
                                &b,
                                &mut out,
                                ROWS,
                                k_pad,
                                N,
                                group_block,
                                panel4,
                            );
                        }
                    }
                    let ns = t.elapsed().as_nanos();
                    if rep > 0 {
                        *slot = (*slot).min(ns);
                    }
                }
            }
        }
        let mut best_ns = u128::MAX;
        for (row, &group_block) in candidate_ns.iter().zip(&GROUP_BLOCKS) {
            for (&ns, &panel4) in row.iter().zip(&PANELS) {
                if ns < best_ns {
                    best_ns = ns;
                    best.int8_group_block = group_block;
                    best.int8_panel4 = panel4;
                }
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pins_the_shipped_constants() {
        let pinned = compute(true);
        assert_eq!(pinned, DEFAULT);
        assert!(!pinned.probed);
        assert_eq!(pinned.f32_k_block, 16);
    }

    #[test]
    fn probe_picks_from_the_candidate_sets() {
        let p = compute(false);
        #[cfg(target_arch = "x86_64")]
        if super::super::int8::avx2_available() {
            assert!(p.probed);
            assert!([8, 16, 32, 64].contains(&p.f32_k_block));
            assert!([4, 8, 16, 64, usize::MAX / 4].contains(&p.int8_group_block));
        }
        // On non-SIMD hosts the probe is skipped entirely.
        if !super::super::avx2_fma_available() && !super::super::int8::avx2_available() {
            assert_eq!(p, DEFAULT);
        }
    }

    #[test]
    fn params_is_cached_and_stable() {
        let a = *params();
        let b = *params();
        assert_eq!(a, b);
        assert!(a.f32_k_block >= 8 && a.int8_group_block >= 1);
    }
}
