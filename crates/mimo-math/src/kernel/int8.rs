//! Third kernel tier: integer (u8 x i8 -> i32) GEMM for quantized tail
//! weights.
//!
//! The f32 tail GEMM is memory-bound — BENCH_PR3 measured only 1.51x from
//! AVX2+FMA on the 545x4356 tail layer because the weight matrix streams from
//! DRAM every batch. Quantizing weights to int8 shrinks that stream 4x, and
//! this module provides the matching integer microkernels behind the same
//! `SPLITBEAM_KERNEL` seam as the f32 tier:
//!
//! * **scalar** — a verbatim reference loop. Every wider arm must match it
//!   **bit-exactly**: all arms accumulate the same `u8 x i8` products into
//!   `i32`, and integer addition is associative, so equality is exact by
//!   construction (and pinned by tests), not by tolerance.
//! * **AVX2 `maddubs`** — `_mm256_maddubs_epi16` + `_mm256_madd_epi16`
//!   per 4-deep group, 8 columns per vector.
//! * **AVX-512 VNNI** — `_mm512_dpbusd_epi32`, 16 columns per vector, one
//!   instruction per 4-deep group (runtime-detected `avx512f/bw/vl/vnni`).
//!
//! # Data layout
//!
//! All arms consume the same **K4-packed** weight layout, the native shape of
//! the VNNI dot instruction: quantized weights `wq` (row-major `k x n`,
//! row = input channel, column = output channel) are regrouped so the 4
//! consecutive input channels of one output column are adjacent:
//!
//! ```text
//! packed[(g * n + j) * 4 + q] = wq[(4g + q) * n + j]   (zero-padded past k)
//! ```
//!
//! Activations are quantized to **u7** (`0..=127`) per row: with both
//! operands bounded by 127, a `maddubs` pair sum is at most `2*127*127 =
//! 32258 < i16::MAX`, so the AVX2 arm can never saturate and stays exact.
//! Activation rows are zero-padded to [`padded_k`] bytes; the padded products
//! are exact zeros in every arm.
//!
//! # Overflow
//!
//! A full `i32` accumulator over `k` groups is bounded by `127 * 127 * k`;
//! the largest tail layer in the workspace has `k = 4356`, giving `~7.0e7`,
//! five orders of magnitude inside `i32` range.

use super::KernelChoice;
use std::sync::atomic::{AtomicU8, Ordering};

/// A concrete integer-GEMM backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Int8Kernel {
    /// Verbatim scalar reference — always available, the bit-exactness anchor.
    Scalar,
    /// AVX2 `maddubs`-style kernel (x86_64, runtime-detected `avx2`).
    Avx2Maddubs,
    /// AVX-512 VNNI `dpbusd` kernel (x86_64, runtime-detected
    /// `avx512f/bw/vl/vnni`).
    Avx512Vnni,
}

impl Int8Kernel {
    /// Stable lower-snake name used in reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            Int8Kernel::Scalar => "scalar",
            Int8Kernel::Avx2Maddubs => "avx2_maddubs",
            Int8Kernel::Avx512Vnni => "avx512_vnni",
        }
    }
}

/// Cached resolution of [`selected_int8`]: 0 = unresolved, 1 = scalar,
/// 2 = AVX2 maddubs, 3 = AVX-512 VNNI.
static RESOLVED_INT8: AtomicU8 = AtomicU8::new(0);

/// Invalidated by [`super::set_kernel`] so an override re-resolves this tier
/// too.
pub(super) fn reset_selected() {
    RESOLVED_INT8.store(0, Ordering::Relaxed);
}

/// `true` when the host CPU supports AVX2 (the `maddubs` arm needs no FMA).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `true` when the host CPU reports AVX-512F (foundation).
pub fn avx512f_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `true` when the host CPU reports AVX-512BW (byte/word ops).
pub fn avx512bw_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512bw")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `true` when the VNNI arm can run: AVX-512 F + BW + VL + VNNI.
pub fn avx512_vnni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512vnni")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves a [`KernelChoice`] to the best integer backend the host supports.
fn resolve_int8(choice: KernelChoice) -> Int8Kernel {
    match choice {
        KernelChoice::Scalar => Int8Kernel::Scalar,
        KernelChoice::Auto => {
            if avx512_vnni_available() {
                Int8Kernel::Avx512Vnni
            } else if avx2_available() {
                Int8Kernel::Avx2Maddubs
            } else {
                Int8Kernel::Scalar
            }
        }
    }
}

/// The integer backend the dispatched quantized paths use right now. Honors
/// the same override / `SPLITBEAM_KERNEL` / CPU-detection chain as
/// [`super::selected`] (so `SPLITBEAM_KERNEL=scalar` pins *both* tiers) and
/// caches the answer behind one relaxed atomic load.
pub fn selected_int8() -> Int8Kernel {
    match RESOLVED_INT8.load(Ordering::Relaxed) {
        1 => Int8Kernel::Scalar,
        2 => Int8Kernel::Avx2Maddubs,
        3 => Int8Kernel::Avx512Vnni,
        _ => {
            let kernel = resolve_int8(super::requested());
            RESOLVED_INT8.store(
                match kernel {
                    Int8Kernel::Scalar => 1,
                    Int8Kernel::Avx2Maddubs => 2,
                    Int8Kernel::Avx512Vnni => 3,
                },
                Ordering::Relaxed,
            );
            kernel
        }
    }
}

/// The activation-row / packed-weight depth for a logical depth `k`: rounded
/// up to a whole number of 4-deep groups.
pub fn padded_k(k: usize) -> usize {
    k.div_ceil(4) * 4
}

/// Packs row-major quantized weights (`k x n`, row = input channel) into the
/// K4 layout shared by every arm: `packed[(g*n + j)*4 + q] = wq[(4g+q)*n + j]`,
/// zero-padded past `k`. The returned buffer has `padded_k(k) * n` bytes.
pub fn pack_weights_k4(wq: &[i8], k: usize, n: usize) -> Vec<i8> {
    assert_eq!(wq.len(), k * n, "pack_weights_k4 shape mismatch");
    let k_pad = padded_k(k);
    let mut packed = vec![0i8; k_pad * n];
    for g in 0..k_pad / 4 {
        for j in 0..n {
            for q in 0..4 {
                let row = 4 * g + q;
                if row < k {
                    packed[(g * n + j) * 4 + q] = wq[row * n + j];
                }
            }
        }
    }
    packed
}

/// The 4-deep group dot product every arm computes: activation quad `g` of
/// row `a` against the packed weight quad at `wbase`.
#[inline]
fn dot4(a: &[u8], g: usize, b: &[i8], wbase: usize) -> i32 {
    i32::from(a[4 * g]) * i32::from(b[wbase])
        + i32::from(a[4 * g + 1]) * i32::from(b[wbase + 1])
        + i32::from(a[4 * g + 2]) * i32::from(b[wbase + 2])
        + i32::from(a[4 * g + 3]) * i32::from(b[wbase + 3])
}

/// Integer GEMM `out = a * b` (overwrite — `out` need not be zeroed): `a` is
/// `rows x k_pad` unsigned u7 activations (row-major, zero-padded), `b` is
/// K4-packed i8 weights for depth `k_pad` over `n` output columns
/// ([`pack_weights_k4`]), `out` is `rows x n` i32.
///
/// The SIMD arms block the inner dimension; the first k-block **stores** its
/// in-register sums and later blocks fold on top, so callers skip a full
/// `out` memset per call without any change in results (integer adds are
/// exact however the accumulation is split).
///
/// Every arm computes identical `i32` sums, so outputs are **bit-identical
/// across backends, batch shapes and blocking** — the property the fused
/// quantized tail path and the sharded server rely on.
///
/// # Panics
/// Panics when `k_pad` is not a multiple of 4 or any slice length disagrees
/// with the dimensions.
pub fn gemm_u8i8_i32(
    kernel: Int8Kernel,
    a: &[u8],
    b: &[i8],
    out: &mut [i32],
    rows: usize,
    k_pad: usize,
    n: usize,
) {
    assert_eq!(k_pad % 4, 0, "gemm_u8i8_i32 depth must be 4-padded");
    assert_eq!(a.len(), rows * k_pad, "gemm_u8i8_i32 lhs length mismatch");
    assert_eq!(b.len(), k_pad * n, "gemm_u8i8_i32 rhs length mismatch");
    assert_eq!(out.len(), rows * n, "gemm_u8i8_i32 out length mismatch");
    match kernel {
        Int8Kernel::Scalar => {
            // The verbatim reference: per output element, ascending groups.
            let groups = k_pad / 4;
            for (a_row, out_row) in a.chunks_exact(k_pad).zip(out.chunks_exact_mut(n)) {
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut acc = 0i32;
                    for g in 0..groups {
                        acc += dot4(a_row, g, b, (g * n + j) * 4);
                    }
                    *o = acc;
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        Int8Kernel::Avx2Maddubs if avx2_available() => {
            let p = super::tune::params();
            // SAFETY: the guard proves AVX2 is present; `rows`/`k_pad`/`n`
            // describe `a`/`b`/`out` exactly per the asserts above.
            unsafe { x86::gemm_avx2(a, b, out, rows, k_pad, n, p.int8_group_block, p.int8_panel4) }
        }
        #[cfg(target_arch = "x86_64")]
        Int8Kernel::Avx512Vnni if avx512_vnni_available() => {
            let p = super::tune::params();
            // SAFETY: the guard proves AVX-512 VNNI is present; the shape
            // arguments describe `a`/`b`/`out` exactly per the asserts above.
            unsafe { x86::gemm_vnni(a, b, out, rows, k_pad, n, p.int8_group_block, p.int8_panel4) }
        }
        #[allow(unreachable_patterns)]
        _ => gemm_u8i8_i32(Int8Kernel::Scalar, a, b, out, rows, k_pad, n),
    }
}

#[cfg(target_arch = "x86_64")]
pub(super) mod x86 {
    use core::arch::x86_64::{
        __m256i, __m512i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16,
        _mm256_maddubs_epi16, _mm256_set1_epi16, _mm256_set1_epi32, _mm256_setzero_si256,
        _mm256_storeu_si256, _mm512_add_epi32, _mm512_dpbusd_epi32, _mm512_loadu_si512,
        _mm512_set1_epi32, _mm512_setzero_si512, _mm512_storeu_si512,
    };

    /// Seeds an accumulator tile: the prior blocks' partial sums when
    /// folding, zero when this is the overwriting first k-block.
    ///
    /// # Safety
    /// Caller must guarantee 8 readable i32 slots at `slot` and AVX2 support.
    #[target_feature(enable = "avx2")]
    unsafe fn seed_avx2(slot: *const i32, fold: bool) -> __m256i {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            if fold {
                _mm256_loadu_si256(slot.cast())
            } else {
                _mm256_setzero_si256()
            }
        }
    }

    /// [`seed_avx2`], 16 i32 lanes wide.
    ///
    /// # Safety
    /// Caller must guarantee 16 readable i32 slots at `slot` and AVX-512F
    /// support.
    #[target_feature(enable = "avx512f")]
    unsafe fn seed_avx512(slot: *const i32, fold: bool) -> __m512i {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            if fold {
                _mm512_loadu_si512(slot.cast())
            } else {
                _mm512_setzero_si512()
            }
        }
    }

    /// Seeds a scalar accumulator under the same fold/overwrite rule.
    ///
    /// # Safety
    /// `slot` must be readable.
    #[inline(always)]
    unsafe fn seed_scalar(slot: *const i32, fold: bool) -> i32 {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            if fold {
                *slot
            } else {
                0
            }
        }
    }

    /// The 4 activation bytes of group `g` as one broadcastable i32 lane —
    /// a raw unaligned load so the hot loops carry no per-byte bounds checks.
    ///
    /// # Safety
    /// Caller must guarantee `4 * g + 3` is in bounds of the row `a` points
    /// into (every caller iterates `g < k_pad / 4` over a `k_pad`-byte row).
    #[inline(always)]
    unsafe fn quad(a: *const u8, g: usize) -> i32 {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe { a.add(4 * g).cast::<i32>().read_unaligned() }
    }

    /// AVX2 `maddubs` arm: outer loop over `group_block`-deep k-group blocks
    /// (the corresponding packed-weight rows stream sequentially and are
    /// reused across the whole batch from cache), middle loop over 4-row
    /// panels when `panel4` (one loaded weight vector feeds four
    /// accumulators), inner loop 8 columns per vector.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and the slice lengths match
    /// `rows x k_pad` / `k_pad x n` / `rows x n` with `k_pad % 4 == 0` (the
    /// public dispatcher asserts both).
    // Every argument is a distinct matrix dimension or blocking parameter;
    // bundling them into a struct would only obscure the GEMM signature.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn gemm_avx2(
        a: &[u8],
        b: &[i8],
        out: &mut [i32],
        rows: usize,
        k_pad: usize,
        n: usize,
        group_block: usize,
        panel4: bool,
    ) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let groups = k_pad / 4;
            let block = group_block.max(1);
            for g0 in (0..groups).step_by(block) {
                let g1 = (g0 + block).min(groups);
                let mut r = 0;
                if panel4 {
                    while r + 4 <= rows {
                        panel4_avx2(
                            &a[r * k_pad..(r + 4) * k_pad],
                            b,
                            &mut out[r * n..(r + 4) * n],
                            k_pad,
                            n,
                            g0,
                            g1,
                        );
                        r += 4;
                    }
                }
                while r < rows {
                    panel1_avx2(
                        &a[r * k_pad..(r + 1) * k_pad],
                        b,
                        &mut out[r * n..(r + 1) * n],
                        n,
                        g0,
                        g1,
                    );
                    r += 1;
                }
            }
        }
    }

    /// Four output rows over groups `g0..g1`: each loaded weight vector feeds
    /// four `maddubs`+`madd` accumulator updates.
    #[target_feature(enable = "avx2")]
    unsafe fn panel4_avx2(
        a: &[u8],
        b: &[i8],
        o: &mut [i32],
        k_pad: usize,
        n: usize,
        g0: usize,
        g1: usize,
    ) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            // The first k-block (g0 == 0) overwrites `out`, later blocks fold on
            // top — so the caller never has to pre-zero the output.
            let fold = g0 != 0;
            let (a0, rest) = a.split_at(k_pad);
            let (a1, rest) = rest.split_at(k_pad);
            let (a2, a3) = rest.split_at(k_pad);
            let (p0, p1, p2, p3) = (a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr());
            let ones = _mm256_set1_epi16(1);
            let bp = b.as_ptr();
            let op = o.as_mut_ptr();
            let mut j = 0;
            // Two 8-column tiles per pass: each broadcast activation quad feeds
            // two weight vectors, halving the broadcast overhead per madd.
            while j + 16 <= n {
                let mut acc00 = seed_avx2(op.add(j), fold);
                let mut acc01 = seed_avx2(op.add(j + 8), fold);
                let mut acc10 = seed_avx2(op.add(n + j), fold);
                let mut acc11 = seed_avx2(op.add(n + j + 8), fold);
                let mut acc20 = seed_avx2(op.add(2 * n + j), fold);
                let mut acc21 = seed_avx2(op.add(2 * n + j + 8), fold);
                let mut acc30 = seed_avx2(op.add(3 * n + j), fold);
                let mut acc31 = seed_avx2(op.add(3 * n + j + 8), fold);
                for g in g0..g1 {
                    let w0: __m256i = _mm256_loadu_si256(bp.add((g * n + j) * 4).cast());
                    let w1: __m256i = _mm256_loadu_si256(bp.add((g * n + j + 8) * 4).cast());
                    let q0 = _mm256_set1_epi32(quad(p0, g));
                    let q1 = _mm256_set1_epi32(quad(p1, g));
                    let q2 = _mm256_set1_epi32(quad(p2, g));
                    let q3 = _mm256_set1_epi32(quad(p3, g));
                    acc00 = _mm256_add_epi32(
                        acc00,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q0, w0), ones),
                    );
                    acc01 = _mm256_add_epi32(
                        acc01,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q0, w1), ones),
                    );
                    acc10 = _mm256_add_epi32(
                        acc10,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q1, w0), ones),
                    );
                    acc11 = _mm256_add_epi32(
                        acc11,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q1, w1), ones),
                    );
                    acc20 = _mm256_add_epi32(
                        acc20,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q2, w0), ones),
                    );
                    acc21 = _mm256_add_epi32(
                        acc21,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q2, w1), ones),
                    );
                    acc30 = _mm256_add_epi32(
                        acc30,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q3, w0), ones),
                    );
                    acc31 = _mm256_add_epi32(
                        acc31,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q3, w1), ones),
                    );
                }
                _mm256_storeu_si256(op.add(j).cast(), acc00);
                _mm256_storeu_si256(op.add(j + 8).cast(), acc01);
                _mm256_storeu_si256(op.add(n + j).cast(), acc10);
                _mm256_storeu_si256(op.add(n + j + 8).cast(), acc11);
                _mm256_storeu_si256(op.add(2 * n + j).cast(), acc20);
                _mm256_storeu_si256(op.add(2 * n + j + 8).cast(), acc21);
                _mm256_storeu_si256(op.add(3 * n + j).cast(), acc30);
                _mm256_storeu_si256(op.add(3 * n + j + 8).cast(), acc31);
                j += 16;
            }
            while j + 8 <= n {
                let mut acc0 = seed_avx2(op.add(j), fold);
                let mut acc1 = seed_avx2(op.add(n + j), fold);
                let mut acc2 = seed_avx2(op.add(2 * n + j), fold);
                let mut acc3 = seed_avx2(op.add(3 * n + j), fold);
                for g in g0..g1 {
                    let w: __m256i = _mm256_loadu_si256(bp.add((g * n + j) * 4).cast());
                    let q0 = _mm256_set1_epi32(quad(p0, g));
                    let q1 = _mm256_set1_epi32(quad(p1, g));
                    let q2 = _mm256_set1_epi32(quad(p2, g));
                    let q3 = _mm256_set1_epi32(quad(p3, g));
                    acc0 = _mm256_add_epi32(
                        acc0,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q0, w), ones),
                    );
                    acc1 = _mm256_add_epi32(
                        acc1,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q1, w), ones),
                    );
                    acc2 = _mm256_add_epi32(
                        acc2,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q2, w), ones),
                    );
                    acc3 = _mm256_add_epi32(
                        acc3,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(q3, w), ones),
                    );
                }
                _mm256_storeu_si256(op.add(j).cast(), acc0);
                _mm256_storeu_si256(op.add(n + j).cast(), acc1);
                _mm256_storeu_si256(op.add(2 * n + j).cast(), acc2);
                _mm256_storeu_si256(op.add(3 * n + j).cast(), acc3);
                j += 8;
            }
            while j < n {
                for (row, ar) in [a0, a1, a2, a3].into_iter().enumerate() {
                    let slot = op.add(row * n + j);
                    let mut acc = seed_scalar(slot, fold);
                    for g in g0..g1 {
                        acc += super::dot4(ar, g, b, (g * n + j) * 4);
                    }
                    *slot = acc;
                }
                j += 1;
            }
        }
    }

    /// One output row over groups `g0..g1`, 8 columns per vector.
    #[target_feature(enable = "avx2")]
    unsafe fn panel1_avx2(a: &[u8], b: &[i8], o: &mut [i32], n: usize, g0: usize, g1: usize) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let fold = g0 != 0;
            let ones = _mm256_set1_epi16(1);
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let op = o.as_mut_ptr();
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = seed_avx2(op.add(j), fold);
                for g in g0..g1 {
                    let w: __m256i = _mm256_loadu_si256(bp.add((g * n + j) * 4).cast());
                    acc = _mm256_add_epi32(
                        acc,
                        _mm256_madd_epi16(
                            _mm256_maddubs_epi16(_mm256_set1_epi32(quad(ap, g)), w),
                            ones,
                        ),
                    );
                }
                _mm256_storeu_si256(op.add(j).cast(), acc);
                j += 8;
            }
            while j < n {
                let slot = op.add(j);
                let mut acc = seed_scalar(slot, fold);
                for g in g0..g1 {
                    acc += super::dot4(a, g, b, (g * n + j) * 4);
                }
                *slot = acc;
                j += 1;
            }
        }
    }

    /// AVX-512 VNNI arm: identical blocking to [`gemm_avx2`], but one
    /// `dpbusd` per 4-deep group over 16 columns.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX-512 F/BW/VL/VNNI and the
    /// slice lengths match (the public dispatcher asserts both).
    // Same GEMM signature rationale as `gemm_avx2`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vnni")]
    pub(crate) unsafe fn gemm_vnni(
        a: &[u8],
        b: &[i8],
        out: &mut [i32],
        rows: usize,
        k_pad: usize,
        n: usize,
        group_block: usize,
        panel4: bool,
    ) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let groups = k_pad / 4;
            let block = group_block.max(1);
            for g0 in (0..groups).step_by(block) {
                let g1 = (g0 + block).min(groups);
                let mut r = 0;
                if panel4 {
                    while r + 4 <= rows {
                        panel4_vnni(
                            &a[r * k_pad..(r + 4) * k_pad],
                            b,
                            &mut out[r * n..(r + 4) * n],
                            k_pad,
                            n,
                            g0,
                            g1,
                        );
                        r += 4;
                    }
                }
                while r < rows {
                    panel1_vnni(
                        &a[r * k_pad..(r + 1) * k_pad],
                        b,
                        &mut out[r * n..(r + 1) * n],
                        n,
                        g0,
                        g1,
                    );
                    r += 1;
                }
            }
        }
    }

    /// Four output rows over groups `g0..g1`, 16 columns per `dpbusd`.
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vnni")]
    unsafe fn panel4_vnni(
        a: &[u8],
        b: &[i8],
        o: &mut [i32],
        k_pad: usize,
        n: usize,
        g0: usize,
        g1: usize,
    ) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            // The first k-block (g0 == 0) overwrites `out`, later blocks fold on
            // top — so the caller never has to pre-zero the output.
            let fold = g0 != 0;
            let (a0, rest) = a.split_at(k_pad);
            let (a1, rest) = rest.split_at(k_pad);
            let (a2, a3) = rest.split_at(k_pad);
            let (p0, p1, p2, p3) = (a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr());
            let bp = b.as_ptr();
            let op = o.as_mut_ptr();
            let mut j = 0;
            // Two 16-column tiles per pass (eight in-register accumulators): each
            // broadcast activation quad feeds two weight vectors, so the loop
            // retires ~one dpbusd per issue slot instead of stalling on
            // broadcast setup. dpbusd accumulates in-register; fold into the
            // output once per k-block (integer adds — exact regardless of the
            // split).
            while j + 32 <= n {
                let mut acc00 = _mm512_setzero_si512();
                let mut acc01 = _mm512_setzero_si512();
                let mut acc10 = _mm512_setzero_si512();
                let mut acc11 = _mm512_setzero_si512();
                let mut acc20 = _mm512_setzero_si512();
                let mut acc21 = _mm512_setzero_si512();
                let mut acc30 = _mm512_setzero_si512();
                let mut acc31 = _mm512_setzero_si512();
                for g in g0..g1 {
                    let w0 = _mm512_loadu_si512(bp.add((g * n + j) * 4).cast());
                    let w1 = _mm512_loadu_si512(bp.add((g * n + j + 16) * 4).cast());
                    let q0 = _mm512_set1_epi32(quad(p0, g));
                    let q1 = _mm512_set1_epi32(quad(p1, g));
                    let q2 = _mm512_set1_epi32(quad(p2, g));
                    let q3 = _mm512_set1_epi32(quad(p3, g));
                    acc00 = _mm512_dpbusd_epi32(acc00, q0, w0);
                    acc01 = _mm512_dpbusd_epi32(acc01, q0, w1);
                    acc10 = _mm512_dpbusd_epi32(acc10, q1, w0);
                    acc11 = _mm512_dpbusd_epi32(acc11, q1, w1);
                    acc20 = _mm512_dpbusd_epi32(acc20, q2, w0);
                    acc21 = _mm512_dpbusd_epi32(acc21, q2, w1);
                    acc30 = _mm512_dpbusd_epi32(acc30, q3, w0);
                    acc31 = _mm512_dpbusd_epi32(acc31, q3, w1);
                }
                for (row, (lo, hi)) in [
                    (acc00, acc01),
                    (acc10, acc11),
                    (acc20, acc21),
                    (acc30, acc31),
                ]
                .into_iter()
                .enumerate()
                {
                    let s0 = op.add(row * n + j);
                    let s1 = op.add(row * n + j + 16);
                    _mm512_storeu_si512(s0.cast(), _mm512_add_epi32(seed_avx512(s0, fold), lo));
                    _mm512_storeu_si512(s1.cast(), _mm512_add_epi32(seed_avx512(s1, fold), hi));
                }
                j += 32;
            }
            while j + 16 <= n {
                let mut acc0 = _mm512_setzero_si512();
                let mut acc1 = _mm512_setzero_si512();
                let mut acc2 = _mm512_setzero_si512();
                let mut acc3 = _mm512_setzero_si512();
                for g in g0..g1 {
                    let w = _mm512_loadu_si512(bp.add((g * n + j) * 4).cast());
                    acc0 = _mm512_dpbusd_epi32(acc0, _mm512_set1_epi32(quad(p0, g)), w);
                    acc1 = _mm512_dpbusd_epi32(acc1, _mm512_set1_epi32(quad(p1, g)), w);
                    acc2 = _mm512_dpbusd_epi32(acc2, _mm512_set1_epi32(quad(p2, g)), w);
                    acc3 = _mm512_dpbusd_epi32(acc3, _mm512_set1_epi32(quad(p3, g)), w);
                }
                let s0 = op.add(j);
                let s1 = op.add(n + j);
                let s2 = op.add(2 * n + j);
                let s3 = op.add(3 * n + j);
                _mm512_storeu_si512(s0.cast(), _mm512_add_epi32(seed_avx512(s0, fold), acc0));
                _mm512_storeu_si512(s1.cast(), _mm512_add_epi32(seed_avx512(s1, fold), acc1));
                _mm512_storeu_si512(s2.cast(), _mm512_add_epi32(seed_avx512(s2, fold), acc2));
                _mm512_storeu_si512(s3.cast(), _mm512_add_epi32(seed_avx512(s3, fold), acc3));
                j += 16;
            }
            while j < n {
                for (row, ar) in [a0, a1, a2, a3].into_iter().enumerate() {
                    let slot = op.add(row * n + j);
                    let mut acc = seed_scalar(slot, fold);
                    for g in g0..g1 {
                        acc += super::dot4(ar, g, b, (g * n + j) * 4);
                    }
                    *slot = acc;
                }
                j += 1;
            }
        }
    }

    /// One output row over groups `g0..g1`, 16 columns per `dpbusd`.
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vnni")]
    unsafe fn panel1_vnni(a: &[u8], b: &[i8], o: &mut [i32], n: usize, g0: usize, g1: usize) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let fold = g0 != 0;
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let op = o.as_mut_ptr();
            let mut j = 0;
            while j + 16 <= n {
                let mut acc = _mm512_setzero_si512();
                for g in g0..g1 {
                    let w = _mm512_loadu_si512(bp.add((g * n + j) * 4).cast());
                    acc = _mm512_dpbusd_epi32(acc, _mm512_set1_epi32(quad(ap, g)), w);
                }
                _mm512_storeu_si512(
                    op.add(j).cast(),
                    _mm512_add_epi32(seed_avx512(op.add(j), fold), acc),
                );
                j += 16;
            }
            while j < n {
                let slot = op.add(j);
                let mut acc = seed_scalar(slot, fold);
                for g in g0..g1 {
                    acc += super::dot4(a, g, b, (g * n + j) * 4);
                }
                *slot = acc;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic u7 activations.
    fn activations(rows: usize, k_pad: usize, k: usize, seed: u64) -> Vec<u8> {
        let mut a = vec![0u8; rows * k_pad];
        for r in 0..rows {
            for c in 0..k {
                a[r * k_pad + c] = (((r as u64 + 3) * 37 + c as u64 * 11 + seed) % 128) as u8;
            }
        }
        a
    }

    /// Deterministic signed weights spanning the full i8 quantized range.
    fn weights(k: usize, n: usize, seed: u64) -> Vec<i8> {
        (0..k * n)
            .map(|i| ((((i as u64).wrapping_mul(2654435761) >> 7) + seed) % 255) as i64 - 127)
            .map(|v| v as i8)
            .collect()
    }

    /// All backends the host can run.
    fn backends() -> Vec<Int8Kernel> {
        let mut ks = vec![Int8Kernel::Scalar];
        if avx2_available() {
            ks.push(Int8Kernel::Avx2Maddubs);
        }
        if avx512_vnni_available() {
            ks.push(Int8Kernel::Avx512Vnni);
        }
        ks
    }

    /// Plain unpacked triple loop — independent of the packed layout, so it
    /// cross-checks `pack_weights_k4` and every arm at once.
    fn reference(a: &[u8], wq: &[i8], rows: usize, k_pad: usize, k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; rows * n];
        for r in 0..rows {
            for j in 0..n {
                let mut acc = 0i32;
                for c in 0..k {
                    acc += i32::from(a[r * k_pad + c]) * i32::from(wq[c * n + j]);
                }
                out[r * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn pack_weights_k4_layout_and_padding() {
        let (k, n) = (6, 3);
        let wq = weights(k, n, 1);
        let packed = pack_weights_k4(&wq, k, n);
        assert_eq!(packed.len(), padded_k(k) * n);
        for g in 0..padded_k(k) / 4 {
            for j in 0..n {
                for q in 0..4 {
                    let row = 4 * g + q;
                    let want = if row < k { wq[row * n + j] } else { 0 };
                    assert_eq!(packed[(g * n + j) * 4 + q], want, "g={g} j={j} q={q}");
                }
            }
        }
        assert_eq!(padded_k(0), 0);
        assert_eq!(padded_k(1), 4);
        assert_eq!(padded_k(4), 4);
        assert_eq!(padded_k(5), 8);
    }

    #[test]
    fn all_backends_match_the_reference_bit_exactly() {
        // Shapes hit the 4-row panel, the 1-row remainder, and the 8- and
        // 16-column vector remainders of both SIMD arms.
        for (rows, k, n) in [
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 16),
            (6, 37, 41),
            (5, 64, 23),
            (2, 12, 100),
            (9, 31, 33),
        ] {
            let k_pad = padded_k(k);
            let a = activations(rows, k_pad, k, 7);
            let wq = weights(k, n, 3);
            let packed = pack_weights_k4(&wq, k, n);
            let want = reference(&a, &wq, rows, k_pad, k, n);
            for backend in backends() {
                let mut out = vec![0i32; rows * n];
                gemm_u8i8_i32(backend, &a, &packed, &mut out, rows, k_pad, n);
                assert_eq!(out, want, "{backend:?} rows={rows} k={k} n={n}");
            }
        }
    }

    #[test]
    fn overwrite_semantics_and_saturation_extremes() {
        // A dirty (non-zero) out must be fully overwritten, with the extreme
        // u7 x i8 operands that would saturate maddubs if activations were
        // full u8.
        let (rows, k, n) = (4usize, 8usize, 9usize);
        let k_pad = padded_k(k);
        let a = vec![127u8; rows * k_pad];
        let wq = vec![-127i8; k * n];
        let packed = pack_weights_k4(&wq, k, n);
        let want = -127 * 127 * k as i32;
        for backend in backends() {
            let mut out = vec![5i32; rows * n];
            gemm_u8i8_i32(backend, &a, &packed, &mut out, rows, k_pad, n);
            assert!(out.iter().all(|&v| v == want), "{backend:?}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn blocking_and_panel_shape_do_not_change_results() {
        if !avx2_available() {
            return;
        }
        let (rows, k, n) = (7usize, 45usize, 29usize);
        let k_pad = padded_k(k);
        let a = activations(rows, k_pad, k, 13);
        let packed = pack_weights_k4(&weights(k, n, 5), k, n);
        let mut want = vec![0i32; rows * n];
        gemm_u8i8_i32(Int8Kernel::Scalar, &a, &packed, &mut want, rows, k_pad, n);
        for group_block in [1usize, 2, 3, 8, 64] {
            for panel4 in [false, true] {
                let mut out = vec![0i32; rows * n];
                unsafe {
                    x86::gemm_avx2(&a, &packed, &mut out, rows, k_pad, n, group_block, panel4)
                };
                assert_eq!(out, want, "avx2 block={group_block} panel4={panel4}");
                if avx512_vnni_available() {
                    let mut out = vec![0i32; rows * n];
                    unsafe {
                        x86::gemm_vnni(&a, &packed, &mut out, rows, k_pad, n, group_block, panel4)
                    };
                    assert_eq!(out, want, "vnni block={group_block} panel4={panel4}");
                }
            }
        }
    }

    #[test]
    fn selection_tracks_host_features() {
        assert_eq!(resolve_int8(KernelChoice::Scalar), Int8Kernel::Scalar);
        let auto = resolve_int8(KernelChoice::Auto);
        if avx512_vnni_available() {
            assert_eq!(auto, Int8Kernel::Avx512Vnni);
        } else if avx2_available() {
            assert_eq!(auto, Int8Kernel::Avx2Maddubs);
        } else {
            assert_eq!(auto, Int8Kernel::Scalar);
        }
        assert!(["scalar", "avx2_maddubs", "avx512_vnni"].contains(&selected_int8().name()));
        // VNNI implies the narrower feature reports agree.
        if avx512_vnni_available() {
            assert!(avx512f_available() && avx512bw_available());
        }
    }
}
