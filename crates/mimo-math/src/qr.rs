//! QR decomposition of complex matrices via modified Gram–Schmidt.
//!
//! The reproduction uses QR mostly as a verification tool (orthonormality of
//! reconstructed beamforming matrices, conditioning checks in tests) and to
//! build random unitary matrices for synthetic channels.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::workspace::Workspace;

/// Thin QR decomposition `A = Q * R` with `Q` having orthonormal columns and
/// `R` upper triangular.
///
/// ```
/// use mimo_math::{CMatrix, Complex64, qr::Qr};
/// let a = CMatrix::from_fn(3, 2, |r, c| Complex64::new((r + 1) as f64, c as f64));
/// let qr = Qr::compute(&a);
/// assert!(a.sub(&qr.q.matmul(&qr.r)).frobenius_norm() < 1e-10);
/// assert!(qr.q.is_unitary_columns(1e-10));
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// `m x k` matrix with orthonormal columns, `k = min(m, n)`.
    pub q: CMatrix,
    /// `k x n` upper-triangular factor.
    pub r: CMatrix,
}

impl Qr {
    /// Computes the thin QR factorization using modified Gram–Schmidt with a
    /// single re-orthogonalization pass (sufficient for the small, well-scaled
    /// matrices used in this workspace).
    ///
    /// Allocates a fresh [`Workspace`] internally; hot loops should hold one
    /// workspace and call [`Qr::compute_with`] instead.
    pub fn compute(a: &CMatrix) -> Qr {
        Qr::compute_with(a, &mut Workspace::new())
    }

    /// Computes the thin QR factorization reusing the scratch buffers in `ws`.
    ///
    /// The working columns and the growing orthonormal basis live in the
    /// workspace as contiguous rows of a transposed copy, so the
    /// orthogonalization sweeps allocate nothing; only the returned `Q`/`R`
    /// factors are fresh allocations.
    pub fn compute_with(a: &CMatrix, ws: &mut Workspace) -> Qr {
        let (m, n) = a.shape();
        let k = m.min(n);
        let mut q = CMatrix::zeros(m, k);
        let mut r = CMatrix::zeros(k, n);

        // Transposed working copy: row j of `at` is column j of `a`; row i of
        // `qt` becomes column i of Q.
        let at = Workspace::grab(&mut ws.at, n * m);
        for (j, row) in at.chunks_exact_mut(m).enumerate() {
            for (t, slot) in row.iter_mut().enumerate() {
                *slot = a[(t, j)];
            }
        }
        let qt = Workspace::grab(&mut ws.vt, k * m);

        for j in 0..n {
            if j < k {
                // Orthogonalize column j against all previous q columns (twice for stability).
                for _pass in 0..2 {
                    for i in 0..j.min(k) {
                        let qi = &qt[i * m..(i + 1) * m];
                        let col_j = &at[j * m..(j + 1) * m];
                        let proj: Complex64 = qi
                            .iter()
                            .zip(col_j.iter())
                            .map(|(qv, av)| qv.conj() * *av)
                            .sum();
                        r[(i, j)] += proj;
                        let col_j = &mut at[j * m..(j + 1) * m];
                        for (slot, &qv) in col_j.iter_mut().zip(qi.iter()) {
                            let sub = qv * proj;
                            *slot -= sub;
                        }
                    }
                }
                let col_j = &at[j * m..(j + 1) * m];
                let norm: f64 = col_j.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
                r[(j, j)] = Complex64::from_real(norm);
                let q_row = &mut qt[j * m..(j + 1) * m];
                if norm > 1e-300 {
                    for (slot, &z) in q_row.iter_mut().zip(col_j.iter()) {
                        *slot = z / norm;
                    }
                } else {
                    // Deficient column: use a canonical basis vector orthogonal "enough";
                    // the corresponding R entry is zero so the product is unaffected.
                    q_row.fill(Complex64::ZERO);
                    q_row[j.min(m - 1)] = Complex64::ONE;
                }
            } else {
                // Extra columns of a wide matrix only contribute to R.
                for i in 0..k {
                    let qi = &qt[i * m..(i + 1) * m];
                    let col_j = &at[j * m..(j + 1) * m];
                    let proj: Complex64 = qi
                        .iter()
                        .zip(col_j.iter())
                        .map(|(qv, av)| qv.conj() * *av)
                        .sum();
                    r[(i, j)] = proj;
                }
            }
        }

        for i in 0..k {
            for t in 0..m {
                q[(t, i)] = qt[i * m + t];
            }
        }
        Qr { q, r }
    }

    /// Reconstructs `Q * R`.
    pub fn reconstruct(&self) -> CMatrix {
        self.q.matmul(&self.r)
    }
}

/// Builds a random `n x n` unitary matrix by orthonormalizing a matrix with
/// entries drawn from `sampler`.
///
/// The caller provides the scalar sampler so the crate stays agnostic of any
/// particular RNG; `wifi-phy` uses a Gaussian sampler which yields Haar-like
/// unitary matrices.
pub fn random_unitary<F: FnMut() -> Complex64>(n: usize, mut sampler: F) -> CMatrix {
    let a = CMatrix::from_fn(n, n, |_, _| sampler());
    let qr = Qr::compute(&a);
    qr.q
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_matrix(rng: &mut impl rand::Rng, m: usize, n: usize) -> CMatrix {
        CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn qr_reconstructs_square() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 4, 4);
        let qr = Qr::compute(&a);
        assert!(a.sub(&qr.reconstruct()).frobenius_norm() < 1e-10);
        assert!(qr.q.is_unitary_columns(1e-10));
    }

    #[test]
    fn qr_reconstructs_tall() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, 6, 3);
        let qr = Qr::compute(&a);
        assert_eq!(qr.q.shape(), (6, 3));
        assert_eq!(qr.r.shape(), (3, 3));
        assert!(a.sub(&qr.reconstruct()).frobenius_norm() < 1e-10);
    }

    #[test]
    fn qr_reconstructs_wide() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_matrix(&mut rng, 2, 5);
        let qr = Qr::compute(&a);
        assert_eq!(qr.q.shape(), (2, 2));
        assert_eq!(qr.r.shape(), (2, 5));
        assert!(a.sub(&qr.reconstruct()).frobenius_norm() < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_matrix(&mut rng, 5, 5);
        let qr = Qr::compute(&a);
        for r in 0..5 {
            for c in 0..r {
                assert!(qr.r[(r, c)].abs() < 1e-10, "below-diagonal entry not zero");
            }
        }
    }

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(42);
        let u = random_unitary(4, || {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        assert!(u.is_unitary_columns(1e-10));
        // Also check rows: U U^H = I for square unitary.
        let prod = u.matmul(&u.hermitian());
        assert!(prod.sub(&CMatrix::identity(4)).max_abs() < 1e-10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_qr_reconstructs(m in 1usize..6, n in 1usize..6, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, n);
            let qr = Qr::compute(&a);
            prop_assert!(a.sub(&qr.reconstruct()).frobenius_norm() < 1e-9);
        }

        #[test]
        fn prop_q_orthonormal(m in 2usize..6, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, m);
            let qr = Qr::compute(&a);
            prop_assert!(qr.q.is_unitary_columns(1e-8));
        }
    }
}
