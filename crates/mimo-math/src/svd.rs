//! Singular value decomposition of complex matrices.
//!
//! The decomposition is computed with the one-sided (Hestenes) Jacobi method:
//! columns of `A` are repeatedly rotated in pairs by unitary plane rotations
//! until they are mutually orthogonal. The accumulated rotations form the right
//! singular vectors `V`, the column norms are the singular values and the
//! normalized columns form `U`, so that `A = U * diag(S) * V^H`.
//!
//! One-sided Jacobi is a natural fit here: channel matrices in the SplitBeam
//! workload are tiny (at most 8 x 8 per subcarrier), the method is simple,
//! numerically robust and gives the right singular vectors — which is exactly
//! what the IEEE 802.11 beamforming feedback needs — without forming `A^H A`.
//!
//! # Performance
//!
//! The kernel operates on a *transposed* working copy held in a
//! [`Workspace`]: each column of `A` becomes a contiguous row, so the Jacobi
//! rotations sweep cache lines linearly and update both columns in place. With
//! a caller-provided workspace ([`Svd::compute_with`],
//! [`Svd::right_vectors_into`]) the per-subcarrier decomposition performs no
//! heap allocation after warm-up — the dominant cost of the original
//! column-extracting implementation (kept as
//! [`crate::reference::svd_naive`] for equivalence tests and benchmarks). The
//! floating-point operation order is identical to the reference, so results
//! are bit-exact.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::workspace::Workspace;

/// Maximum number of Jacobi sweeps before giving up on further improvement.
pub(crate) const MAX_SWEEPS: usize = 64;

/// Relative off-diagonal tolerance at which a column pair is considered orthogonal.
pub(crate) const ORTHO_TOL: f64 = 1e-13;

/// Result of a singular value decomposition `A = U * diag(S) * V^H`.
///
/// Singular values are sorted in non-increasing order; `U` is `m x k` and `V`
/// is `n x k` with `k = min(m, n)` (thin SVD).
///
/// ```
/// use mimo_math::{CMatrix, Complex64, svd::Svd};
/// let a = CMatrix::from_fn(3, 2, |r, c| Complex64::new(r as f64 + 1.0, c as f64));
/// let svd = Svd::compute(&a);
/// assert_eq!(svd.u.shape(), (3, 2));
/// assert_eq!(svd.v.shape(), (2, 2));
/// assert!(svd.singular_values[0] >= svd.singular_values[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m x k`, orthonormal columns.
    pub u: CMatrix,
    /// Singular values in non-increasing order, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n x k`, orthonormal columns.
    pub v: CMatrix,
}

/// Loads the Jacobi working copy into `ws`: row `i` of `ws.at` holds column `i`
/// of the (tall orientation of the) input, and `ws.vt` starts as the identity.
///
/// With `conj_rows == false` the input `a` itself is decomposed (requires
/// `m >= n`); with `conj_rows == true` the working copy holds the columns of
/// `A^H`, i.e. the conjugated rows of `a` (used for wide inputs). Returns
/// `(k, len)`: the number of columns being orthogonalized and their length.
fn load_transposed(ws: &mut Workspace, a: &CMatrix, conj_rows: bool) -> (usize, usize) {
    let (m, n) = a.shape();
    let (k, len) = if conj_rows { (m, n) } else { (n, m) };
    let at = Workspace::grab(&mut ws.at, k * len);
    if conj_rows {
        for (j, row) in at.chunks_exact_mut(len).enumerate() {
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = a[(j, i)].conj();
            }
        }
    } else {
        for (i, row) in at.chunks_exact_mut(len).enumerate() {
            for (r, slot) in row.iter_mut().enumerate() {
                *slot = a[(r, i)];
            }
        }
    }
    let vt = Workspace::grab(&mut ws.vt, k * k);
    for i in 0..k {
        vt[i * k + i] = Complex64::ONE;
    }
    (k, len)
}

/// One-sided Jacobi sweeps over the transposed working copy in `ws`.
///
/// On return `ws.at` holds the rotated columns (rows of the buffer), `ws.vt`
/// the accumulated right singular vectors, `ws.norms` the column norms and
/// `ws.order` the non-increasing sort permutation. Scalar operations are
/// sequenced exactly like the reference implementation, so every intermediate
/// value is bit-identical.
fn jacobi_sweeps(ws: &mut Workspace, k: usize, len: usize) {
    let at = &mut ws.at[..k * len];
    let vt = &mut ws.vt[..k * k];

    for _sweep in 0..MAX_SWEEPS {
        let mut converged = true;
        for p in 0..k {
            for q in (p + 1)..k {
                let row_p = &at[p * len..(p + 1) * len];
                let row_q = &at[q * len..(q + 1) * len];
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = Complex64::ZERO;
                for (ap, aq) in row_p.iter().zip(row_q.iter()) {
                    alpha += ap.norm_sqr();
                    beta += aq.norm_sqr();
                    gamma += ap.conj() * *aq;
                }
                let gamma_abs = gamma.abs();
                if gamma_abs <= ORTHO_TOL * (alpha * beta).sqrt() || gamma_abs == 0.0 {
                    continue;
                }
                converged = false;

                // Remove the phase of gamma so the 2x2 problem becomes real,
                // then apply the classical Jacobi rotation.
                let phase = gamma / Complex64::from_real(gamma_abs);
                let zeta = (beta - alpha) / (2.0 * gamma_abs);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let phase_conj = phase.conj();

                // Column update, in place on the two contiguous rows:
                //   new_p = c * a_p - s * conj(phase) * a_q
                //   new_q = s * phase * a_p + c * a_q
                let (head, tail) = at.split_at_mut(q * len);
                let row_p = &mut head[p * len..(p + 1) * len];
                let row_q = &mut tail[..len];
                for (ap, aq) in row_p.iter_mut().zip(row_q.iter_mut()) {
                    let (old_p, old_q) = (*ap, *aq);
                    *ap = old_p.scale(c) - (phase_conj * old_q).scale(s);
                    *aq = (phase * old_p).scale(s) + old_q.scale(c);
                }

                // Apply the same rotation to the accumulated V.
                let (head, tail) = vt.split_at_mut(q * k);
                let row_p = &mut head[p * k..(p + 1) * k];
                let row_q = &mut tail[..k];
                for (vp, vq) in row_p.iter_mut().zip(row_q.iter_mut()) {
                    let (old_p, old_q) = (*vp, *vq);
                    *vp = old_p.scale(c) - (phase_conj * old_q).scale(s);
                    *vq = (phase * old_p).scale(s) + old_q.scale(c);
                }
            }
        }
        if converged {
            break;
        }
    }

    // Column norms are the singular values; sort in non-increasing order.
    ws.norms.clear();
    ws.norms.extend(
        at.chunks_exact(len)
            .map(|row| row.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()),
    );
    ws.order.clear();
    ws.order.extend(0..k);
    let norms = &ws.norms;
    ws.order
        .sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());
}

/// Writes the sorted, normalized columns held in `ws.at` into `u` and the
/// sorted accumulated rotations in `ws.vt` into `v`.
fn assemble_factors(ws: &Workspace, k: usize, len: usize) -> (CMatrix, Vec<f64>, CMatrix) {
    let mut u = CMatrix::zeros(len, k);
    let mut v = CMatrix::zeros(k, k);
    let mut singular_values = Vec::with_capacity(k);
    for (new_idx, &old_idx) in ws.order[..k].iter().enumerate() {
        let sigma = ws.norms[old_idx];
        singular_values.push(sigma);
        let col = &ws.at[old_idx * len..(old_idx + 1) * len];
        if sigma > 1e-300 {
            for (r, &z) in col.iter().enumerate() {
                u[(r, new_idx)] = z / sigma;
            }
        } else {
            // Rank-deficient direction: leave a unit vector not colliding with
            // previous columns; exactness is irrelevant because sigma == 0.
            u[(new_idx.min(len - 1), new_idx)] = Complex64::ONE;
        }
        let vrow = &ws.vt[old_idx * k..(old_idx + 1) * k];
        for (r, &z) in vrow.iter().enumerate() {
            v[(r, new_idx)] = z;
        }
    }
    (u, singular_values, v)
}

impl Svd {
    /// Computes the thin SVD of `a` using one-sided Jacobi rotations.
    ///
    /// The routine always returns; for rank-deficient inputs the trailing
    /// singular values are (numerically) zero and the corresponding columns of
    /// `U` are completed to an arbitrary orthonormal set.
    ///
    /// Allocates a fresh [`Workspace`] internally; hot loops should hold one
    /// workspace and call [`Svd::compute_with`] instead.
    pub fn compute(a: &CMatrix) -> Svd {
        Svd::compute_with(a, &mut Workspace::new())
    }

    /// Computes the thin SVD reusing the scratch buffers in `ws`.
    ///
    /// Only the returned factors are allocated; all intermediate storage comes
    /// from the workspace. Results are bit-identical to [`Svd::compute`] (and
    /// to the naive reference implementation).
    pub fn compute_with(a: &CMatrix, ws: &mut Workspace) -> Svd {
        let (m, n) = a.shape();
        // Work on the tall orientation so every column lives in the larger space;
        // if the input is wide we decompose A^H = U' S V'^H and swap the factors.
        let wide = m < n;
        let (k, len) = load_transposed(ws, a, wide);
        jacobi_sweeps(ws, k, len);
        let (u, singular_values, v) = assemble_factors(ws, k, len);
        if wide {
            Svd {
                u: v,
                singular_values,
                v: u,
            }
        } else {
            Svd {
                u,
                singular_values,
                v,
            }
        }
    }

    /// Writes the first `nss` right singular vectors of `a` into `out`,
    /// reusing `ws` for every intermediate.
    ///
    /// This is the feedback hot path: the 802.11 beamformee only needs `V`'s
    /// leading columns, so forming and normalizing `U` is skipped entirely.
    /// Entries are bit-identical to
    /// `Svd::compute(a).beamforming_matrix(nss)`.
    ///
    /// # Panics
    /// Panics if `nss` is zero or exceeds `min(a.rows(), a.cols())`.
    pub fn right_vectors_into(a: &CMatrix, nss: usize, out: &mut CMatrix, ws: &mut Workspace) {
        let (m, n) = a.shape();
        let wide = m < n;
        let (k, len) = load_transposed(ws, a, wide);
        assert!(
            nss > 0 && nss <= k,
            "invalid number of right singular vectors"
        );
        jacobi_sweeps(ws, k, len);
        // V of the input is: the accumulated rotations for tall inputs, the
        // normalized rotated columns for wide inputs (factor swap).
        out.reshape_zeroed(n, nss);
        if wide {
            for (new_idx, &old_idx) in ws.order[..nss].iter().enumerate() {
                let sigma = ws.norms[old_idx];
                let col = &ws.at[old_idx * len..(old_idx + 1) * len];
                if sigma > 1e-300 {
                    for (r, &z) in col.iter().enumerate() {
                        out[(r, new_idx)] = z / sigma;
                    }
                } else {
                    out[(new_idx.min(len - 1), new_idx)] = Complex64::ONE;
                }
            }
        } else {
            for (new_idx, &old_idx) in ws.order[..nss].iter().enumerate() {
                let vrow = &ws.vt[old_idx * k..(old_idx + 1) * k];
                for (r, &z) in vrow.iter().enumerate() {
                    out[(r, new_idx)] = z;
                }
            }
        }
    }

    /// Reconstructs `U * diag(S) * V^H`, useful for validating the factorization.
    pub fn reconstruct(&self) -> CMatrix {
        let k = self.singular_values.len();
        let s = CMatrix::diag(
            &self
                .singular_values
                .iter()
                .map(|&x| Complex64::from_real(x))
                .collect::<Vec<_>>(),
        );
        debug_assert_eq!(self.u.cols(), k);
        self.u.matmul(&s).matmul(&self.v.hermitian())
    }

    /// Returns the beamforming matrix: the first `nss` right singular vectors.
    ///
    /// This mirrors the 802.11 definition where `V` is built from the first
    /// `Nss` columns of the right-singular-vector matrix `Z` of the channel.
    ///
    /// # Panics
    /// Panics if `nss` is zero or exceeds the number of singular vectors.
    pub fn beamforming_matrix(&self, nss: usize) -> CMatrix {
        self.v.first_columns(nss)
    }

    /// Effective numerical rank: the number of singular values above
    /// `tol * max_singular_value`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        if max == 0.0 {
            return 0;
        }
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * max)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::svd_naive;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_matrix(rng: &mut impl rand::Rng, m: usize, n: usize) -> CMatrix {
        CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn reconstruction_square() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 1..=6 {
            let a = random_matrix(&mut rng, n, n);
            let svd = Svd::compute(&a);
            let err = a.sub(&svd.reconstruct()).frobenius_norm();
            assert!(err < 1e-9, "n={n}, err={err}");
        }
    }

    #[test]
    fn reconstruction_tall_and_wide() {
        let mut rng = StdRng::seed_from_u64(9);
        let tall = random_matrix(&mut rng, 6, 3);
        let svd = Svd::compute(&tall);
        assert!(tall.sub(&svd.reconstruct()).frobenius_norm() < 1e-9);
        assert_eq!(svd.u.shape(), (6, 3));
        assert_eq!(svd.v.shape(), (3, 3));

        let wide = random_matrix(&mut rng, 2, 5);
        let svd = Svd::compute(&wide);
        assert!(wide.sub(&svd.reconstruct()).frobenius_norm() < 1e-9);
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (5, 2));
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 5, 5);
        let svd = Svd::compute(&a);
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn factors_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 4, 4);
        let svd = Svd::compute(&a);
        assert!(svd.u.is_unitary_columns(1e-9));
        assert!(svd.v.is_unitary_columns(1e-9));
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns -> rank 1.
        let col = [
            Complex64::new(1.0, 0.5),
            Complex64::new(-0.3, 0.2),
            Complex64::new(0.9, -1.0),
        ];
        let a = CMatrix::from_fn(3, 2, |r, _| col[r]);
        let svd = Svd::compute(&a);
        assert_eq!(svd.rank(1e-9), 1);
        assert!(a.sub(&svd.reconstruct()).frobenius_norm() < 1e-9);
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = CMatrix::diag(&[
            Complex64::from_real(3.0),
            Complex64::from_real(1.0),
            Complex64::from_real(2.0),
        ]);
        let svd = Svd::compute(&a);
        let sv = &svd.singular_values;
        assert!((sv[0] - 3.0).abs() < 1e-10);
        assert!((sv[1] - 2.0).abs() < 1e-10);
        assert!((sv[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn beamforming_matrix_takes_first_columns() {
        let mut rng = StdRng::seed_from_u64(5);
        let h = random_matrix(&mut rng, 2, 3);
        let svd = Svd::compute(&h);
        let v1 = svd.beamforming_matrix(1);
        assert_eq!(v1.shape(), (3, 1));
        // The first right singular vector should have unit norm.
        let norm: f64 = v1.column(0).iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_matrix_has_zero_rank() {
        let a = CMatrix::zeros(3, 3);
        let svd = Svd::compute(&a);
        assert_eq!(svd.rank(1e-9), 0);
        assert!(svd.singular_values.iter().all(|&s| s.abs() < 1e-12));
    }

    #[test]
    fn workspace_version_matches_naive_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut ws = Workspace::new();
        for (m, n) in [
            (1, 1),
            (2, 2),
            (4, 4),
            (8, 8),
            (6, 3),
            (1, 4),
            (4, 1),
            (2, 5),
        ] {
            let a = random_matrix(&mut rng, m, n);
            let fast = Svd::compute_with(&a, &mut ws);
            let naive = svd_naive(&a);
            assert_eq!(fast.u, naive.u, "{m}x{n} U differs");
            assert_eq!(fast.v, naive.v, "{m}x{n} V differs");
            assert_eq!(
                fast.singular_values, naive.singular_values,
                "{m}x{n} S differs"
            );
        }
    }

    #[test]
    fn right_vectors_into_matches_beamforming_matrix() {
        let mut rng = StdRng::seed_from_u64(101);
        let mut ws = Workspace::new();
        let mut out = CMatrix::zeros(1, 1);
        for (m, n, nss) in [
            (2, 2, 1),
            (3, 3, 2),
            (4, 4, 4),
            (6, 3, 2),
            (2, 5, 1),
            (1, 3, 1),
        ] {
            let a = random_matrix(&mut rng, m, n);
            Svd::right_vectors_into(&a, nss, &mut out, &mut ws);
            let expect = svd_naive(&a).beamforming_matrix(nss);
            assert_eq!(out, expect, "{m}x{n} nss={nss}");
        }
    }

    #[test]
    fn repeated_workspace_use_is_consistent() {
        // Reusing one workspace across shapes must not leak state between calls.
        let mut rng = StdRng::seed_from_u64(103);
        let mut ws = Workspace::new();
        let big = random_matrix(&mut rng, 8, 8);
        let small = random_matrix(&mut rng, 2, 2);
        let _ = Svd::compute_with(&big, &mut ws);
        let after_big = Svd::compute_with(&small, &mut ws);
        let fresh = Svd::compute(&small);
        assert_eq!(after_big.u, fresh.u);
        assert_eq!(after_big.v, fresh.v);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_svd_reconstructs(m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, n);
            let svd = Svd::compute(&a);
            prop_assert!(a.sub(&svd.reconstruct()).frobenius_norm() < 1e-8);
        }

        #[test]
        fn prop_singular_values_match_frobenius(m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
            // sum(sigma_i^2) == ||A||_F^2
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, n);
            let svd = Svd::compute(&a);
            let sum_sq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
            let fro = a.frobenius_norm();
            prop_assert!((sum_sq - fro * fro).abs() < 1e-8 * (1.0 + fro * fro));
        }

        #[test]
        fn prop_right_vectors_orthonormal(n in 1usize..5, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, n + 1, n);
            let svd = Svd::compute(&a);
            prop_assert!(svd.v.is_unitary_columns(1e-8));
        }

        #[test]
        fn prop_workspace_svd_equals_naive(m in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, n);
            let mut ws = Workspace::new();
            let fast = Svd::compute_with(&a, &mut ws);
            let naive = svd_naive(&a);
            prop_assert_eq!(fast.u, naive.u);
            prop_assert_eq!(fast.v, naive.v);
            prop_assert_eq!(fast.singular_values, naive.singular_values);
        }
    }
}
