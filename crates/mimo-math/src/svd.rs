//! Singular value decomposition of complex matrices.
//!
//! The decomposition is computed with the one-sided (Hestenes) Jacobi method:
//! columns of `A` are repeatedly rotated in pairs by unitary plane rotations
//! until they are mutually orthogonal. The accumulated rotations form the right
//! singular vectors `V`, the column norms are the singular values and the
//! normalized columns form `U`, so that `A = U * diag(S) * V^H`.
//!
//! One-sided Jacobi is a natural fit here: channel matrices in the SplitBeam
//! workload are tiny (at most 8 x 8 per subcarrier), the method is simple,
//! numerically robust and gives the right singular vectors — which is exactly
//! what the IEEE 802.11 beamforming feedback needs — without forming `A^H A`.

use crate::complex::Complex64;
use crate::matrix::CMatrix;

/// Maximum number of Jacobi sweeps before giving up on further improvement.
const MAX_SWEEPS: usize = 64;

/// Relative off-diagonal tolerance at which a column pair is considered orthogonal.
const ORTHO_TOL: f64 = 1e-13;

/// Result of a singular value decomposition `A = U * diag(S) * V^H`.
///
/// Singular values are sorted in non-increasing order; `U` is `m x k` and `V`
/// is `n x k` with `k = min(m, n)` (thin SVD).
///
/// ```
/// use mimo_math::{CMatrix, Complex64, svd::Svd};
/// let a = CMatrix::from_fn(3, 2, |r, c| Complex64::new(r as f64 + 1.0, c as f64));
/// let svd = Svd::compute(&a);
/// assert_eq!(svd.u.shape(), (3, 2));
/// assert_eq!(svd.v.shape(), (2, 2));
/// assert!(svd.singular_values[0] >= svd.singular_values[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m x k`, orthonormal columns.
    pub u: CMatrix,
    /// Singular values in non-increasing order, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n x k`, orthonormal columns.
    pub v: CMatrix,
}

impl Svd {
    /// Computes the thin SVD of `a` using one-sided Jacobi rotations.
    ///
    /// The routine always returns; for rank-deficient inputs the trailing
    /// singular values are (numerically) zero and the corresponding columns of
    /// `U` are completed to an arbitrary orthonormal set.
    pub fn compute(a: &CMatrix) -> Svd {
        let (m, n) = a.shape();
        // Work on the tall orientation so every column lives in the larger space;
        // if the input is wide we decompose A^H = U' S V'^H and swap the factors.
        if m < n {
            let swapped = Svd::compute(&a.hermitian());
            return Svd {
                u: swapped.v,
                singular_values: swapped.singular_values,
                v: swapped.u,
            };
        }

        let mut work = a.clone();
        let mut v = CMatrix::identity(n);

        for _sweep in 0..MAX_SWEEPS {
            let mut converged = true;
            for p in 0..n {
                for q in (p + 1)..n {
                    let col_p = work.column(p);
                    let col_q = work.column(q);
                    let alpha: f64 = col_p.iter().map(|z| z.norm_sqr()).sum();
                    let beta: f64 = col_q.iter().map(|z| z.norm_sqr()).sum();
                    let gamma: Complex64 = col_p
                        .iter()
                        .zip(col_q.iter())
                        .map(|(a, b)| a.conj() * *b)
                        .sum();
                    let gamma_abs = gamma.abs();
                    if gamma_abs <= ORTHO_TOL * (alpha * beta).sqrt() || gamma_abs == 0.0 {
                        continue;
                    }
                    converged = false;

                    // Remove the phase of gamma so the 2x2 problem becomes real,
                    // then apply the classical Jacobi rotation.
                    let phase = gamma / Complex64::from_real(gamma_abs);
                    let zeta = (beta - alpha) / (2.0 * gamma_abs);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;

                    // Column update:
                    //   new_p = c * a_p - s * conj(phase) * a_q
                    //   new_q = s * phase * a_p + c * a_q
                    // which corresponds to right-multiplying by a unitary plane rotation.
                    let phase_conj = phase.conj();
                    let mut new_p = Vec::with_capacity(m);
                    let mut new_q = Vec::with_capacity(m);
                    for r in 0..m {
                        let ap = col_p[r];
                        let aq = col_q[r];
                        new_p.push(ap.scale(c) - (phase_conj * aq).scale(s));
                        new_q.push((phase * ap).scale(s) + aq.scale(c));
                    }
                    work.set_column(p, &new_p);
                    work.set_column(q, &new_q);

                    // Apply the same rotation to the accumulated V.
                    let vp = v.column(p);
                    let vq = v.column(q);
                    let mut new_vp = Vec::with_capacity(n);
                    let mut new_vq = Vec::with_capacity(n);
                    for r in 0..n {
                        let a_ = vp[r];
                        let b_ = vq[r];
                        new_vp.push(a_.scale(c) - (phase_conj * b_).scale(s));
                        new_vq.push((phase * a_).scale(s) + b_.scale(c));
                    }
                    v.set_column(p, &new_vp);
                    v.set_column(q, &new_vq);
                }
            }
            if converged {
                break;
            }
        }

        // Column norms are the singular values; sort in non-increasing order.
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n)
            .map(|c| work.column(c).iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt())
            .collect();
        order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

        let k = n; // thin SVD: k = min(m, n) = n because we forced m >= n above.
        let mut u = CMatrix::zeros(m, k);
        let mut v_sorted = CMatrix::zeros(n, k);
        let mut singular_values = Vec::with_capacity(k);
        for (new_idx, &old_idx) in order.iter().enumerate() {
            let sigma = norms[old_idx];
            singular_values.push(sigma);
            let col = work.column(old_idx);
            if sigma > 1e-300 {
                let normalized: Vec<Complex64> = col.iter().map(|z| *z / sigma).collect();
                u.set_column(new_idx, &normalized);
            } else {
                // Rank-deficient direction: leave a unit vector not colliding with
                // previous columns; exactness is irrelevant because sigma == 0.
                let mut e = vec![Complex64::ZERO; m];
                e[new_idx.min(m - 1)] = Complex64::ONE;
                u.set_column(new_idx, &e);
            }
            v_sorted.set_column(new_idx, &v.column(old_idx));
        }

        Svd {
            u,
            singular_values,
            v: v_sorted,
        }
    }

    /// Reconstructs `U * diag(S) * V^H`, useful for validating the factorization.
    pub fn reconstruct(&self) -> CMatrix {
        let k = self.singular_values.len();
        let s = CMatrix::diag(
            &self
                .singular_values
                .iter()
                .map(|&x| Complex64::from_real(x))
                .collect::<Vec<_>>(),
        );
        debug_assert_eq!(self.u.cols(), k);
        self.u.matmul(&s).matmul(&self.v.hermitian())
    }

    /// Returns the beamforming matrix: the first `nss` right singular vectors.
    ///
    /// This mirrors the 802.11 definition where `V` is built from the first
    /// `Nss` columns of the right-singular-vector matrix `Z` of the channel.
    ///
    /// # Panics
    /// Panics if `nss` is zero or exceeds the number of singular vectors.
    pub fn beamforming_matrix(&self, nss: usize) -> CMatrix {
        self.v.first_columns(nss)
    }

    /// Effective numerical rank: the number of singular values above
    /// `tol * max_singular_value`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        if max == 0.0 {
            return 0;
        }
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * max)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_matrix(rng: &mut impl rand::Rng, m: usize, n: usize) -> CMatrix {
        CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn reconstruction_square() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 1..=6 {
            let a = random_matrix(&mut rng, n, n);
            let svd = Svd::compute(&a);
            let err = a.sub(&svd.reconstruct()).frobenius_norm();
            assert!(err < 1e-9, "n={n}, err={err}");
        }
    }

    #[test]
    fn reconstruction_tall_and_wide() {
        let mut rng = StdRng::seed_from_u64(9);
        let tall = random_matrix(&mut rng, 6, 3);
        let svd = Svd::compute(&tall);
        assert!(tall.sub(&svd.reconstruct()).frobenius_norm() < 1e-9);
        assert_eq!(svd.u.shape(), (6, 3));
        assert_eq!(svd.v.shape(), (3, 3));

        let wide = random_matrix(&mut rng, 2, 5);
        let svd = Svd::compute(&wide);
        assert!(wide.sub(&svd.reconstruct()).frobenius_norm() < 1e-9);
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (5, 2));
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 5, 5);
        let svd = Svd::compute(&a);
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn factors_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 4, 4);
        let svd = Svd::compute(&a);
        assert!(svd.u.is_unitary_columns(1e-9));
        assert!(svd.v.is_unitary_columns(1e-9));
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns -> rank 1.
        let col = vec![
            Complex64::new(1.0, 0.5),
            Complex64::new(-0.3, 0.2),
            Complex64::new(0.9, -1.0),
        ];
        let a = CMatrix::from_fn(3, 2, |r, _| col[r]);
        let svd = Svd::compute(&a);
        assert_eq!(svd.rank(1e-9), 1);
        assert!(a.sub(&svd.reconstruct()).frobenius_norm() < 1e-9);
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = CMatrix::diag(&[
            Complex64::from_real(3.0),
            Complex64::from_real(1.0),
            Complex64::from_real(2.0),
        ]);
        let svd = Svd::compute(&a);
        let sv = &svd.singular_values;
        assert!((sv[0] - 3.0).abs() < 1e-10);
        assert!((sv[1] - 2.0).abs() < 1e-10);
        assert!((sv[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn beamforming_matrix_takes_first_columns() {
        let mut rng = StdRng::seed_from_u64(5);
        let h = random_matrix(&mut rng, 2, 3);
        let svd = Svd::compute(&h);
        let v1 = svd.beamforming_matrix(1);
        assert_eq!(v1.shape(), (3, 1));
        // The first right singular vector should have unit norm.
        let norm: f64 = v1.column(0).iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_matrix_has_zero_rank() {
        let a = CMatrix::zeros(3, 3);
        let svd = Svd::compute(&a);
        assert_eq!(svd.rank(1e-9), 0);
        assert!(svd.singular_values.iter().all(|&s| s.abs() < 1e-12));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_svd_reconstructs(m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, n);
            let svd = Svd::compute(&a);
            prop_assert!(a.sub(&svd.reconstruct()).frobenius_norm() < 1e-8);
        }

        #[test]
        fn prop_singular_values_match_frobenius(m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
            // sum(sigma_i^2) == ||A||_F^2
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, n);
            let svd = Svd::compute(&a);
            let sum_sq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
            let fro = a.frobenius_norm();
            prop_assert!((sum_sq - fro * fro).abs() < 1e-8 * (1.0 + fro * fro));
        }

        #[test]
        fn prop_right_vectors_orthonormal(n in 1usize..5, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, n + 1, n);
            let svd = Svd::compute(&a);
            prop_assert!(svd.v.is_unitary_columns(1e-8));
        }
    }
}
