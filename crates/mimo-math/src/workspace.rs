//! Reusable scratch buffers for the decomposition kernels.
//!
//! Every hot loop in the SplitBeam pipeline runs the same small decompositions
//! (SVD, QR, LU solve) once per subcarrier, thousands of times per feedback
//! frame. The original kernels allocated fresh `Vec`s for every column they
//! touched; a [`Workspace`] owns all of that scratch so a caller that keeps one
//! workspace alive performs **zero heap allocations after warm-up** — each
//! buffer grows to its high-water mark on first use and is reused afterwards.
//!
//! The workspace is deliberately dumb: plain buffers, no lifetimes tied to the
//! matrices being decomposed. One workspace per thread is the intended usage
//! (see `dot11_bfi::engine::FeedbackEngine`).

use crate::complex::Complex64;

/// Scratch buffers shared by [`crate::svd::Svd`], [`crate::qr::Qr`] and
/// [`crate::solve`].
///
/// ```
/// use mimo_math::{CMatrix, Complex64, svd::Svd, workspace::Workspace};
/// let mut ws = Workspace::new();
/// let h = CMatrix::from_fn(3, 3, |r, c| Complex64::new((r + c) as f64, r as f64 - c as f64));
/// // Repeated decompositions reuse the same scratch.
/// for _ in 0..4 {
///     let svd = Svd::compute_with(&h, &mut ws);
///     assert!(h.sub(&svd.reconstruct()).frobenius_norm() < 1e-9);
/// }
/// ```
#[derive(Debug)]
pub struct Workspace {
    /// Transposed working copy for Jacobi SVD / Gram–Schmidt QR: row `i` holds
    /// column `i` of the matrix being decomposed, contiguously.
    pub(crate) at: Vec<Complex64>,
    /// Transposed accumulation of the right singular vectors (SVD) or of the
    /// orthonormal basis (QR).
    pub(crate) vt: Vec<Complex64>,
    /// Column norms (singular values before sorting).
    pub(crate) norms: Vec<f64>,
    /// Sort permutation of the singular values.
    pub(crate) order: Vec<usize>,
    /// LU factor scratch for the linear solvers.
    pub(crate) lu: Vec<Complex64>,
    /// Right-hand-side scratch for the linear solvers.
    pub(crate) rhs: Vec<Complex64>,
    /// General matrix scratch (Gram matrices, intermediate products).
    pub(crate) ma: crate::matrix::CMatrix,
    /// Second general matrix scratch.
    pub(crate) mb: crate::matrix::CMatrix,
}

impl Default for Workspace {
    fn default() -> Self {
        Self {
            at: Vec::new(),
            vt: Vec::new(),
            norms: Vec::new(),
            order: Vec::new(),
            lu: Vec::new(),
            rhs: Vec::new(),
            ma: crate::matrix::CMatrix::zeros(1, 1),
            mb: crate::matrix::CMatrix::zeros(1, 1),
        }
    }
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes `buf` to `len` entries without releasing capacity.
    pub(crate) fn grab(buf: &mut Vec<Complex64>, len: usize) -> &mut [Complex64] {
        buf.clear();
        buf.resize(len, Complex64::ZERO);
        &mut buf[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grab_reuses_capacity() {
        let mut ws = Workspace::new();
        Workspace::grab(&mut ws.at, 64);
        let cap = ws.at.capacity();
        Workspace::grab(&mut ws.at, 32);
        assert_eq!(ws.at.len(), 32);
        assert_eq!(ws.at.capacity(), cap, "shrinking must not reallocate");
        Workspace::grab(&mut ws.at, 64);
        assert_eq!(
            ws.at.capacity(),
            cap,
            "regrowing within capacity must not reallocate"
        );
    }
}
